//! Auction clearing: which sealed bids does the provider take?
//!
//! The paper models the market as a first-price sealed-bid auction:
//! customers submit `{src, dst, window, rate, bid}` simultaneously, the
//! provider clears the set that maximizes its profit. This example runs a
//! small auction on SUB-B4 and prints a per-bid verdict with the route
//! each winner was assigned.
//!
//! ```sh
//! cargo run --release --example auction_clearing
//! ```

use metis_suite::core::MetisError;
use metis_suite::core::{metis, MetisConfig, SpmInstance};
use metis_suite::netsim::topologies;
use metis_suite::workload::{generate, RequestId, WorkloadConfig};

fn main() -> Result<(), MetisError> {
    let topo = topologies::sub_b4();
    let requests = generate(&topo, &WorkloadConfig::paper(60, 2024));
    let instance = SpmInstance::new(topo, requests, 12, 3);

    let result = metis(&instance, &MetisConfig::with_theta(10))?;
    let ev = &result.evaluation;

    println!("bid     route              window      rate      bid   verdict");
    println!("-----  -----------------  ----------  ------  -------  -------");
    for r in instance.requests().iter().take(20) {
        let id: RequestId = r.id;
        let verdict = match result.schedule.path_choice(id) {
            Some(j) => {
                let path = &instance.paths(id)[j];
                let hops: Vec<String> = path.nodes().iter().map(|n| n.to_string()).collect();
                format!("WIN via {}", hops.join("→"))
            }
            None => "declined".to_string(),
        };
        println!(
            "{:>5}  {:>8}→{:<8}  [{:>2}, {:>2}]   {:>5.2}  {:>7.2}  {verdict}",
            id.to_string(),
            r.src.to_string(),
            r.dst.to_string(),
            r.start,
            r.end,
            r.rate,
            r.value,
        );
    }
    println!(
        "  ... ({} more bids not shown)",
        instance.num_requests().saturating_sub(20)
    );
    println!();
    println!(
        "cleared {} of {} bids: revenue {:.2}, bandwidth cost {:.2}, profit {:.2}",
        ev.accepted,
        instance.num_requests(),
        ev.revenue,
        ev.cost,
        ev.profit
    );
    Ok(())
}
