//! The value of foresight: offline Metis vs epoch-based online Metis.
//!
//! The paper schedules a whole billing cycle offline. In practice
//! requests arrive over time; this example reveals them in 1, 2, 4, or 12
//! epochs and lets a myopic Metis commit each epoch irrevocably.
//!
//! ```sh
//! cargo run --release --example online_arrivals
//! ```

use metis_suite::core::MetisError;
use metis_suite::core::{metis, online_metis, MetisConfig, OnlineOptions, SpmInstance};
use metis_suite::netsim::topologies;
use metis_suite::workload::{generate, WorkloadConfig};

fn main() -> Result<(), MetisError> {
    let topo = topologies::b4();
    let requests = generate(&topo, &WorkloadConfig::paper(300, 11));
    let instance = SpmInstance::new(topo, requests, 12, 3);

    let offline = metis(&instance, &MetisConfig::with_theta(8))?;
    println!(
        "offline (full foresight): profit {:.2}, accepted {}",
        offline.evaluation.profit, offline.evaluation.accepted
    );
    println!();
    println!("epochs  profit   accepted  vs offline");
    println!("------  -------  --------  ----------");
    for epochs in [1usize, 2, 4, 12] {
        let online = online_metis(
            &instance,
            &OnlineOptions {
                epochs,
                metis: MetisConfig::with_theta(8),
            },
        )?;
        println!(
            "{epochs:>6}  {:>7.2}  {:>8}  {:>9.1}%",
            online.evaluation.profit,
            online.evaluation.accepted,
            online.evaluation.profit / offline.evaluation.profit * 100.0,
        );
    }
    println!();
    println!("Myopic epochs can't coordinate path choices across arrivals,");
    println!("so finer slicing generally costs profit — the gap is what a");
    println!("provider pays for deciding immediately instead of batching.");
    Ok(())
}
