//! Quickstart: run Metis end-to-end on Google's B4 topology.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use metis_suite::core::MetisError;
use metis_suite::core::{metis, MetisConfig, SpmInstance};
use metis_suite::netsim::topologies;
use metis_suite::workload::{generate, WorkloadConfig};

fn main() -> Result<(), MetisError> {
    // The provider's WAN: 12 data centers, 19 leased bidirectional links.
    let topo = topologies::b4();
    println!(
        "network: {} data centers, {} directed links",
        topo.num_nodes(),
        topo.num_edges()
    );

    // One billing cycle of customer reservation bids (§V-A workload).
    let requests = generate(&topo, &WorkloadConfig::paper(200, 42));
    let instance = SpmInstance::new(topo, requests, 12, 3);
    println!(
        "workload: {} requests bidding {:.1} in total",
        instance.num_requests(),
        instance.total_value()
    );

    // Run the Metis alternation (θ = 8 rounds of MAA / limiter / TAA).
    let result = metis(&instance, &MetisConfig::with_theta(8))?;
    let ev = &result.evaluation;
    println!(
        "metis: accepted {}/{} requests",
        ev.accepted,
        instance.num_requests()
    );
    println!(
        "       revenue {:.2} − bandwidth cost {:.2} = profit {:.2}",
        ev.revenue, ev.cost, ev.profit
    );
    println!(
        "       average link utilization {:.0}% over {} charged links",
        ev.utilization.mean * 100.0,
        ev.utilization.links
    );

    // The SP Updater's trace: how profit evolved over the alternation.
    println!("\nprofit trace (solver, profit, accepted):");
    for rec in &result.history {
        println!("  {:?}\t{:>8.2}\t{}", rec.phase, rec.profit, rec.accepted);
    }
    Ok(())
}
