//! Profit planning: should the provider serve everyone?
//!
//! The paper's motivating scenario: a cloud provider that accepts *all*
//! reservation requests (today's service mode) leaves profit on the table
//! because some bids do not cover the leased-bandwidth cost they induce.
//! This example quantifies that across demand levels by comparing three
//! operating policies on B4:
//!
//! * **serve-all** — accept everything, schedule at minimum cost (MAA);
//! * **greedy** — EcoFlow-style per-request profit admission;
//! * **Metis** — the alternation of MAA and TAA.
//!
//! ```sh
//! cargo run --release --example profit_planning
//! ```

use metis_suite::baselines::ecoflow;
use metis_suite::core::MetisError;
use metis_suite::core::{maa, metis, MaaOptions, MetisConfig, SpmInstance};
use metis_suite::netsim::topologies;
use metis_suite::workload::{generate, WorkloadConfig};

fn main() -> Result<(), MetisError> {
    println!("demand    serve-all      greedy       Metis   Metis vs serve-all");
    println!("------  -----------  -----------  -----------  ------------------");
    for k in [100usize, 200, 400, 600] {
        let topo = topologies::b4();
        let requests = generate(&topo, &WorkloadConfig::paper(k, 7));
        let instance = SpmInstance::new(topo, requests, 12, 3);

        let all = maa(
            &instance,
            &vec![true; instance.num_requests()],
            &MaaOptions {
                rounding_repeats: 8,
                ..MaaOptions::default()
            },
        )?;
        let serve_all_profit = all.evaluation.revenue - all.evaluation.cost;

        let greedy = ecoflow(&instance).evaluate(&instance);
        let m = metis(&instance, &MetisConfig::with_theta(8))?;

        let uplift = if serve_all_profit.abs() > 1e-9 {
            format!(
                "{:+.0}%",
                (m.evaluation.profit / serve_all_profit - 1.0) * 100.0
            )
        } else {
            "n/a".to_string()
        };
        println!(
            "{k:>6}  {serve_all_profit:>11.2}  {:>11.2}  {:>11.2}  {uplift:>18}",
            greedy.profit, m.evaluation.profit
        );
    }
    println!("\nNegative serve-all profit at low demand is the paper's point:");
    println!("peak-billed 10 Gbps units are too coarse for sparse workloads,");
    println!("so selective acceptance (Metis) is what keeps profit positive.");
    Ok(())
}
