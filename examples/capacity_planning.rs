//! Capacity-constrained admission: make the most of purchased bandwidth.
//!
//! The BL-SPM setting: the provider already purchased a fixed amount of
//! bandwidth per link (here 100 Gbps everywhere, as in Fig. 4c/4d) and
//! must pick which reservations to take. Compares TAA against
//! Amoeba-style first-fit admission as pressure grows.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use metis_suite::baselines::amoeba;
use metis_suite::core::{taa, SpmInstance, TaaOptions};
use metis_suite::lp::SolveError;
use metis_suite::netsim::topologies;
use metis_suite::workload::{generate, WorkloadConfig};

fn main() -> Result<(), SolveError> {
    let capacity_units = 10.0; // 100 Gbps per link
    println!("capacity: {:.0} Gbps on every link", capacity_units * 10.0);
    println!();
    println!("demand   TAA revenue (accepted)   first-fit revenue (accepted)   TAA gain");
    println!("------  ------------------------  -----------------------------  --------");
    for k in [200usize, 400, 800, 1200] {
        let topo = topologies::b4();
        let requests = generate(&topo, &WorkloadConfig::paper(k, 3));
        let instance = SpmInstance::new(topo, requests, 12, 3);
        let caps = vec![capacity_units; instance.topology().num_edges()];

        let t = taa(&instance, &caps, &TaaOptions::default())?;
        t.schedule
            .check_capacities(&instance, &caps)
            .expect("TAA schedules are always feasible");
        let a = amoeba(&instance, &caps).evaluate(&instance);

        println!(
            "{k:>6}  {:>13.2} ({:>4})      {:>15.2} ({:>4})        {:>+7.1}%",
            t.evaluation.revenue,
            t.evaluation.accepted,
            a.revenue,
            a.accepted,
            (t.evaluation.revenue / a.revenue - 1.0) * 100.0,
        );
    }
    println!("\nUnder slack capacity both admit everything; once links bind,");
    println!("TAA's LP-guided selection outperforms arrival-order first-fit.");
    Ok(())
}
