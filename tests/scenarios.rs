//! Cross-scenario conformance harness: every scenario checked into
//! `scenarios/` must clear the same bar.
//!
//! The sweep discovers all `scenarios/*.json` at run time, so adding a
//! scenario file automatically enrolls it here — there is no list to
//! keep in sync. Per scenario the harness checks:
//!
//! 1. **Schema** — the strict loader accepts it and the file stem equals
//!    the scenario's `name` (so error messages and CLI output agree with
//!    the filename).
//! 2. **Generator invariants** — every generated request passes
//!    [`Request::validate`], rates stay inside the family's declared
//!    Gbps envelope, arrivals land inside the horizon, the stream is
//!    sorted by start slot with sequential ids.
//! 3. **Determinism** — within a (backend, warm-start) cell the solve is
//!    bit-identical across 1/2/8 worker threads. Across the two LP basis
//!    backends the heuristic may legitimately land on *different* tied
//!    LP vertices and therefore different rounded outcomes (diurnal_b4
//!    does exactly that: same revenue, ±2 cost), so backends are only
//!    required to stay within `BACKEND_GAP` of each other here — their
//!    exact outcomes are pinned per backend by the golden fixture.
//! 4. **Fault tolerance** — single-point and random [`FaultPlan`]s
//!    degrade the run, never kill it.
//! 5. **Audit** — a fully audited solve reports a clean certificate.
//! 6. **Golden outcomes** — profit/accepted per scenario are pinned in
//!    `tests/fixtures/scenarios_golden.json`; regenerate deliberately
//!    with `BLESS=1 cargo test --test scenarios -- golden` and say so in
//!    the commit message.
//!
//! `METIS_FAULTS_WARM_START=0|1` restricts the warm-start modes (the CI
//! scenario matrix sets it); anything else runs both.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use metis_suite::core::{
    metis, metis_with_faults, FaultPlan, MaaOptions, MetisConfig, MetisResult, ParallelConfig,
    Phase, SpmInstance,
};
use metis_suite::lp::BasisBackend;
use metis_suite::netsim::units_to_gbps;
use metis_suite::workload::json::Json;
use metis_suite::workload::{RequestId, Scenario};

/// Tolerance against the per-backend pinned golden profits (same
/// tolerance as `tests/golden.rs`).
const PROFIT_TOL: f64 = 1e-6;

/// Gross-divergence guard across LP basis backends: tied LP vertices may
/// round differently, but the heuristics solve the same instance and a
/// gap beyond half the better profit means one backend broke.
const BACKEND_GAP: f64 = 0.5;

fn scenario_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

/// Every checked-in scenario, sorted by file name.
fn all_scenarios() -> Vec<(PathBuf, Scenario)> {
    let dir = scenario_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 5,
        "expected the demo plus the four family scenarios, found {}",
        paths.len()
    );
    paths
        .into_iter()
        .map(|p| {
            let s = Scenario::load(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            (p, s)
        })
        .collect()
}

fn instance_of(scenario: &Scenario) -> (SpmInstance, usize) {
    let topo = scenario.build_topology();
    let requests = scenario.generate(&topo);
    let k = requests.len();
    (
        SpmInstance::new(topo, requests, scenario.num_slots(), scenario.paths),
        k,
    )
}

fn config(
    scenario: &Scenario,
    threads: usize,
    warm_start: bool,
    basis: BasisBackend,
) -> MetisConfig {
    let mut cfg = MetisConfig {
        theta: scenario.theta,
        warm_start,
        parallel: ParallelConfig {
            threads,
            ..ParallelConfig::default()
        },
        maa: MaaOptions {
            rounding_repeats: 4,
            seed: 99,
            ..MaaOptions::default()
        },
        ..MetisConfig::default()
    };
    cfg.maa.lp.basis = basis;
    cfg.taa.lp.basis = basis;
    cfg
}

/// Warm-start modes to exercise (restrictable from the CI matrix).
fn warm_modes() -> Vec<bool> {
    match std::env::var("METIS_FAULTS_WARM_START").as_deref() {
        Ok("0") => vec![false],
        Ok("1") => vec![true],
        _ => vec![false, true],
    }
}

#[test]
fn every_scenario_is_schema_valid_and_named_after_its_file() {
    for (path, scenario) in all_scenarios() {
        let stem = path.file_stem().unwrap().to_string_lossy();
        assert_eq!(
            scenario.name,
            stem,
            "{}: scenario name must match the file stem",
            path.display()
        );
        assert!(
            scenario
                .description
                .as_deref()
                .is_some_and(|d| !d.is_empty()),
            "{}: a non-empty description is required reading for the next maintainer",
            path.display()
        );
    }
}

#[test]
fn the_zoo_covers_all_four_new_families() {
    let families: BTreeSet<&'static str> =
        all_scenarios().iter().map(|(_, s)| s.family()).collect();
    for family in ["uniform", "geo_locality", "diurnal", "auction", "hose"] {
        assert!(
            families.contains(family),
            "no checked-in scenario exercises the {family} family (have {families:?})"
        );
    }
}

#[test]
fn generated_workloads_satisfy_the_conformance_invariants() {
    for (path, scenario) in all_scenarios() {
        let label = path.display();
        let topo = scenario.build_topology();
        let requests = scenario.generate(&topo);
        assert!(!requests.is_empty(), "{label}: empty workload");

        let num_slots = scenario.num_slots();
        let (lo_gbps, hi_gbps) = scenario.workload.rate_range_gbps();
        for (i, r) in requests.iter().enumerate() {
            r.validate(topo.num_nodes(), num_slots)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(r.id, RequestId(i as u32), "{label}: ids must be sequential");
            let gbps = units_to_gbps(r.rate);
            assert!(
                gbps >= lo_gbps - 1e-9 && gbps <= hi_gbps + 1e-9,
                "{label}: {} rate {gbps} Gbps outside the family envelope [{lo_gbps}, {hi_gbps}]",
                r.id
            );
        }
        assert!(
            requests.windows(2).all(|w| w[0].start <= w[1].start),
            "{label}: request stream must be sorted by start slot"
        );
    }
}

#[test]
fn every_scenario_is_deterministic_across_threads_and_backends() {
    for (path, scenario) in all_scenarios() {
        let label = path.display();
        let topo = scenario.build_topology();
        let first = scenario.generate(&topo);
        assert_eq!(
            first,
            scenario.generate(&topo),
            "{label}: generation is not reproducible"
        );

        let (inst, _) = instance_of(&scenario);
        let mut profits: Vec<(BasisBackend, f64)> = Vec::new();
        for backend in [BasisBackend::SparseLu, BasisBackend::Dense] {
            for warm_start in warm_modes() {
                let reference = metis(&inst, &config(&scenario, 1, warm_start, backend)).unwrap();
                for threads in [2, 8] {
                    let run =
                        metis(&inst, &config(&scenario, threads, warm_start, backend)).unwrap();
                    assert_eq!(
                        run.schedule, reference.schedule,
                        "{label}: {backend:?} warm={warm_start} threads={threads}"
                    );
                    assert_eq!(run.history, reference.history, "{label}");
                    assert_eq!(run.evaluation, reference.evaluation, "{label}");
                }
                profits.push((backend, reference.evaluation.profit));
            }
        }
        // Across backends, exact outcomes are pinned per backend by the
        // golden fixture; here only gross divergence is flagged.
        let (min, max) = profits
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, p)| {
                (lo.min(p), hi.max(p))
            });
        assert!(
            max - min <= BACKEND_GAP * max.max(1.0),
            "{label}: backend profits diverge grossly: {profits:?}"
        );
    }
}

#[test]
fn every_scenario_survives_fault_injection() {
    for (path, scenario) in all_scenarios() {
        let label = path.display();
        let (inst, k) = instance_of(&scenario);
        for warm_start in warm_modes() {
            let cfg = config(&scenario, 1, warm_start, BasisBackend::SparseLu);
            let mut plans: Vec<(String, FaultPlan)> = vec![
                ("maa@0".into(), FaultPlan::none().fail_at(Phase::Maa, 0)),
                ("taa@0".into(), FaultPlan::none().fail_at(Phase::Taa, 0)),
                ("maa@1".into(), FaultPlan::none().fail_at(Phase::Maa, 1)),
            ];
            for seed in 0..3 {
                plans.push((
                    format!("random({seed})"),
                    FaultPlan::random(seed, 0.3, 2 * scenario.theta + 2),
                ));
            }
            for (name, plan) in plans {
                let run = metis_with_faults(&inst, &cfg, &plan)
                    .unwrap_or_else(|e| panic!("{label} warm={warm_start} {name}: {e}"));
                assert_degraded_but_well_formed(
                    &inst,
                    &run,
                    k,
                    scenario.theta,
                    &format!("{label} warm={warm_start} {name}"),
                );
            }
        }
    }
}

fn assert_degraded_but_well_formed(
    inst: &SpmInstance,
    result: &MetisResult,
    k: usize,
    theta: usize,
    label: &str,
) {
    assert_eq!(result.schedule.len(), k, "{label}");
    for i in 0..k as u32 {
        if let Some(j) = result.schedule.path_choice(RequestId(i)) {
            assert!(
                j < inst.paths(RequestId(i)).len(),
                "{label}: r{i} routed on nonexistent path {j}"
            );
        }
    }
    assert!(
        result.evaluation.profit >= 0.0,
        "{label}: negative profit {}",
        result.evaluation.profit
    );
    assert_eq!(
        result.schedule.num_accepted(),
        result.evaluation.accepted,
        "{label}"
    );
    assert!(result.rounds <= theta, "{label}");
}

#[test]
fn every_scenario_passes_a_full_audit() {
    for (path, scenario) in all_scenarios() {
        let label = path.display();
        let (inst, _) = instance_of(&scenario);
        for warm_start in warm_modes() {
            let cfg = MetisConfig {
                audit: true,
                ..config(&scenario, 1, warm_start, BasisBackend::SparseLu)
            };
            let run = metis(&inst, &cfg).unwrap();
            let report = run
                .audit
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: audit requested but absent"));
            assert!(
                report.is_clean(),
                "{label} warm={warm_start}: audit violations {:?}",
                report.violations
            );
        }
    }
}

// ---------------------------------------------------------------------
// Golden outcomes
// ---------------------------------------------------------------------

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/scenarios_golden.json")
}

/// One audited cold solve per scenario — the configuration the fixture
/// pins (thread count does not matter: determinism across threads is
/// checked separately).
fn golden_run(scenario: &Scenario, basis: BasisBackend) -> (usize, MetisResult) {
    let (inst, k) = instance_of(scenario);
    let run = metis(&inst, &config(scenario, 1, false, basis)).unwrap();
    (k, run)
}

/// The two basis backends, with the keys they pin under in the fixture.
/// Pinning each backend separately makes the differential behavior part
/// of the record: where the keys agree the backends land on the same
/// vertex, where they differ the tie-break divergence is documented.
const BACKENDS: [(BasisBackend, &str); 2] = [
    (BasisBackend::SparseLu, "sparse_lu"),
    (BasisBackend::Dense, "dense"),
];

#[test]
fn golden_outcomes_are_pinned_per_scenario_and_backend() {
    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        let mut rows = Vec::new();
        for (_, scenario) in all_scenarios() {
            let mut entry = Vec::new();
            for (basis, key) in BACKENDS {
                let (k, run) = golden_run(&scenario, basis);
                entry.push((
                    key.to_string(),
                    Json::Obj(vec![
                        ("requests".into(), Json::Num(k as f64)),
                        ("profit".into(), Json::Num(run.evaluation.profit)),
                        ("accepted".into(), Json::Num(run.evaluation.accepted as f64)),
                    ]),
                ));
            }
            rows.push((scenario.name.clone(), Json::Obj(entry)));
        }
        std::fs::write(&path, Json::Obj(rows).to_pretty() + "\n").unwrap();
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `BLESS=1 cargo test --test scenarios -- golden` to create it",
            path.display()
        )
    });
    let fixture = Json::parse(&text).unwrap();
    let pinned = fixture.as_obj().expect("golden fixture must be an object");
    let scenarios = all_scenarios();
    assert_eq!(
        pinned.len(),
        scenarios.len(),
        "fixture pins {} scenarios but {} are checked in; regenerate with BLESS=1",
        pinned.len(),
        scenarios.len()
    );
    for (_, scenario) in &scenarios {
        let entry = fixture.get(&scenario.name).unwrap_or_else(|| {
            panic!(
                "{}: missing from the golden fixture; regenerate with BLESS=1",
                scenario.name
            )
        });
        for (basis, key) in BACKENDS {
            let pin = entry.get(key).unwrap_or_else(|| {
                panic!(
                    "{}: missing backend {key}; regenerate with BLESS=1",
                    scenario.name
                )
            });
            let want_k = pin.get("requests").and_then(Json::as_usize).unwrap();
            let want_profit = pin.get("profit").and_then(Json::as_f64).unwrap();
            let want_accepted = pin.get("accepted").and_then(Json::as_usize).unwrap();
            let (k, run) = golden_run(scenario, basis);
            assert_eq!(
                k, want_k,
                "{} [{key}]: request count drifted",
                scenario.name
            );
            assert!(
                (run.evaluation.profit - want_profit).abs() <= PROFIT_TOL,
                "{} [{key}]: profit {} != pinned {want_profit}; if the change \
                 is intended, regenerate with BLESS=1 and say so in the commit message",
                scenario.name,
                run.evaluation.profit
            );
            assert_eq!(
                run.evaluation.accepted, want_accepted,
                "{} [{key}]: accepted count drifted",
                scenario.name
            );
        }
    }
}
