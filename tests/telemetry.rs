//! End-to-end telemetry guarantees, pinned at the workspace level:
//!
//! 1. **Non-perturbation** — a run with a live collector is bit-identical
//!    to a plain run at every parallelism level (telemetry is a
//!    write-only side channel).
//! 2. **Schema stability** — the JSON snapshot's shape is pinned by a
//!    golden fixture (`tests/fixtures/telemetry_schema.json`); adding,
//!    renaming, or dropping a metric is a deliberate fixture update.
//! 3. **Histogram bucket math** — `le` boundary semantics on the shared
//!    1–2–5 grid, checked both directly and through a collector.
//! 4. **Span nesting sanity** — depth and parentage stay bounded even
//!    while fault injection reroutes the alternation's control flow.
//! 5. **Prometheus line format** — the exporter's output passes the
//!    built-in promtool-style validator (and the validator itself
//!    rejects malformed text).
//!
//! Every collector-reading test degrades to a no-op when the telemetry
//! `capture` feature is compiled out: `Telemetry::enabled()` then
//! returns the disabled handle and `snapshot()` is `None`.
//!
//! Regenerate the schema fixture after intentional metric changes with:
//! `BLESS=1 cargo test --test telemetry -- schema`.

use metis_suite::core::{
    metis, metis_instrumented, online_metis, online_metis_instrumented, FaultPlan, MetisConfig,
    OnlineOptions, ParallelConfig, SpmInstance,
};
use metis_suite::netsim::topologies;
use metis_suite::telemetry::{
    bucket_index, names, to_prometheus, validate_prometheus, Telemetry, BUCKET_COUNT,
    HISTOGRAM_BOUNDS,
};
use metis_suite::workload::{generate, ValueModel, WorkloadConfig};

/// The golden fixture of `tests/golden.rs`: B4, 40 requests, seed 2024.
fn fixture() -> SpmInstance {
    let topo = topologies::b4();
    let cfg = WorkloadConfig {
        num_requests: 40,
        value_model: ValueModel::PricedPath {
            low: 2.0,
            high: 8.0,
        },
        seed: 2024,
        ..WorkloadConfig::default()
    };
    let requests = generate(&topo, &cfg);
    SpmInstance::new(topo, requests, 12, 3)
}

const THETA: usize = 6;

#[test]
fn telemetry_on_off_bit_identical_across_thread_counts() {
    let inst = fixture();
    for threads in [1usize, 2, 8] {
        for warm_start in [false, true] {
            let cfg = MetisConfig {
                warm_start,
                parallel: ParallelConfig {
                    threads,
                    ..ParallelConfig::default()
                },
                ..MetisConfig::with_theta(THETA)
            };
            let plain = metis(&inst, &cfg).unwrap();
            let off = metis_instrumented(&inst, &cfg, &FaultPlan::none(), &Telemetry::disabled())
                .unwrap();
            let tele = Telemetry::enabled();
            let on = metis_instrumented(&inst, &cfg, &FaultPlan::none(), &tele).unwrap();
            let ctx = format!("threads = {threads}, warm_start = {warm_start}");
            assert_eq!(on.schedule, plain.schedule, "{ctx}");
            assert_eq!(on.history, plain.history, "{ctx}");
            assert_eq!(on.evaluation, plain.evaluation, "{ctx}");
            assert_eq!(off.schedule, plain.schedule, "{ctx}");
            assert_eq!(off.history, plain.history, "{ctx}");
            assert_eq!(off.evaluation, plain.evaluation, "{ctx}");
        }
    }
}

#[test]
fn telemetry_online_on_off_bit_identical() {
    let inst = fixture();
    let options = OnlineOptions::default();
    let plain = online_metis(&inst, &options).unwrap();
    let tele = Telemetry::enabled();
    let on = online_metis_instrumented(&inst, &options, &FaultPlan::none(), &tele).unwrap();
    assert_eq!(on.schedule, plain.schedule);
    assert_eq!(on.epochs, plain.epochs);
    assert_eq!(on.evaluation, plain.evaluation);
}

/// Pins the snapshot *shape* (metric names, span parentage, series
/// lengths) for the deterministic single-threaded golden run. Numeric
/// values are zeroed by `schema_json`, so timing noise cannot fail this.
#[test]
fn snapshot_schema_matches_golden_fixture() {
    let inst = fixture();
    let tele = Telemetry::enabled();
    // Audit explicitly on: debug builds audit regardless, so forcing the
    // flag keeps the recorded schema (which includes the audit counters)
    // identical across build profiles.
    let cfg = MetisConfig {
        audit: true,
        ..MetisConfig::with_theta(THETA)
    };
    let _ = metis_instrumented(&inst, &cfg, &FaultPlan::none(), &tele).unwrap();
    let Some(snap) = tele.snapshot() else {
        return; // capture feature compiled out
    };
    // Acceptance floor: the run actually exercised the instrumented paths.
    assert!(snap.counter(names::LP_SIMPLEX_ITERATIONS) > 0);
    assert!(snap
        .histogram(names::ROUND_DURATION_US)
        .is_some_and(|h| h.count > 0));
    assert!(snap
        .series(names::TAA_MU)
        .is_some_and(|s| !s.points.is_empty()));
    assert!(snap
        .series(names::TAA_U_ROOT)
        .is_some_and(|s| !s.points.is_empty()));

    let schema = snap.schema_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/telemetry_schema.json"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &schema).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(path).expect(
        "missing tests/fixtures/telemetry_schema.json — run \
`BLESS=1 cargo test --test telemetry -- schema` to create it",
    );
    assert_eq!(
        schema, golden,
        "telemetry snapshot schema drifted from the golden fixture; if the \
change is intended, regenerate with BLESS=1 and say so in the commit message"
    );
}

#[test]
fn histogram_bucket_boundaries() {
    // Exact bounds land in their own bucket (`le` semantics); anything
    // just above moves one bucket up.
    for (i, &bound) in HISTOGRAM_BOUNDS.iter().enumerate() {
        assert_eq!(bucket_index(bound), i, "at bound {bound}");
        assert_eq!(bucket_index(bound * (1.0 + 1e-9)), i + 1, "above {bound}");
    }
    // Degenerate inputs.
    assert_eq!(bucket_index(0.0), 0);
    assert_eq!(bucket_index(-1.0), 0);
    assert_eq!(bucket_index(f64::NAN), BUCKET_COUNT - 1);
    assert_eq!(bucket_index(f64::INFINITY), BUCKET_COUNT - 1);

    // The same semantics hold through a live collector.
    let tele = Telemetry::enabled();
    tele.observe("t.hist", HISTOGRAM_BOUNDS[0]);
    tele.observe("t.hist", HISTOGRAM_BOUNDS[0] * (1.0 + 1e-9));
    tele.observe("t.hist", f64::INFINITY);
    let Some(snap) = tele.snapshot() else {
        return;
    };
    let h = snap.histogram("t.hist").expect("histogram");
    assert_eq!(h.count, 3);
    assert_eq!(h.buckets.len(), BUCKET_COUNT);
    assert_eq!(h.buckets[0], 1);
    assert_eq!(h.buckets[1], 1);
    assert_eq!(h.buckets[BUCKET_COUNT - 1], 1);
    assert_eq!(h.min, HISTOGRAM_BOUNDS[0]);
    assert_eq!(h.max, f64::INFINITY);
}

/// Fault injection reroutes the alternation through retry and skip
/// paths; span nesting must stay shallow and correctly parented on
/// every one of them.
#[test]
fn span_nesting_bounded_under_fault_sweep() {
    let inst = fixture();
    for seed in 0..6u64 {
        let faults = FaultPlan::random(seed, 0.3, 16);
        let cfg = MetisConfig {
            warm_start: seed % 2 == 1,
            ..MetisConfig::with_theta(4)
        };
        let tele = Telemetry::enabled();
        let run = metis_instrumented(&inst, &cfg, &faults, &tele).unwrap();
        let Some(snap) = tele.snapshot() else {
            return;
        };
        // metis → round → {limiter, maa.relax, maa.rounding, taa.relax,
        // taa.walk}: never deeper than three.
        assert!(
            snap.max_span_depth <= 3,
            "seed {seed}: depth {} > 3",
            snap.max_span_depth
        );
        for (child, parent) in [
            (names::SPAN_ROUND, names::SPAN_METIS),
            (names::SPAN_MAA_RELAX, names::SPAN_ROUND),
            (names::SPAN_MAA_ROUNDING, names::SPAN_ROUND),
            (names::SPAN_TAA_RELAX, names::SPAN_ROUND),
            (names::SPAN_TAA_WALK, names::SPAN_ROUND),
            (names::SPAN_LIMITER, names::SPAN_ROUND),
        ] {
            if let Some(s) = snap.span(child) {
                assert_eq!(s.parent.as_deref(), Some(parent), "seed {seed}: {child}");
            }
        }
        assert_eq!(snap.dropped.span_records, 0, "seed {seed}");
        // Every contained failure surfaced as both a counter and an event.
        let incident_total =
            snap.counter(names::INCIDENT_SOLVE_FAILED) + snap.counter(names::INCIDENT_WARM_RETRY);
        assert_eq!(incident_total as usize, run.incidents.len(), "seed {seed}");
        assert_eq!(snap.events.len(), run.incidents.len(), "seed {seed}");
    }

    // Online adds two outer levels: online → epoch → metis → round → leaf.
    let tele = Telemetry::enabled();
    let faults = FaultPlan::none().fail_epoch(1);
    let _ = online_metis_instrumented(&inst, &OnlineOptions::default(), &faults, &tele).unwrap();
    if let Some(snap) = tele.snapshot() {
        assert!(snap.max_span_depth <= 5, "depth {}", snap.max_span_depth);
        let epoch = snap.span(names::SPAN_EPOCH).expect("epoch span");
        assert_eq!(epoch.parent.as_deref(), Some(names::SPAN_ONLINE));
        assert!(snap.counter(names::INCIDENT_EPOCH_SKIPPED) >= 1);
    }
}

#[test]
fn prometheus_export_is_line_format_valid() {
    let inst = fixture();
    let tele = Telemetry::enabled();
    let _ = metis_instrumented(
        &inst,
        &MetisConfig::with_theta(THETA),
        &FaultPlan::none(),
        &tele,
    )
    .unwrap();
    let Some(snap) = tele.snapshot() else {
        return;
    };
    let text = to_prometheus(&snap);
    validate_prometheus(&text).expect("exporter output must satisfy the line format");
    assert!(text.contains("metis_lp_simplex_iterations"));
    assert!(text.contains("metis_alternation_round_duration_us_bucket{le=\"+Inf\"}"));
    assert!(text.ends_with('\n'));

    // The validator is not a rubber stamp: promtool's core complaints
    // (bad metric name, bad label syntax, non-numeric value) all fail.
    for bad in [
        "1bad_name 3\n",
        "# TYPE metis_x counter\nmetis_x{le=+Inf} 1\n",
        "# TYPE metis_y gauge\nmetis_y one\n",
    ] {
        assert!(validate_prometheus(bad).is_err(), "accepted: {bad:?}");
    }
}
