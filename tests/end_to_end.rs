//! Cross-crate integration: the full pipeline from workload generation
//! through every scheduler, checked against the model's invariants.

use metis_suite::baselines::{amoeba, ecoflow, mincost, opt_rlspm, opt_spm, opt_spm_with_start};
use metis_suite::core::{
    maa, metis, taa, MaaOptions, MetisConfig, Schedule, SpmInstance, TaaOptions,
};
use metis_suite::lp::IlpOptions;
use metis_suite::netsim::topologies;
use metis_suite::workload::{generate, RequestId, WorkloadConfig};

fn sub_b4_instance(k: usize, seed: u64, paths: usize) -> SpmInstance {
    let topo = topologies::sub_b4();
    let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
    SpmInstance::new(topo, requests, 12, paths)
}

fn b4_instance(k: usize, seed: u64) -> SpmInstance {
    let topo = topologies::b4();
    let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
    SpmInstance::new(topo, requests, 12, 3)
}

/// A θ-round config for this suite. Setting `METIS_AUDIT` in the
/// environment (the CI audit leg does, in release mode) forces the
/// solution audits on, so every Metis run below re-derives its load and
/// accounting from scratch and fails loudly on any disagreement.
fn theta(theta: usize) -> MetisConfig {
    MetisConfig {
        audit: std::env::var_os("METIS_AUDIT").is_some(),
        ..MetisConfig::with_theta(theta)
    }
}

/// Runs Metis under [`theta`] and asserts a clean audit when one ran.
fn run_metis(inst: &SpmInstance, rounds: usize) -> metis_suite::core::MetisResult {
    let result = metis(inst, &theta(rounds)).unwrap();
    if let Some(report) = &result.audit {
        assert!(report.is_clean(), "{report}");
    }
    result
}

#[test]
fn every_scheduler_produces_valid_schedules() {
    let inst = b4_instance(80, 1);
    let caps = vec![10.0; inst.topology().num_edges()];

    let schedules: Vec<(&str, Schedule)> = vec![
        ("mincost", mincost(&inst)),
        ("amoeba", amoeba(&inst, &caps)),
        ("ecoflow", ecoflow(&inst)),
        (
            "maa",
            maa(&inst, &[true; 80], &MaaOptions::default())
                .unwrap()
                .schedule,
        ),
        (
            "taa",
            taa(&inst, &caps, &TaaOptions::default()).unwrap().schedule,
        ),
        ("metis", run_metis(&inst, 4).schedule),
    ];
    for (name, s) in schedules {
        assert_eq!(s.len(), 80, "{name}: wrong request count");
        // Every accepted request routes on one of its own candidate paths.
        for i in 0..80u32 {
            if let Some(j) = s.path_choice(RequestId(i)) {
                assert!(
                    j < inst.paths(RequestId(i)).len(),
                    "{name}: path index out of range"
                );
            }
        }
        // Evaluation identity.
        let ev = s.evaluate(&inst);
        assert!(
            (ev.profit - (ev.revenue - ev.cost)).abs() < 1e-9,
            "{name}: profit identity"
        );
        // Charged capacity covers the load.
        assert!(
            s.check_capacities(&inst, &ev.charged).is_ok(),
            "{name}: charged units below peak load"
        );
    }
}

#[test]
fn capacity_constrained_schedulers_respect_capacities() {
    for seed in 0..3 {
        let inst = b4_instance(150, seed);
        let caps = vec![2.0; inst.topology().num_edges()];
        let t = taa(&inst, &caps, &TaaOptions::default()).unwrap();
        t.schedule.check_capacities(&inst, &caps).unwrap();
        let a = amoeba(&inst, &caps);
        a.check_capacities(&inst, &caps).unwrap();
    }
}

#[test]
fn exact_optimum_dominates_every_heuristic() {
    // Small enough for the MILP to prove optimality.
    let inst = sub_b4_instance(12, 3, 2);
    let opt = opt_spm(&inst, &IlpOptions::default()).unwrap();
    assert!(opt.optimal, "instance must be exactly solvable");

    let eco = ecoflow(&inst).evaluate(&inst);
    let m = run_metis(&inst, 6);
    let serve_all = maa(&inst, &[true; 12], &MaaOptions::default())
        .unwrap()
        .evaluation;

    let opt_profit = opt.evaluation.profit;
    assert!(opt_profit >= eco.profit - 1e-6);
    assert!(opt_profit >= m.evaluation.profit - 1e-6);
    assert!(opt_profit >= serve_all.revenue - serve_all.cost - 1e-6);
}

#[test]
fn opt_rlspm_is_cheapest_way_to_serve_all() {
    let inst = sub_b4_instance(10, 4, 2);
    let opt = opt_rlspm(&inst, &IlpOptions::default()).unwrap();
    assert!(opt.optimal);
    assert_eq!(opt.evaluation.accepted, 10);

    // MAA and MinCost also serve everyone; neither can be cheaper.
    let m = maa(&inst, &[true; 10], &MaaOptions::default()).unwrap();
    assert!(opt.evaluation.cost <= m.evaluation.cost + 1e-6);
    let mc = mincost(&inst).evaluate(&inst);
    assert!(opt.evaluation.cost <= mc.cost + 1e-6);
}

#[test]
fn warm_started_opt_never_loses_to_its_seed() {
    let inst = sub_b4_instance(40, 5, 3);
    let m = run_metis(&inst, 5);
    let opt = opt_spm_with_start(
        &inst,
        &IlpOptions {
            max_nodes: 50,
            ..IlpOptions::default()
        },
        &m.schedule,
    )
    .unwrap();
    assert!(opt.evaluation.profit >= m.evaluation.profit - 1e-6);
    // The reported bound brackets the true optimum from above.
    assert!(opt.bound >= opt.evaluation.profit - 1e-6);
}

#[test]
fn metis_profit_beats_current_service_mode_at_scale() {
    // The headline claim: selective acceptance beats accept-everything.
    let inst = b4_instance(300, 2);
    let serve_all = maa(&inst, &[true; 300], &MaaOptions::default()).unwrap();
    let serve_all_profit = serve_all.evaluation.revenue - serve_all.evaluation.cost;
    let m = run_metis(&inst, 8);
    assert!(
        m.evaluation.profit >= serve_all_profit,
        "metis {} < serve-all {}",
        m.evaluation.profit,
        serve_all_profit
    );
    assert!(m.evaluation.profit > 0.0);
}

#[test]
fn lp_relaxations_bracket_integral_solutions() {
    let inst = b4_instance(60, 6);
    // RL-SPM: fractional cost lower-bounds any integral serving cost.
    let m = maa(&inst, &[true; 60], &MaaOptions::default()).unwrap();
    assert!(m.relaxation.cost <= m.evaluation.cost + 1e-6);
    // BL-SPM: fractional revenue upper-bounds any feasible revenue.
    let caps = vec![5.0; inst.topology().num_edges()];
    let t = taa(&inst, &caps, &TaaOptions::default()).unwrap();
    assert!(t.relaxation.revenue >= t.evaluation.revenue - 1e-6);
}

#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let inst = b4_instance(120, 9);
        let m = run_metis(&inst, 5);
        (
            m.evaluation.profit,
            m.evaluation.accepted,
            m.schedule.clone(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn declined_requests_cost_nothing() {
    let inst = sub_b4_instance(20, 7, 3);
    let m = run_metis(&inst, 6);
    // Rebuild the load from scratch; only accepted requests contribute.
    let ev = m.schedule.evaluate(&inst);
    let mut expected_revenue = 0.0;
    for r in inst.requests() {
        if m.schedule.is_accepted(r.id) {
            expected_revenue += r.value;
        }
    }
    assert!((ev.revenue - expected_revenue).abs() < 1e-9);
}
