//! Golden-fixture regression test: one fixed workload, pinned outcomes.
//!
//! The fixture pins the full solve pipeline (workload generation → LP
//! relaxations → rounding / derandomized walk → SP updater) on B4 with
//! 40 requests and a fixed seed. Any change to the RNG streams, the
//! simplex pivoting, or the alternation logic shows up here first; update
//! the constants deliberately when such a change is intended, and say so
//! in the commit message.
//!
//! The workload uses a raised bid markup (`PricedPath { 2.0, 8.0 }`):
//! with the paper's default markup, 40 requests on the full B4 cannot
//! outbid B4's peak-billed integer unit charges and every run pins to the
//! degenerate zero-profit/zero-accepted outcome, which would regress
//! nothing.

use metis_suite::core::{metis, MetisConfig, SpmInstance};
use metis_suite::netsim::topologies;
use metis_suite::workload::{generate, ValueModel, WorkloadConfig};

const K: usize = 40;
const SEED: u64 = 2024;
const THETA: usize = 6;

/// Pinned profit of the default (cold) pipeline.
const GOLDEN_PROFIT: f64 = 15.297028551237;
/// Pinned accepted-request count of the default (cold) pipeline.
const GOLDEN_ACCEPTED: usize = 35;
/// Pinned profit with warm-started LPs (the warm pipeline happens to land
/// on the same optima for this fixture).
const GOLDEN_WARM_PROFIT: f64 = 15.297028551237;
/// Pinned accepted-request count with warm-started LPs.
const GOLDEN_WARM_ACCEPTED: usize = 35;

const TOL: f64 = 1e-6;

fn fixture() -> SpmInstance {
    let topo = topologies::b4();
    let cfg = WorkloadConfig {
        num_requests: K,
        value_model: ValueModel::PricedPath {
            low: 2.0,
            high: 8.0,
        },
        seed: SEED,
        ..WorkloadConfig::default()
    };
    let requests = generate(&topo, &cfg);
    SpmInstance::new(topo, requests, 12, 3)
}

#[test]
fn golden_b4_forty_requests() {
    let inst = fixture();
    let cold = metis(&inst, &MetisConfig::with_theta(THETA)).unwrap();
    let warm = metis(
        &inst,
        &MetisConfig {
            warm_start: true,
            ..MetisConfig::with_theta(THETA)
        },
    )
    .unwrap();
    assert!(
        (cold.evaluation.profit - GOLDEN_PROFIT).abs() <= TOL,
        "cold profit {} != pinned {GOLDEN_PROFIT}",
        cold.evaluation.profit
    );
    assert_eq!(cold.evaluation.accepted, GOLDEN_ACCEPTED);
    assert!(
        (warm.evaluation.profit - GOLDEN_WARM_PROFIT).abs() <= TOL,
        "warm profit {} != pinned {GOLDEN_WARM_PROFIT}",
        warm.evaluation.profit
    );
    assert_eq!(warm.evaluation.accepted, GOLDEN_WARM_ACCEPTED);
    // Cross-checks that hold whatever the pinned numbers are.
    assert!(
        (cold.evaluation.profit - (cold.evaluation.revenue - cold.evaluation.cost)).abs() < 1e-9
    );
    assert!(cold.evaluation.profit >= 0.0 && warm.evaluation.profit >= 0.0);
}

/// Same fixture, with the LP basis backend pinned explicitly on both
/// sides of the A/B switch: the sparse-LU and dense-inverse backends
/// must both land on the pinned golden outcome, warm and cold.
#[test]
fn golden_b4_forty_requests_on_both_lp_backends() {
    use metis_suite::lp::BasisBackend;

    let inst = fixture();
    for backend in [BasisBackend::SparseLu, BasisBackend::Dense] {
        for warm_start in [false, true] {
            let mut cfg = MetisConfig {
                warm_start,
                ..MetisConfig::with_theta(THETA)
            };
            cfg.maa.lp.basis = backend;
            cfg.taa.lp.basis = backend;
            let run = metis(&inst, &cfg).unwrap();
            assert!(
                (run.evaluation.profit - GOLDEN_PROFIT).abs() <= TOL,
                "{backend:?} warm_start={warm_start}: profit {} != pinned {GOLDEN_PROFIT}",
                run.evaluation.profit
            );
            assert_eq!(
                run.evaluation.accepted, GOLDEN_ACCEPTED,
                "{backend:?} warm_start={warm_start}: accepted count drifted"
            );
        }
    }
}
