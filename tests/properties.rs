//! Property-based tests over randomly generated topologies and
//! workloads: the invariants every scheduler must hold regardless of the
//! input's shape.

use proptest::prelude::*;

use metis_suite::baselines::{amoeba, ecoflow, ecoflow_with, mincost, EcoflowCostModel};
use metis_suite::core::{
    maa, metis, online_metis, taa, LimiterRule, MaaOptions, MetisConfig, OnlineOptions,
    SpmInstance, TaaOptions,
};
use metis_suite::netsim::{
    ceil_units, units_to_gbps, EdgeId, LoadMatrix, Region, Topology, CEIL_EPS,
};
use metis_suite::workload::{
    generate, AuctionSpec, BurstSpec, DiurnalSpec, FamilySpec, GeoLocalitySpec, Horizon, HoseSpec,
    Request, RequestId, Scenario, TopologySpec, UniformSpec, ValueModel, WorkloadConfig,
    SCENARIO_VERSION,
};

/// A random strongly-connected topology: a ring over `n` nodes plus
/// `extra` random chords, with prices drawn from the region table.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (
        3usize..8,
        0usize..6,
        proptest::collection::vec(0u8..5, 0..6),
        any::<u64>(),
    )
        .prop_map(|(n, extra, chord_seeds, salt)| {
            let regions = [
                Region::NorthAmerica,
                Region::Europe,
                Region::Asia,
                Region::SouthAmerica,
                Region::Oceania,
            ];
            let mut b = Topology::builder();
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    b.add_node(
                        format!("DC{}", i + 1),
                        regions[(i + salt as usize) % regions.len()],
                    )
                })
                .collect();
            for i in 0..n {
                b.add_regional_link(ids[i], ids[(i + 1) % n], 1.0);
            }
            for (k, &cs) in chord_seeds.iter().take(extra).enumerate() {
                let a = (cs as usize + k) % n;
                let c = (cs as usize + k + 2) % n;
                if a != c {
                    // Duplicate links are fine: they are parallel edges.
                    b.add_regional_link(ids[a], ids[c], 1.0);
                }
            }
            b.build()
        })
}

fn arb_instance() -> impl Strategy<Value = SpmInstance> {
    (arb_topology(), 1usize..40, any::<u64>(), 2usize..4).prop_map(|(topo, k, seed, paths)| {
        let cfg = WorkloadConfig {
            num_requests: k,
            num_slots: 12,
            rate_gbps: (0.1, 5.0),
            value_model: ValueModel::default(),
            seed,
        };
        let requests = generate(&topo, &cfg);
        SpmInstance::new(topo, requests, 12, paths)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn evaluation_identity_and_coverage(inst in arb_instance()) {
        let s = mincost(&inst);
        let ev = s.evaluate(&inst);
        prop_assert!((ev.profit - (ev.revenue - ev.cost)).abs() < 1e-9);
        prop_assert_eq!(ev.accepted, inst.num_requests());
        // Charged units always cover the peak.
        for e in inst.topology().edge_ids() {
            prop_assert!(ev.charged[e.index()] + 1e-9 >= ev.load.peak(e));
        }
    }

    #[test]
    fn maa_serves_everyone_and_respects_lp_bound(inst in arb_instance()) {
        let accepted = vec![true; inst.num_requests()];
        let m = maa(&inst, &accepted, &MaaOptions::default()).unwrap();
        prop_assert_eq!(m.schedule.num_accepted(), inst.num_requests());
        prop_assert!(m.evaluation.cost >= m.relaxation.cost - 1e-6);
    }

    #[test]
    fn taa_feasible_under_arbitrary_capacity(
        inst in arb_instance(),
        cap in prop_oneof![Just(0.0), 1.0f64..20.0],
    ) {
        let caps = vec![cap; inst.topology().num_edges()];
        let t = taa(&inst, &caps, &TaaOptions::default()).unwrap();
        prop_assert!(t.schedule.check_capacities(&inst, &caps).is_ok());
        prop_assert!(t.evaluation.revenue <= t.relaxation.revenue + 1e-6);
        if cap == 0.0 {
            prop_assert_eq!(t.schedule.num_accepted(), 0);
        }
    }

    #[test]
    fn amoeba_never_overloads(inst in arb_instance(), cap in 1.0f64..10.0) {
        let caps = vec![cap; inst.topology().num_edges()];
        let s = amoeba(&inst, &caps);
        prop_assert!(s.check_capacities(&inst, &caps).is_ok());
    }

    #[test]
    fn ecoflow_unit_charge_profit_nonnegative(inst in arb_instance()) {
        let ev = ecoflow_with(&inst, EcoflowCostModel::UnitCharge).evaluate(&inst);
        prop_assert!(ev.profit >= -1e-9);
    }

    #[test]
    fn ecoflow_models_are_deterministic_and_valid(inst in arb_instance()) {
        // The two cost models may route (and hence admit) differently —
        // neither dominates in acceptance count — but both must be
        // deterministic and produce consistent evaluations.
        for model in [EcoflowCostModel::Proportional, EcoflowCostModel::UnitCharge] {
            let a = ecoflow_with(&inst, model);
            let b = ecoflow_with(&inst, model);
            prop_assert_eq!(&a, &b);
            let ev = a.evaluate(&inst);
            prop_assert!((ev.profit - (ev.revenue - ev.cost)).abs() < 1e-9);
        }
        prop_assert_eq!(ecoflow(&inst), ecoflow_with(&inst, EcoflowCostModel::Proportional));
    }

    #[test]
    fn metis_profit_nonnegative_and_recorded(inst in arb_instance()) {
        let m = metis(&inst, &MetisConfig::with_theta(3)).unwrap();
        prop_assert!(m.evaluation.profit >= 0.0);
        // The recorded best dominates every history entry.
        for rec in &m.history {
            prop_assert!(m.evaluation.profit >= rec.profit - 1e-9);
        }
    }

    #[test]
    fn load_matrix_incremental_matches_rebuild(
        ops in proptest::collection::vec(
            (0usize..4, 0usize..12, 0usize..12, 0.01f64..3.0, any::<bool>()), 1..40),
    ) {
        const EDGES: usize = 4;
        const SLOTS: usize = 12;
        let mut live = LoadMatrix::new(EDGES, SLOTS);
        // Surviving add operations, in application order.
        let mut surviving: Vec<(usize, usize, usize, f64)> = Vec::new();
        for (e, a, b, amt, is_remove) in ops {
            let (start, end) = if a <= b { (a, b) } else { (b, a) };
            if is_remove && !surviving.is_empty() {
                // Undo a previously applied add instead of a fresh one.
                let (pe, ps, pend, pamt) = surviving.swap_remove(e % surviving.len());
                live.remove(EdgeId(pe as u32), ps, pend, pamt);
            } else {
                live.add(EdgeId(e as u32), start, end, amt);
                surviving.push((e, start, end, amt));
            }

            // Invariant A (exact): the cached peak is bit-identical to a
            // scan of the live cells, after every single operation.
            for edge in 0..EDGES {
                let id = EdgeId(edge as u32);
                let scan = (0..SLOTS)
                    .map(|t| live.get(id, t))
                    .fold(0.0_f64, f64::max);
                prop_assert_eq!(
                    live.peak(id).to_bits(),
                    scan.to_bits(),
                    "edge {} cache {} != scan {}",
                    edge,
                    live.peak(id),
                    scan
                );
                prop_assert_eq!(live.charged_units(id), ceil_units(scan));
            }
        }

        // Invariant B (tolerant): the final state matches a freshly
        // rebuilt matrix holding only the surviving adds. (Add/remove
        // pairs cancel only up to float rounding, hence the epsilon.)
        let mut rebuilt = LoadMatrix::new(EDGES, SLOTS);
        for &(e, start, end, amt) in &surviving {
            rebuilt.add(EdgeId(e as u32), start, end, amt);
        }
        for edge in 0..EDGES {
            let id = EdgeId(edge as u32);
            prop_assert!((live.peak(id) - rebuilt.peak(id)).abs() < 1e-9);
            prop_assert_eq!(live.charged_units(id), rebuilt.charged_units(id));
            for t in 0..SLOTS {
                prop_assert!((live.get(id, t) - rebuilt.get(id, t)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fits_never_admits_a_violation(
        ops in proptest::collection::vec(
            (0usize..2, 0usize..12, 0usize..12, 0.01f64..2.0), 1..30),
        cap in 0.5f64..6.0,
    ) {
        // Admission-control invariant relied on by TAA and Amoeba: only
        // add load that `fits`, and no cell ever exceeds the capacity
        // (beyond the documented CEIL_EPS slack).
        let mut load = LoadMatrix::new(2, 12);
        for (e, a, b, amt) in ops {
            let (start, end) = if a <= b { (a, b) } else { (b, a) };
            let id = EdgeId(e as u32);
            if load.fits(id, start, end, amt, cap) {
                load.add(id, start, end, amt);
            }
        }
        for e in 0..2u32 {
            let id = EdgeId(e);
            for t in 0..12 {
                prop_assert!(load.get(id, t) <= cap + CEIL_EPS);
            }
            prop_assert!(load.peak(id) <= cap + CEIL_EPS);
        }
    }

    #[test]
    fn schedule_load_is_additive(inst in arb_instance()) {
        // Load of a schedule equals the sum of per-request loads.
        let s = mincost(&inst);
        let combined = s.load(&inst);
        let mut total = 0.0;
        for r in inst.requests() {
            let j = s.path_choice(r.id).unwrap();
            let path = &inst.paths(r.id)[j];
            total += r.rate * path.edges().len() as f64 * r.duration() as f64;
        }
        let sum_cells: f64 = inst
            .topology()
            .edge_ids()
            .map(|e| (0..inst.num_slots()).map(|t| combined.get(e, t)).sum::<f64>())
            .sum();
        prop_assert!((sum_cells - total).abs() < 1e-6);
    }
}

/// Degenerate instances must run to completion — never panic, never lose
/// the profit ≥ 0 guarantee — through both the offline and online entry
/// points.
fn assert_degrades_gracefully(inst: &SpmInstance, label: &str) {
    let m =
        metis(inst, &MetisConfig::with_theta(3)).unwrap_or_else(|e| panic!("{label}: metis: {e}"));
    assert!(m.evaluation.profit >= 0.0, "{label}");
    assert!(m.incidents.is_empty(), "{label}: no faults were injected");
    for epochs in [1, 4] {
        let o = online_metis(
            inst,
            &OnlineOptions {
                epochs,
                metis: MetisConfig::with_theta(3),
            },
        )
        .unwrap_or_else(|e| panic!("{label}: online({epochs}): {e}"));
        assert!(o.evaluation.profit >= 0.0, "{label}: online({epochs})");
        let arrived: usize = o.epochs.iter().map(|e| e.arrived).sum();
        assert_eq!(arrived, inst.num_requests(), "{label}: online({epochs})");
    }
}

#[test]
fn degenerate_empty_workload() {
    // K = 0: nothing to schedule, profit exactly zero.
    let topo = topologies_sub_b4();
    let inst = SpmInstance::new(topo, Vec::new(), 12, 3);
    assert_degrades_gracefully(&inst, "K=0");
    let m = metis(&inst, &MetisConfig::with_theta(3)).unwrap();
    assert_eq!(m.evaluation.profit, 0.0);
    assert_eq!(m.evaluation.accepted, 0);
}

#[test]
fn degenerate_single_slot_cycle() {
    // T = 1: every request occupies the whole (one-slot) cycle, so peak
    // billing and per-slot load coincide.
    let topo = topologies_sub_b4();
    let cfg = WorkloadConfig {
        num_requests: 15,
        num_slots: 1,
        ..WorkloadConfig::paper(15, 3)
    };
    let requests = generate(&topo, &cfg);
    assert!(requests.iter().all(|r| r.start == 0 && r.end == 0));
    let inst = SpmInstance::new(topo, requests, 1, 3);
    assert_degrades_gracefully(&inst, "T=1");
}

#[test]
fn degenerate_zero_capacity_is_limiter_fixed_point() {
    // Every τ rule maps an all-zero budget to an all-zero budget, so the
    // alternation's "no capacity left" exit is a true fixed point rather
    // than an oscillation — and TAA at that point declines everything.
    let topo = topologies_sub_b4();
    let requests = generate(&topo, &WorkloadConfig::paper(10, 4));
    let inst = SpmInstance::new(topo, requests, 12, 3);
    let zeros = vec![0.0; inst.topology().num_edges()];
    let no_load = LoadMatrix::new(inst.topology().num_edges(), inst.num_slots());
    for rule in [
        LimiterRule::MinUtilization,
        LimiterRule::MaxPrice,
        LimiterRule::UniformShrink,
    ] {
        let tightened = rule.apply(inst.topology(), &no_load, &zeros);
        assert_eq!(tightened, zeros, "{rule:?} must keep the fixed point");
    }
    let t = taa(&inst, &zeros, &TaaOptions::default()).unwrap();
    assert_eq!(t.schedule.num_accepted(), 0);
    assert_degrades_gracefully(&inst, "zero-capacity");
}

#[test]
fn degenerate_single_request_single_path() {
    // Two nodes, one link, one request: the smallest non-trivial SPM.
    let mut b = Topology::builder();
    let n0 = b.add_node("a", Region::Europe);
    let n1 = b.add_node("b", Region::Europe);
    b.add_link(n0, n1, 2.0);
    let topo = b.build();
    let r = Request {
        id: RequestId(0),
        src: n0,
        dst: n1,
        start: 0,
        end: 5,
        rate: 0.5,
        value: 9.0,
    };
    let inst = SpmInstance::new(topo, vec![r], 12, 3);
    assert_eq!(inst.paths(RequestId(0)).len(), 1);
    assert_degrades_gracefully(&inst, "1x1");
    // The bid (9) covers the cost (one unit on each direction's billing:
    // 2 per unit here), so Metis should take it.
    let m = metis(&inst, &MetisConfig::with_theta(3)).unwrap();
    assert_eq!(m.evaluation.accepted, 1);
    assert!(m.evaluation.profit > 0.0);
}

fn topologies_sub_b4() -> Topology {
    metis_suite::netsim::topologies::sub_b4()
}

// ---------------------------------------------------------------------
// Scenario-generator invariants
// ---------------------------------------------------------------------

/// A valid rate range in Gbps: `lo < hi`, both positive and finite.
fn arb_rate_range() -> impl Strategy<Value = (f64, f64)> {
    (0.05f64..2.0, 0.1f64..8.0).prop_map(|(lo, width)| (lo, lo + width))
}

fn arb_scenario_topology() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        Just(TopologySpec::B4),
        Just(TopologySpec::SubB4),
        Just(TopologySpec::Abilene),
        Just(TopologySpec::Geant),
        (3u32..10, 0usize..8, any::<u64>()).prop_map(|(nodes, extra_links, seed)| {
            TopologySpec::Random {
                nodes,
                extra_links,
                seed,
            }
        }),
    ]
}

/// Any valid scenario across all five generator families, with family
/// parameters swept over their full documented domains (locality and
/// strategic fraction over all of `[0, 1]`, multi-cycle horizons, bursts
/// on and off, explicit and degree-derived populations).
fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (arb_scenario_topology(), 2usize..16, 1usize..4, any::<u64>()).prop_flat_map(
        |(topology, slots_per_cycle, cycles, seed)| {
            let nodes = topology.build().num_nodes();
            let horizon = Horizon {
                slots_per_cycle,
                cycles,
            };
            let num_slots = horizon.num_slots();
            let uniform = (1usize..40, arb_rate_range()).prop_map(|(num_requests, rate_gbps)| {
                FamilySpec::Uniform(UniformSpec {
                    num_requests,
                    rate_gbps,
                    value_model: ValueModel::default(),
                })
            });
            let geo = (
                1usize..40,
                arb_rate_range(),
                0.0f64..=1.0,
                proptest::option::of(proptest::collection::vec(0.1f64..10.0, nodes)),
            )
                .prop_map(|(num_requests, rate_gbps, locality, populations)| {
                    FamilySpec::GeoLocality(GeoLocalitySpec {
                        num_requests,
                        rate_gbps,
                        value_model: ValueModel::default(),
                        locality,
                        populations,
                    })
                });
            let diurnal = (
                1usize..40,
                arb_rate_range(),
                1.0f64..8.0,
                0..slots_per_cycle,
                proptest::option::of(
                    (0.0f64..=1.0, 1.0f64..6.0)
                        .prop_map(|(prob, multiplier)| BurstSpec { prob, multiplier }),
                ),
                proptest::option::of(1..=num_slots),
            )
                .prop_map(
                    move |(num_requests, rate_gbps, peak_to_trough, peak_slot, burst, max_dur)| {
                        FamilySpec::Diurnal(DiurnalSpec {
                            num_requests,
                            rate_gbps,
                            value_model: ValueModel::default(),
                            peak_to_trough,
                            peak_slot,
                            burst,
                            max_duration_slots: max_dur,
                        })
                    },
                );
            let auction = (
                1usize..40,
                arb_rate_range(),
                (0.2f64..2.0, 0.1f64..6.0),
                0.01f64..0.99,
                0.0f64..=1.0,
            )
                .prop_map(
                    |(num_requests, rate_gbps, (mlo, mw), epsilon, strategic_fraction)| {
                        FamilySpec::Auction(AuctionSpec {
                            num_requests,
                            rate_gbps,
                            markup: (mlo, mlo + mw),
                            epsilon,
                            strategic_fraction,
                        })
                    },
                );
            let hose = (
                1usize..8,
                2usize..=nodes.min(6),
                arb_rate_range(),
                0.1f64..5.0,
                (0.2f64..2.0, 0.1f64..4.0),
                proptest::option::of(1..=num_slots),
            )
                .prop_map(
                    move |(clusters, max_ep, hose_gbps, per_unit_slot, (mlo, mw), max_dur)| {
                        FamilySpec::Hose(HoseSpec {
                            clusters,
                            endpoints: (2, max_ep),
                            hose_gbps,
                            per_unit_slot,
                            markup: (mlo, mlo + mw),
                            max_duration_slots: max_dur,
                        })
                    },
                );
            let family = prop_oneof![uniform, geo, diurnal, auction, hose];
            family.prop_map(move |workload| Scenario {
                version: SCENARIO_VERSION,
                name: "prop".into(),
                description: None,
                topology: topology.clone(),
                horizon,
                seed,
                theta: 3,
                paths: 3,
                workload,
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The universal generator contract, over every family and the full
    /// parameter domain: no self-loops, finite positive rates and
    /// finite non-negative values, every reservation inside the horizon,
    /// rates inside the family's declared Gbps envelope, the stream
    /// sorted by start slot with sequential ids — and bit-identical on
    /// regeneration.
    #[test]
    fn scenario_generators_uphold_the_request_contract(scenario in arb_scenario()) {
        let topo = scenario.build_topology();
        let requests = scenario.generate(&topo);
        let (lo, hi) = scenario.workload.rate_range_gbps();
        let num_slots = scenario.num_slots();
        for (i, r) in requests.iter().enumerate() {
            // validate() covers src != dst, endpoint range, start <= end,
            // end < num_slots, NaN/±∞ and sign constraints on rate/value.
            prop_assert!(r.validate(topo.num_nodes(), num_slots).is_ok(),
                "{}: {:?}", r.validate(topo.num_nodes(), num_slots).unwrap_err(), r);
            prop_assert_eq!(r.id, RequestId(i as u32));
            let gbps = units_to_gbps(r.rate);
            prop_assert!(gbps >= lo - 1e-9 && gbps <= hi + 1e-9,
                "rate {} Gbps outside [{}, {}]", gbps, lo, hi);
        }
        prop_assert!(requests.windows(2).all(|w| w[0].start <= w[1].start));
        prop_assert_eq!(&requests, &scenario.generate(&topo));
    }

    /// Request counts follow the spec: point-to-point families emit
    /// exactly `num_requests`; hose clusters emit an uplink and a
    /// downlink per non-hub member.
    #[test]
    fn scenario_request_counts_match_the_spec(scenario in arb_scenario()) {
        let topo = scenario.build_topology();
        let n = scenario.generate(&topo).len();
        match &scenario.workload {
            FamilySpec::Uniform(s) => prop_assert_eq!(n, s.num_requests),
            FamilySpec::GeoLocality(s) => prop_assert_eq!(n, s.num_requests),
            FamilySpec::Diurnal(s) => prop_assert_eq!(n, s.num_requests),
            FamilySpec::Auction(s) => prop_assert_eq!(n, s.num_requests),
            FamilySpec::Hose(s) => {
                let (min_ep, max_ep) = s.endpoints;
                prop_assert!(n >= s.clusters * 2 * (min_ep - 1));
                prop_assert!(n <= s.clusters * 2 * (max_ep - 1));
            }
        }
    }
}

/// Hand-built adversarial case: a request whose two candidate paths share
/// one edge; whatever is chosen, accounting must stay consistent.
#[test]
fn shared_edge_paths_account_once() {
    let mut b = Topology::builder();
    let n0 = b.add_node("a", Region::Europe);
    let n1 = b.add_node("b", Region::Europe);
    let n2 = b.add_node("c", Region::Europe);
    b.add_link(n0, n1, 1.0);
    b.add_link(n1, n2, 1.0);
    b.add_link(n0, n2, 5.0);
    let topo = b.build();
    let r = Request {
        id: RequestId(0),
        src: n0,
        dst: n2,
        start: 0,
        end: 3,
        rate: 0.4,
        value: 10.0,
    };
    let inst = SpmInstance::new(topo, vec![r], 12, 3);
    let m = maa(&inst, &[true], &MaaOptions::default()).unwrap();
    // Cheapest route a→b→c costs 2 (one unit per link).
    assert!((m.evaluation.cost - 2.0).abs() < 1e-9);
}
