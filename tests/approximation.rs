//! Empirical checks of the paper's approximation guarantees
//! (Theorems 2, 4, and 6) on exactly-solvable instances.

use metis_suite::baselines::opt_rlspm;
use metis_suite::core::chernoff::{chernoff_bound, chernoff_delta, select_mu};
use metis_suite::core::{maa, solve_blspm_relaxation, taa, MaaOptions, SpmInstance, TaaOptions};
use metis_suite::lp::{IlpOptions, SolveOptions};
use metis_suite::netsim::topologies;
use metis_suite::workload::{generate, WorkloadConfig};

fn sub_b4_instance(k: usize, seed: u64) -> SpmInstance {
    let topo = topologies::sub_b4();
    let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
    SpmInstance::new(topo, requests, 12, 2)
}

/// Theorem 2 (ceiling stage): the integral charge is within
/// `(α+1)/α` of the rounded schedule's fractional charge.
#[test]
fn ceiling_ratio_respects_theorem_2() {
    for seed in 0..5 {
        let inst = sub_b4_instance(25, seed);
        let accepted = vec![true; 25];
        let m = maa(&inst, &accepted, &MaaOptions::default()).unwrap();

        let Some(alpha) = m.relaxation.alpha() else {
            continue;
        };
        // Fractional cost of the *rounded* schedule (pre-ceiling): use
        // peak loads directly.
        let load = m.schedule.load(&inst);
        let topo = inst.topology();
        let fractional: f64 = topo.edge_ids().map(|e| topo.price(e) * load.peak(e)).sum();
        let ratio = (alpha + 1.0) / alpha;
        assert!(
            m.evaluation.cost <= ratio * fractional + 1e-6,
            "seed {seed}: ceil cost {} > {ratio} × fractional {fractional}",
            m.evaluation.cost,
        );
    }
}

/// Theorem 4 sanity: MAA's cost stays within a modest constant of the
/// exact optimum on solvable instances (the theorem promises
/// `O((α+1)/α · log|E|/loglog|E|)` w.h.p.; empirically the ratio is
/// far smaller).
#[test]
fn maa_close_to_exact_optimum() {
    let mut worst: f64 = 0.0;
    for seed in 0..5 {
        let inst = sub_b4_instance(12, seed);
        let opt = opt_rlspm(&inst, &IlpOptions::default()).unwrap();
        assert!(opt.optimal);
        let m = maa(
            &inst,
            &[true; 12],
            &MaaOptions {
                seed,
                ..MaaOptions::default()
            },
        )
        .unwrap();
        let ratio = m.evaluation.cost / opt.evaluation.cost;
        assert!(ratio >= 1.0 - 1e-9, "heuristic can't beat the optimum");
        worst = worst.max(ratio);
    }
    // The paper's Fig. 4b observes rounding ratios below 1.2; give slack
    // for the integer ceiling on these tiny instances.
    assert!(
        worst < 2.0,
        "worst MAA/OPT ratio {worst} is implausibly bad"
    );
}

/// Theorem 6: TAA's revenue reaches the `I_B = I_S·(1−D(I_S, 1/(N+1)))`
/// bound (our implementation adds a residual-fill pass, so it can only
/// do better).
#[test]
fn taa_revenue_meets_theorem_6_bound() {
    for seed in 0..5 {
        let topo = topologies::b4();
        let requests = generate(&topo, &WorkloadConfig::paper(100, seed));
        let inst = SpmInstance::new(topo, requests, 12, 3);
        let caps = vec![10.0; inst.topology().num_edges()];
        let t = taa(&inst, &caps, &TaaOptions::default()).unwrap();
        let Some(mu) = t.mu else {
            panic!("capacity exists, μ must too");
        };

        // Recompute the bound exactly as TAA does.
        let v_scale = inst
            .requests()
            .iter()
            .map(|r| r.value)
            .fold(0.0_f64, f64::max);
        let n = inst.topology().num_edges() as f64;
        let i_s = mu * t.relaxation.revenue / v_scale;
        let gamma = chernoff_delta(i_s, 1.0 / (n + 1.0)).min(1.0);
        let i_b = i_s * (1.0 - gamma) * v_scale;
        assert!(
            t.evaluation.revenue >= i_b - 1e-6,
            "seed {seed}: revenue {} < I_B {}",
            t.evaluation.revenue,
            i_b
        );
    }
}

/// Inequality (6): the chosen μ keeps the per-constraint violation
/// probability below 1/(T(N+1)).
#[test]
fn mu_selection_satisfies_inequality_6() {
    for &(c, t, n) in &[(10.0, 12usize, 38usize), (2.0, 12, 14), (40.0, 6, 38)] {
        let mu = select_mu(c, t, n).unwrap();
        let bound = chernoff_bound(mu * c, (1.0 - mu) / mu);
        assert!(
            bound < 1.0 / (t as f64 * (n as f64 + 1.0)),
            "B({}, {}) = {bound} too large",
            mu * c,
            (1.0 - mu) / mu
        );
    }
}

/// The BL-SPM relaxation never claims more revenue than the sum of bids,
/// and its solution satisfies the capacity rows fractionally.
#[test]
fn blspm_relaxation_is_internally_consistent() {
    let topo = topologies::b4();
    let requests = generate(&topo, &WorkloadConfig::paper(60, 11));
    let inst = SpmInstance::new(topo, requests, 12, 3);
    let caps = vec![3.0; inst.topology().num_edges()];
    let rel = solve_blspm_relaxation(&inst, &caps, &SolveOptions::default()).unwrap();
    assert!(rel.revenue <= inst.total_value() + 1e-6);

    // Fractional load per (edge, slot) within capacity.
    let slots = inst.num_slots();
    let mut load = vec![0.0; inst.topology().num_edges() * slots];
    for (i, (r, paths)) in inst.iter().enumerate() {
        for (j, path) in paths.iter().enumerate() {
            for &e in path.edges() {
                for t in r.start..=r.end {
                    load[e.index() * slots + t] += r.rate * rel.x[i][j];
                }
            }
        }
    }
    for (cell, &l) in load.iter().enumerate() {
        let e = cell / slots;
        assert!(l <= caps[e] + 1e-6, "cell {cell}: fractional load {l}");
    }
}

/// Randomized rounding satisfies the demand constraint: every accepted
/// request ends up on exactly one path, matching `Σ_j x̂ = 1`.
#[test]
fn rounding_respects_demand_rows() {
    use metis_suite::core::{round_schedule, solve_rlspm_relaxation};
    use rand_chacha::rand_core::SeedableRng;

    let inst = sub_b4_instance(30, 13);
    let accepted = vec![true; 30];
    let rel = solve_rlspm_relaxation(&inst, &accepted, &SolveOptions::default()).unwrap();
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(5);
    for _ in 0..50 {
        let s = round_schedule(&inst, &accepted, &rel.x, &mut rng);
        assert_eq!(s.num_accepted(), 30, "rounding must keep all demands");
    }
}
