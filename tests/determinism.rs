//! End-to-end determinism: a fixed-seed Metis run must be bit-identical
//! across repeated runs and across worker-thread counts, with and without
//! warm-started LPs.
//!
//! Parallelism in the pipeline (MAA rounding trials, TAA candidate
//! scoring) is structured as indexed families of independent computations
//! reduced in index order, so the thread count can only change *when*
//! work happens, never *what* is computed.
//!
//! Set `METIS_LP_BASIS=dense` or `=sparse-lu` to pin the LP basis
//! backend (CI runs the suite once per backend); unset, the solver
//! default (sparse LU) applies.

use std::path::Path;

use metis_suite::core::{metis, MaaOptions, MetisConfig, ParallelConfig, SpmInstance};
use metis_suite::lp::BasisBackend;
use metis_suite::netsim::topologies;
use metis_suite::workload::{generate, Scenario, WorkloadConfig};

fn b4_instance(k: usize, seed: u64) -> SpmInstance {
    let topo = topologies::b4();
    let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
    SpmInstance::new(topo, requests, 12, 3)
}

/// LP basis backend under test, from the `METIS_LP_BASIS` environment
/// variable (CI matrix). Unset or unrecognized: the solver default.
fn lp_basis() -> Option<BasisBackend> {
    match std::env::var("METIS_LP_BASIS").as_deref() {
        Ok("dense") => Some(BasisBackend::Dense),
        Ok("sparse-lu") => Some(BasisBackend::SparseLu),
        _ => None,
    }
}

fn config(threads: usize, warm_start: bool) -> MetisConfig {
    let mut cfg = MetisConfig {
        theta: 4,
        warm_start,
        parallel: ParallelConfig {
            threads,
            ..ParallelConfig::default()
        },
        maa: MaaOptions {
            rounding_repeats: 6,
            seed: 2024,
            ..MaaOptions::default()
        },
        ..MetisConfig::default()
    };
    if let Some(basis) = lp_basis() {
        cfg.maa.lp.basis = basis;
        cfg.taa.lp.basis = basis;
    }
    cfg
}

#[test]
fn metis_identical_across_thread_counts() {
    let inst = b4_instance(40, 7);
    for warm_start in [false, true] {
        let reference = metis(&inst, &config(1, warm_start)).unwrap();
        for threads in [2, 8] {
            let run = metis(&inst, &config(threads, warm_start)).unwrap();
            assert_eq!(
                run.schedule, reference.schedule,
                "schedule differs: warm_start = {warm_start}, threads = {threads}"
            );
            assert_eq!(
                run.evaluation, reference.evaluation,
                "evaluation differs: warm_start = {warm_start}, threads = {threads}"
            );
            assert_eq!(
                run.history, reference.history,
                "history differs: warm_start = {warm_start}, threads = {threads}"
            );
            assert_eq!(run.rounds, reference.rounds);
        }
    }
}

#[test]
fn metis_identical_across_repeated_runs() {
    let inst = b4_instance(40, 11);
    for warm_start in [false, true] {
        let a = metis(&inst, &config(2, warm_start)).unwrap();
        let b = metis(&inst, &config(2, warm_start)).unwrap();
        assert_eq!(a.schedule, b.schedule, "warm_start = {warm_start}");
        assert_eq!(a.evaluation, b.evaluation);
        assert_eq!(a.history, b.history);
    }
}

#[test]
fn scenario_files_reproduce_bit_identical_streams_and_profit() {
    // The on-disk scenario contract: loading the same file twice yields
    // equal `Scenario` values, the same seed yields a bit-identical
    // request stream (compared through `f64::to_bits`, not `==`), and
    // the solved profit is bit-identical across thread counts.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/diurnal_b4.json");
    let scenario = Scenario::load(&path).unwrap();
    assert_eq!(scenario, Scenario::load(&path).unwrap());

    let topo = scenario.build_topology();
    let first = scenario.generate(&topo);
    let second = scenario.generate(&topo);
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.id, b.id);
        assert_eq!(
            (a.src, a.dst, a.start, a.end),
            (b.src, b.dst, b.start, b.end)
        );
        assert_eq!(a.rate.to_bits(), b.rate.to_bits(), "{}: rate drifted", a.id);
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "{}: value drifted",
            a.id
        );
    }

    let inst = SpmInstance::new(topo, first, scenario.num_slots(), scenario.paths);
    let reference = metis(&inst, &config(1, false)).unwrap();
    for threads in [2, 8] {
        let run = metis(&inst, &config(threads, false)).unwrap();
        assert_eq!(
            run.evaluation.profit.to_bits(),
            reference.evaluation.profit.to_bits(),
            "threads = {threads}"
        );
        assert_eq!(run.schedule, reference.schedule, "threads = {threads}");
    }
}

#[test]
fn scenario_seed_is_load_bearing() {
    // Changing only the seed must change the stream — guards against a
    // generator that silently ignores the file's seed.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/diurnal_b4.json");
    let scenario = Scenario::load(&path).unwrap();
    let reseeded = Scenario {
        seed: scenario.seed + 1,
        ..scenario.clone()
    };
    let topo = scenario.build_topology();
    assert_ne!(scenario.generate(&topo), reseeded.generate(&topo));
}

#[test]
fn auto_thread_count_changes_nothing() {
    // threads = 0 resolves to "all cores"; whatever that is on the host,
    // the result must match the serial run.
    let inst = b4_instance(25, 3);
    let serial = metis(&inst, &config(1, false)).unwrap();
    let auto = metis(&inst, &config(0, false)).unwrap();
    assert_eq!(auto.schedule, serial.schedule);
    assert_eq!(auto.history, serial.history);
}
