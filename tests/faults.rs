//! Fault-injection harness: the Metis pipeline must *degrade*, never die.
//!
//! A [`FaultPlan`] forces `SolveError`s at chosen (phase, attempt) points
//! of the alternation or at whole online epochs. Under any single-point
//! injection in a θ=4 run, `metis` must still return `Ok` with profit ≥ 0
//! and a well-formed schedule, record the incident, and — when the
//! injected point is never reached — remain bit-identical to the
//! failure-free baseline. Failure-free runs through the fault-injecting
//! entry points must match the plain entry points exactly, across thread
//! counts {1, 2, 8}, warm and cold.
//!
//! Set `METIS_FAULTS_WARM_START=0` or `=1` to restrict the warm-start
//! modes exercised (the CI matrix does); anything else runs both. Set
//! `METIS_LP_BASIS=dense` or `=sparse-lu` to pin the LP basis backend;
//! unset, the solver default (sparse LU) applies.

use metis_suite::core::{
    metis, metis_with_faults, online_metis, online_metis_with_faults, FaultPlan, Incident,
    MaaOptions, MetisConfig, MetisResult, OnlineOptions, ParallelConfig, Phase, SpmInstance,
};
use metis_suite::lp::{BasisBackend, SolveError};
use metis_suite::netsim::topologies;
use metis_suite::workload::{generate, RequestId, WorkloadConfig};

const THETA: usize = 4;

fn instance(k: usize, seed: u64) -> SpmInstance {
    let topo = topologies::sub_b4();
    let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
    SpmInstance::new(topo, requests, 12, 3)
}

fn config(threads: usize, warm_start: bool) -> MetisConfig {
    let mut cfg = MetisConfig {
        theta: THETA,
        warm_start,
        parallel: ParallelConfig {
            threads,
            ..ParallelConfig::default()
        },
        maa: MaaOptions {
            rounding_repeats: 4,
            seed: 99,
            ..MaaOptions::default()
        },
        ..MetisConfig::default()
    };
    // LP basis backend under test, from the CI matrix.
    let basis = match std::env::var("METIS_LP_BASIS").as_deref() {
        Ok("dense") => Some(BasisBackend::Dense),
        Ok("sparse-lu") => Some(BasisBackend::SparseLu),
        _ => None,
    };
    if let Some(basis) = basis {
        cfg.maa.lp.basis = basis;
        cfg.taa.lp.basis = basis;
    }
    cfg
}

/// Warm-start modes to exercise, restrictable via the
/// `METIS_FAULTS_WARM_START` environment variable (CI matrix).
fn warm_modes() -> Vec<bool> {
    match std::env::var("METIS_FAULTS_WARM_START").as_deref() {
        Ok("0") => vec![false],
        Ok("1") => vec![true],
        _ => vec![false, true],
    }
}

/// A schedule is well-formed when every accepted request routes on one of
/// its own candidate paths and the evaluation is internally consistent.
fn assert_well_formed(inst: &SpmInstance, result: &MetisResult, label: &str) {
    assert_eq!(result.schedule.len(), inst.num_requests(), "{label}");
    for i in 0..inst.num_requests() as u32 {
        if let Some(j) = result.schedule.path_choice(RequestId(i)) {
            assert!(
                j < inst.paths(RequestId(i)).len(),
                "{label}: r{i} routed on nonexistent path {j}"
            );
        }
    }
    assert!(
        result.evaluation.profit >= 0.0,
        "{label}: negative profit {}",
        result.evaluation.profit
    );
    assert_eq!(
        result.schedule.num_accepted(),
        result.evaluation.accepted,
        "{label}"
    );
    assert!(result.rounds <= THETA, "{label}");
    for inc in &result.incidents {
        match inc {
            Incident::SolveFailed { round, .. } | Incident::WarmRetry { round, .. } => {
                assert!(*round <= THETA, "{label}: incident round {round} > θ");
            }
            Incident::EpochSkipped { .. } => panic!("{label}: offline run skipped an epoch"),
            other => panic!("{label}: unexpected incident {other:?}"),
        }
    }
}

#[test]
fn empty_plan_is_bit_identical_to_plain_entry_point() {
    let inst = instance(30, 1);
    for warm_start in warm_modes() {
        let plain = metis(&inst, &config(1, warm_start)).unwrap();
        assert!(plain.incidents.is_empty());
        for threads in [1, 2, 8] {
            let run =
                metis_with_faults(&inst, &config(threads, warm_start), &FaultPlan::none()).unwrap();
            assert!(run.incidents.is_empty());
            assert_eq!(
                run.schedule, plain.schedule,
                "warm_start = {warm_start}, threads = {threads}"
            );
            assert_eq!(run.history, plain.history);
            assert_eq!(run.evaluation, plain.evaluation);
            assert_eq!(run.rounds, plain.rounds);
        }
    }
}

#[test]
fn every_single_point_injection_degrades_gracefully() {
    let inst = instance(24, 2);
    for warm_start in warm_modes() {
        let cfg = config(1, warm_start);
        let baseline = metis(&inst, &cfg).unwrap();
        // θ=4 makes at most 1 + θ MAA and θ TAA attempts (plus one cold
        // retry each when warm); sweeping past the end also checks that
        // unreached injection points change nothing.
        for phase in [Phase::Maa, Phase::Taa] {
            for invocation in 0..=(2 * THETA + 1) {
                let plan = FaultPlan::none().fail_at(phase, invocation);
                let run = metis_with_faults(&inst, &cfg, &plan)
                    .unwrap_or_else(|e| panic!("{phase:?}@{invocation}: {e}"));
                let label = format!("warm={warm_start} {phase:?}@{invocation}");
                assert_well_formed(&inst, &run, &label);
                if run.incidents.is_empty() {
                    // The injected attempt was never made; the run must be
                    // indistinguishable from the baseline.
                    assert_eq!(run.schedule, baseline.schedule, "{label}");
                    assert_eq!(run.history, baseline.history, "{label}");
                    assert_eq!(run.evaluation, baseline.evaluation, "{label}");
                } else {
                    // The incident trace names the injected phase.
                    assert!(
                        run.incidents.iter().all(|i| matches!(
                            i,
                            Incident::SolveFailed { phase: p, .. }
                            | Incident::WarmRetry { phase: p, .. } if *p == phase
                        )),
                        "{label}: {:?}",
                        run.incidents
                    );
                    if warm_start {
                        // A lone injection is absorbed by the cold retry.
                        assert_eq!(run.warm_retries(), 1, "{label}");
                        assert_eq!(run.failed_rounds(), 0, "{label}");
                    } else {
                        assert_eq!(run.failed_rounds(), 1, "{label}");
                        assert_eq!(run.warm_retries(), 0, "{label}");
                    }
                }
            }
        }
    }
}

#[test]
fn warm_retry_exhaustion_skips_the_round() {
    // Failing an attempt AND its cold retry exhausts containment for that
    // solve: the round's update is skipped, the run still completes.
    let inst = instance(24, 3);
    let cfg = config(1, true);
    for phase in [Phase::Maa, Phase::Taa] {
        let first = if phase == Phase::Maa { 0 } else { 1 };
        let plan = FaultPlan::none()
            .fail_at_with(phase, first, SolveError::IterationLimit)
            .fail_at_with(phase, first + 1, SolveError::Singular);
        let run = metis_with_faults(&inst, &cfg, &plan).unwrap();
        assert_well_formed(&inst, &run, &format!("{phase:?} double"));
        assert_eq!(run.warm_retries(), 1, "{phase:?}");
        assert_eq!(run.failed_rounds(), 1, "{phase:?}");
        let errors: Vec<&SolveError> = run
            .incidents
            .iter()
            .map(|i| match i {
                Incident::SolveFailed { error, .. } | Incident::WarmRetry { error, .. } => error,
                Incident::EpochSkipped { error, .. } => error,
                other => panic!("unexpected incident {other:?}"),
            })
            .collect();
        assert_eq!(
            errors,
            [&SolveError::IterationLimit, &SolveError::Singular],
            "{phase:?}: incidents keep the per-attempt errors in order"
        );
    }
}

#[test]
fn killed_initialization_degrades_to_decline_all() {
    // Without warm start there is no retry: failing the very first MAA
    // leaves the capacity budget empty, so the run returns the decline-all
    // schedule — profit 0, not an error.
    let inst = instance(24, 4);
    let plan = FaultPlan::none().fail_at(Phase::Maa, 0);
    let run = metis_with_faults(&inst, &config(1, false), &plan).unwrap();
    assert_eq!(run.evaluation.profit, 0.0);
    assert_eq!(run.evaluation.accepted, 0);
    assert_eq!(run.rounds, 0);
    assert!(run.history.is_empty());
    assert_eq!(run.failed_rounds(), 1);
}

#[test]
fn everything_failing_still_returns_ok() {
    let inst = instance(24, 5);
    for warm_start in warm_modes() {
        let mut plan = FaultPlan::none();
        for phase in [Phase::Maa, Phase::Taa] {
            for invocation in 0..=(2 * THETA + 2) {
                plan = plan.fail_at(phase, invocation);
            }
        }
        let run = metis_with_faults(&inst, &config(1, warm_start), &plan).unwrap();
        assert_eq!(run.evaluation.profit, 0.0, "warm = {warm_start}");
        assert_eq!(run.evaluation.accepted, 0);
        assert!(!run.incidents.is_empty());
    }
}

#[test]
fn injected_runs_are_deterministic_across_threads() {
    // Fault containment sits outside the parallel regions, so even a
    // degraded run must be bit-identical for any worker count.
    let inst = instance(24, 6);
    for warm_start in warm_modes() {
        let plan = FaultPlan::none().fail_at(Phase::Taa, 1);
        let reference = metis_with_faults(&inst, &config(1, warm_start), &plan).unwrap();
        for threads in [2, 8] {
            let run = metis_with_faults(&inst, &config(threads, warm_start), &plan).unwrap();
            assert_eq!(run.schedule, reference.schedule, "threads = {threads}");
            assert_eq!(run.history, reference.history);
            assert_eq!(run.incidents, reference.incidents);
        }
    }
}

#[test]
fn random_plans_never_break_the_run() {
    let inst = instance(20, 7);
    for warm_start in warm_modes() {
        for seed in 0..6 {
            let plan = FaultPlan::random(seed, 0.35, 2 * THETA + 2);
            let run = metis_with_faults(&inst, &config(1, warm_start), &plan)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_well_formed(&inst, &run, &format!("warm={warm_start} seed={seed}"));
            assert_eq!(
                run.incidents.len(),
                run.failed_rounds() + run.warm_retries(),
                "seed {seed}: counters partition the incident trace"
            );
        }
    }
}

#[test]
fn online_skips_only_the_failed_epoch() {
    let inst = instance(40, 8);
    let options = OnlineOptions {
        epochs: 4,
        metis: config(1, false),
    };
    let baseline = online_metis(&inst, &options).unwrap();
    assert!(baseline.incidents.is_empty());
    assert_eq!(baseline.skipped_epochs(), 0);

    // Pick an epoch that actually has arrivals, then kill it.
    let target = baseline
        .epochs
        .iter()
        .find(|e| e.arrived > 0)
        .expect("some epoch has arrivals")
        .epoch;
    let plan = FaultPlan::none().fail_epoch_with(target, SolveError::IterationLimit);
    let run = online_metis_with_faults(&inst, &options, &plan).unwrap();

    assert_eq!(run.skipped_epochs(), 1);
    assert!(run.evaluation.profit >= 0.0);
    let skipped = &run.epochs[target];
    assert_eq!(skipped.accepted, 0, "failed epoch declines everything");
    assert_eq!(skipped.arrived, baseline.epochs[target].arrived);
    for (b, r) in baseline.epochs.iter().zip(&run.epochs) {
        if b.epoch != target {
            assert_eq!(
                b.accepted, r.accepted,
                "epoch {} must be unaffected by epoch {target}'s failure",
                b.epoch
            );
        }
    }
    match &run.incidents[..] {
        [Incident::EpochSkipped {
            epoch,
            arrived,
            error,
        }] => {
            assert_eq!(*epoch, target);
            assert_eq!(*arrived, baseline.epochs[target].arrived);
            assert_eq!(*error, SolveError::IterationLimit);
        }
        other => panic!("expected one EpochSkipped, got {other:?}"),
    }
}

#[test]
fn online_with_empty_plan_matches_plain_entry_point() {
    let inst = instance(40, 9);
    let options = OnlineOptions {
        epochs: 3,
        metis: config(1, false),
    };
    let plain = online_metis(&inst, &options).unwrap();
    let faulted = online_metis_with_faults(&inst, &options, &FaultPlan::none()).unwrap();
    assert_eq!(plain.schedule, faulted.schedule);
    assert_eq!(plain.evaluation, faulted.evaluation);
    assert_eq!(plain.epochs, faulted.epochs);
    assert!(faulted.incidents.is_empty());
}

#[test]
fn all_epochs_failing_declines_the_whole_cycle() {
    let inst = instance(30, 10);
    let options = OnlineOptions {
        epochs: 3,
        metis: config(1, false),
    };
    let mut plan = FaultPlan::none();
    for e in 0..3 {
        plan = plan.fail_epoch(e);
    }
    let run = online_metis_with_faults(&inst, &options, &plan).unwrap();
    assert_eq!(run.evaluation.profit, 0.0);
    assert_eq!(run.schedule.num_accepted(), 0);
    // Empty epochs are not "skipped" — only ones with arrivals to lose.
    let with_arrivals = run.epochs.iter().filter(|e| e.arrived > 0).count();
    assert_eq!(run.skipped_epochs(), with_arrivals);
}
