//! Solution audits at the workspace level: a full Metis / online-Metis
//! run with [`MetisConfig::audit`] forced on must report zero violations
//! at every thread count, without perturbing the solution — the audit is
//! a pure observer re-deriving load, peaks, and accounting from scratch.
//!
//! [`MetisConfig::audit`]: metis_suite::core::MetisConfig

use metis_suite::core::{
    check_incident_agreement, metis, metis_instrumented, online_metis_instrumented, FaultPlan,
    MetisConfig, OnlineOptions, ParallelConfig, SpmInstance,
};
use metis_suite::netsim::topologies;
use metis_suite::telemetry::Telemetry;
use metis_suite::workload::{generate, WorkloadConfig};

fn b4_instance(k: usize, seed: u64) -> SpmInstance {
    let topo = topologies::b4();
    let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
    SpmInstance::new(topo, requests, 12, 3)
}

fn audited_config(theta: usize, threads: usize) -> MetisConfig {
    MetisConfig {
        audit: true,
        parallel: ParallelConfig {
            threads,
            ..ParallelConfig::default()
        },
        ..MetisConfig::with_theta(theta)
    }
}

#[test]
fn metis_audits_clean_at_every_thread_count() {
    let inst = b4_instance(60, 3);
    let reference = metis(&inst, &audited_config(4, 1)).unwrap();
    let reference_report = reference.audit.as_ref().expect("audit was on");
    assert!(reference_report.is_clean(), "{reference_report}");
    assert!(reference_report.checks > 0);

    for threads in [2, 8] {
        let run = metis(&inst, &audited_config(4, threads)).unwrap();
        let report = run.audit.as_ref().expect("audit was on");
        assert!(report.is_clean(), "threads = {threads}: {report}");
        // The audit observes; it must not perturb the solution.
        assert_eq!(run.schedule, reference.schedule, "threads = {threads}");
        assert_eq!(run.evaluation, reference.evaluation, "threads = {threads}");
    }
}

#[test]
fn audit_does_not_perturb_the_solution() {
    let inst = b4_instance(50, 11);
    let plain = metis(&inst, &MetisConfig::with_theta(4)).unwrap();
    let audited = metis(&inst, &audited_config(4, 1)).unwrap();
    assert_eq!(plain.schedule, audited.schedule);
    assert_eq!(plain.evaluation, audited.evaluation);
    assert_eq!(plain.history, audited.history);
}

#[test]
fn online_metis_audits_clean() {
    let inst = b4_instance(60, 5);
    let options = OnlineOptions {
        metis: audited_config(3, 1),
        ..OnlineOptions::default()
    };
    let res =
        online_metis_instrumented(&inst, &options, &FaultPlan::none(), &Telemetry::disabled())
            .unwrap();
    let report = res.audit.as_ref().expect("audit was on");
    assert!(report.is_clean(), "{report}");
    assert!(report.checks > 0);
}

#[test]
fn incident_accounting_agrees_even_under_faults() {
    use metis_suite::core::Phase;
    let inst = b4_instance(40, 2);
    let tele = Telemetry::enabled();
    // Break one TAA solve and one MAA warm retry's worth of invocations;
    // the run degrades but completes, and every incident must appear
    // exactly once in the counter, the event stream, and the vec.
    let plan = FaultPlan::none()
        .fail_at(Phase::Taa, 1)
        .fail_at(Phase::Maa, 2);
    let res = metis_instrumented(&inst, &audited_config(4, 1), &plan, &tele).unwrap();
    assert!(!res.incidents.is_empty(), "faults should surface incidents");
    let snap = tele.snapshot().expect("telemetry capture enabled");
    let agreement = check_incident_agreement(&res.incidents, &snap);
    assert!(agreement.is_clean(), "{agreement}");
}
