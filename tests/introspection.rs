//! Live introspection guarantees, pinned at the workspace level:
//!
//! 1. **HTTP round-trip** — a [`Telemetry::serve`] endpoint returns
//!    valid Prometheus text on `/metrics`, parseable JSON on
//!    `/snapshot.json` and `/trace.json`, and sane errors elsewhere.
//! 2. **Non-perturbation under scraping** — a run being scraped
//!    concurrently over HTTP is bit-identical to a plain run at every
//!    parallelism level (extends the telemetry on/off guarantee of
//!    `tests/telemetry.rs` to the live-server case).
//! 3. **Trace-event well-formedness** — the Chrome trace export parses
//!    with the in-repo JSON parser, spans nest within their parents on
//!    the same thread lane, and every lane is named by metadata.
//! 4. **Convergence-trace agreement** — [`MetisResult::round_trace`]
//!    agrees with the result it annotates: completed entries mirror the
//!    profit history, attributed incidents sum to the incident list, and
//!    the running record ends at the reported profit.
//!
//! Every test degrades to a no-op when the telemetry `capture` feature
//! is compiled out (`serve` then fails with `Unsupported` and
//! `snapshot()` is `None`).

use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use metis_suite::core::{
    metis, metis_instrumented, FaultPlan, MetisConfig, ParallelConfig, SpmInstance,
};
use metis_suite::netsim::topologies;
use metis_suite::telemetry::{names, validate_prometheus, Telemetry};
use metis_suite::workload::json::Json;
use metis_suite::workload::{generate, ValueModel, WorkloadConfig};

/// The golden fixture of `tests/golden.rs`: B4, 40 requests, seed 2024.
fn fixture() -> SpmInstance {
    let topo = topologies::b4();
    let cfg = WorkloadConfig {
        num_requests: 40,
        value_model: ValueModel::PricedPath {
            low: 2.0,
            high: 8.0,
        },
        seed: 2024,
        ..WorkloadConfig::default()
    };
    let requests = generate(&topo, &cfg);
    SpmInstance::new(topo, requests, 12, 3)
}

const THETA: usize = 6;

/// A Metis config with LP tracing on, as `spm --serve`/`--telemetry`
/// enables it.
fn traced_config() -> MetisConfig {
    let mut cfg = MetisConfig::with_theta(THETA);
    cfg.maa.lp.trace = true;
    cfg.taa.lp.trace = true;
    cfg
}

/// Minimal HTTP/1.1 GET against the metrics endpoint; returns
/// `(status, head, body)`.
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: metis\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status"))?;
    Ok((status, head.to_string(), body.to_string()))
}

#[test]
fn endpoints_round_trip_on_live_server() {
    let inst = fixture();
    let tele = Telemetry::enabled();
    let Ok(server) = tele.serve("127.0.0.1:0") else {
        return; // capture feature compiled out
    };
    let result = metis_instrumented(&inst, &traced_config(), &FaultPlan::none(), &tele).unwrap();
    let addr = server.addr();

    let (status, head, body) = http_get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(head.contains("text/plain; version=0.0.4"), "head: {head}");
    validate_prometheus(&body).expect("live /metrics must satisfy the line format");
    assert!(body.contains("metis_lp_simplex_iterations"));
    assert!(body.contains("metis_telemetry_http_requests"));
    assert!(body.contains("metis_lp_trace_records"));

    let (status, head, body) = http_get(addr, "/snapshot.json").unwrap();
    assert_eq!(status, 200);
    assert!(head.contains("application/json"), "head: {head}");
    let snap = Json::parse(&body).expect("snapshot must be valid JSON");
    let counters = snap
        .get("counters")
        .and_then(Json::as_obj)
        .expect("counters object");
    assert!(!counters.is_empty());
    // The dropped-record counters surface in the snapshot even at zero.
    for name in [
        names::TELEMETRY_SPANS_DROPPED,
        names::TELEMETRY_EVENTS_DROPPED,
    ] {
        assert!(counters.iter().any(|(k, _)| k == name), "missing {name}");
    }
    // The convergence trace flows into the snapshot as series.
    let trace_accepted = snap
        .get("series")
        .and_then(|s| s.get(names::TRACE_ACCEPTED))
        .expect("alternation.trace.accepted series");
    assert_eq!(
        trace_accepted
            .get("points")
            .and_then(Json::as_arr)
            .expect("points")
            .len(),
        result.round_trace.len()
    );

    let (status, _, body) = http_get(addr, "/trace.json").unwrap();
    assert_eq!(status, 200);
    assert_trace_events_well_formed(&body);

    let (status, _, _) = http_get(addr, "/nope").unwrap();
    assert_eq!(status, 404);

    // All four GETs above were counted.
    if let Some(snap) = tele.snapshot() {
        assert!(snap.counter(names::TELEMETRY_HTTP_REQUESTS) >= 4);
    }
    drop(server);
}

/// Parses a Chrome trace-event document and checks its structure: every
/// complete event carries the required fields, child spans sit inside
/// their parent's interval on the same thread lane, and every lane used
/// by an event is named by a `thread_name` metadata record.
fn assert_trace_events_well_formed(text: &str) {
    let doc = Json::parse(text).expect("trace must be valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let field = |e: &Json, k: &str| e.get(k).and_then(Json::as_f64);
    let mut lanes_named = Vec::new();
    let mut complete = Vec::new();
    for e in events {
        match e.get("ph").and_then(Json::as_str) {
            Some("M") => {
                if e.get("name").and_then(Json::as_str) == Some("thread_name") {
                    lanes_named.push(field(e, "tid").expect("metadata tid") as u64);
                }
            }
            Some("X") => {
                let name = e.get("name").and_then(Json::as_str).expect("event name");
                let ts = field(e, "ts").expect("ts");
                let dur = field(e, "dur").expect("dur");
                let tid = field(e, "tid").expect("tid") as u64;
                assert_eq!(field(e, "pid"), Some(1.0));
                assert_eq!(e.get("cat").and_then(Json::as_str), Some("metis"));
                assert!(dur >= 0.0);
                let parent = e
                    .get("args")
                    .and_then(|a| a.get("parent"))
                    .and_then(Json::as_str)
                    .map(str::to_string);
                complete.push((name.to_string(), ts, dur, tid, parent));
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(!complete.is_empty(), "no complete events in trace");
    for (name, _, _, tid, _) in &complete {
        assert!(lanes_named.contains(tid), "{name}: unnamed lane {tid}");
    }
    // Each child lies within some same-lane parent instance (2 µs slack
    // for the independent floor-rounding of start and duration).
    for (name, ts, dur, tid, parent) in &complete {
        let Some(parent) = parent else { continue };
        let ok = complete.iter().any(|(pn, pts, pdur, ptid, _)| {
            pn == parent && ptid == tid && *pts <= ts + 2.0 && pts + pdur + 2.0 >= ts + dur
        });
        assert!(ok, "{name} (lane {tid}) not nested in any {parent}");
    }
}

#[test]
fn concurrent_scraping_preserves_bit_identity() {
    let inst = fixture();
    let tele = Telemetry::enabled();
    let Ok(server) = tele.serve("127.0.0.1:0") else {
        return; // capture feature compiled out
    };
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let scraper = std::thread::spawn(move || {
        let mut scrapes = 0u64;
        while !stop2.load(Ordering::Relaxed) {
            for path in ["/metrics", "/snapshot.json", "/trace.json"] {
                if http_get(addr, path).is_ok_and(|(status, _, _)| status == 200) {
                    scrapes += 1;
                }
            }
        }
        scrapes
    });

    for threads in [1usize, 2, 8] {
        let cfg = MetisConfig {
            parallel: ParallelConfig {
                threads,
                ..ParallelConfig::default()
            },
            ..traced_config()
        };
        let plain = metis(&inst, &cfg).unwrap();
        let scraped = metis_instrumented(&inst, &cfg, &FaultPlan::none(), &tele).unwrap();
        let ctx = format!("threads = {threads}");
        assert_eq!(scraped.schedule, plain.schedule, "{ctx}");
        assert_eq!(scraped.history, plain.history, "{ctx}");
        assert_eq!(scraped.evaluation, plain.evaluation, "{ctx}");
        assert_eq!(scraped.round_trace, plain.round_trace, "{ctx}");
    }

    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper thread");
    assert!(scrapes > 0, "scraper never completed a request");
}

#[test]
fn chrome_trace_export_is_well_formed() {
    let inst = fixture();
    let tele = Telemetry::enabled();
    let _ = metis_instrumented(&inst, &traced_config(), &FaultPlan::none(), &tele).unwrap();
    let Some(trace) = tele.chrome_trace() else {
        return; // capture feature compiled out
    };
    assert_trace_events_well_formed(&trace);
    // The relax spans carry the LP effort as an argument.
    let doc = Json::parse(&trace).unwrap();
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let relax = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some(names::SPAN_MAA_RELAX))
        .expect("maa relax span in trace");
    assert!(
        relax
            .get("args")
            .and_then(|a| a.get(names::ARG_LP_ITERATIONS))
            .and_then(Json::as_f64)
            .is_some(),
        "relax span must carry lp.iterations"
    );
}

#[test]
fn round_trace_agrees_with_reported_result() {
    let inst = fixture();
    let tele = Telemetry::enabled();
    let result = metis_instrumented(&inst, &traced_config(), &FaultPlan::none(), &tele).unwrap();

    // Completed entries mirror the profit history one-to-one.
    let completed: Vec<_> = result.round_trace.iter().filter(|t| t.completed).collect();
    assert_eq!(completed.len(), result.history.len());
    for (t, h) in completed.iter().zip(&result.history) {
        assert_eq!(t.phase, h.phase);
        assert_eq!(t.profit, h.profit);
        assert_eq!(t.accepted, h.accepted);
    }
    // Incident attribution is exhaustive and the record converges to the
    // reported profit.
    let attributed: usize = result.round_trace.iter().map(|t| t.incidents).sum();
    assert_eq!(attributed, result.incidents.len());
    let last = result.round_trace.last().expect("round 0 always traced");
    assert_eq!(last.best_profit, result.evaluation.profit);

    // The LP per-iteration ring was live and flowed into the registry.
    if let Some(snap) = tele.snapshot() {
        assert!(snap.counter(names::LP_TRACE_RECORDS) > 0);
        // One trace record per pivot or bound flip, across every solve.
        let traced_steps =
            snap.counter(names::LP_TRACE_RECORDS) + snap.counter(names::LP_TRACE_DROPPED);
        assert_eq!(
            traced_steps,
            snap.counter(names::LP_SIMPLEX_ITERATIONS)
                + snap.counter(names::LP_SIMPLEX_BOUND_FLIPS)
        );
        let lp_series = snap
            .series(names::TRACE_LP_ITERATIONS)
            .expect("trace lp series");
        assert_eq!(lp_series.points.len(), result.round_trace.len());
    }
}

#[test]
fn fault_injected_round_trace_flags_incidents() {
    let inst = fixture();
    for seed in 0..4u64 {
        let faults = FaultPlan::random(seed, 0.3, 16);
        let cfg = MetisConfig {
            warm_start: seed % 2 == 1,
            ..MetisConfig::with_theta(4)
        };
        let run = metis_instrumented(&inst, &cfg, &faults, &Telemetry::disabled()).unwrap();
        let attributed: usize = run.round_trace.iter().map(|t| t.incidents).sum();
        assert_eq!(attributed, run.incidents.len(), "seed {seed}");
        let failed = run.round_trace.iter().filter(|t| !t.completed).count();
        assert_eq!(failed, run.failed_rounds(), "seed {seed}");
    }
}
