#!/usr/bin/env sh
# LP engine A/B benchmark: builds the workspace in release mode, runs
# the `bench_lp` harness (backends × pricing × ratio test), and leaves
# its canonical-JSON results (median solve and per-pivot times,
# refactorization/update counters, per-pivot ratios) in BENCH_lp.json
# — or the path given via --out — for CI trend tracking.
#
# BENCH_lp.json is version-controlled: the checked-in numbers are the
# trend baseline. To keep a rerun from silently clobbering results that
# were never committed, the script refuses to overwrite an *output
# file* (whatever --out points at, default BENCH_lp.json) that differs
# from HEAD — commit (or discard) it first, or rerun with FORCE=1.
# Output paths outside the repository are never guarded.
#
# Usage: [FORCE=1] scripts/bench_lp.sh [--quick] [--out PATH]
#        [--trend-check BASELINE] [--sizes M1,M2,...]
set -eu
cd "$(dirname "$0")/.."

# The guard protects the file the run will actually write: scan the
# arguments for --out rather than assuming the default.
out_path="BENCH_lp.json"
prev=""
for arg in "$@"; do
    if [ "$prev" = "--out" ]; then
        out_path="$arg"
    fi
    prev="$arg"
done

if [ "${FORCE:-0}" != "1" ] && [ -n "$(git status --porcelain -- "$out_path" 2>/dev/null)" ]; then
    echo "bench_lp.sh: $out_path has uncommitted changes." >&2
    echo "Commit or discard them first, or rerun with FORCE=1 to overwrite." >&2
    exit 1
fi

cargo run --release -p metis-bench --bin bench_lp -- "$@"
