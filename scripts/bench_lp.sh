#!/usr/bin/env sh
# Dense-vs-sparse LP backend benchmark: builds the workspace in release
# mode, runs the `bench_lp` A/B harness, and leaves its canonical-JSON
# results (median solve and per-pivot times, refactorization and eta
# counts, speedup) in BENCH_lp.json for CI trend tracking.
#
# BENCH_lp.json is version-controlled: the checked-in numbers are the
# trend baseline. To keep a rerun from silently clobbering results that
# were never committed, the script refuses to overwrite a BENCH_lp.json
# that differs from HEAD — commit (or discard) it first, or rerun with
# FORCE=1.
#
# Usage: [FORCE=1] scripts/bench_lp.sh [--quick] [--out PATH]
set -eu
cd "$(dirname "$0")/.."

if [ "${FORCE:-0}" != "1" ] && [ -n "$(git status --porcelain -- BENCH_lp.json 2>/dev/null)" ]; then
    echo "bench_lp.sh: BENCH_lp.json has uncommitted changes." >&2
    echo "Commit or discard them first, or rerun with FORCE=1 to overwrite." >&2
    exit 1
fi

cargo run --release -p metis-bench --bin bench_lp -- "$@"
