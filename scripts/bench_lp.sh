#!/usr/bin/env sh
# Dense-vs-sparse LP backend benchmark: builds the workspace in release
# mode, runs the `bench_lp` A/B harness, and leaves its canonical-JSON
# results (median solve and per-pivot times, refactorization and eta
# counts, speedup) in BENCH_lp.json for CI trend tracking.
#
# Usage: scripts/bench_lp.sh [--quick] [--out PATH]
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p metis-bench --bin bench_lp -- "$@"
