//! No-op `Serialize`/`Deserialize` derives for offline builds.
//!
//! The workspace derives these traits on many types but (outside the
//! bench binary, which uses a hand-rolled JSON module instead) never
//! calls serde's trait methods. These derives accept the syntax —
//! including `#[serde(...)]` helper attributes — and expand to nothing,
//! which keeps every `#[derive(Serialize, Deserialize)]` compiling
//! without the real serde dependency tree.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
