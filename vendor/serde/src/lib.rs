//! Offline serde facade.
//!
//! Re-exports the no-op [`Serialize`]/[`Deserialize`] derive macros so
//! `use serde::{Serialize, Deserialize};` and
//! `#[derive(serde::Serialize)]` keep compiling in offline builds. No
//! serialization traits or runtime machinery are provided — the
//! workspace's only functional serialization lives in the bench
//! binary's hand-rolled JSON module.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
