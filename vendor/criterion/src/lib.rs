//! Offline mini benchmark harness.
//!
//! Mirrors the slice of the `criterion` 0.5 API the workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`]/[`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! warmup-then-sample measurement loop and plain-text reporting
//! (median, min, max per benchmark). There are no plots, no statistics
//! beyond the quantiles, and no baseline persistence; benches here are
//! for relative comparisons printed to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness handle.
pub struct Criterion {
    /// Target time to spend measuring each benchmark.
    measurement_time: Duration,
    /// Default number of samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(3),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Applies CLI-style configuration. This mini harness ignores the
    /// arguments (they exist so `criterion_main!` can stay drop-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let stats = run_samples(self.sample_size, self.measurement_time, |b| f(b));
        report(&self.name, &id.id, &stats);
        self
    }

    /// Benchmarks a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let stats = run_samples(self.sample_size, self.measurement_time, |b| f(b, input));
        report(&self.name, &id.id, &stats);
        self
    }

    /// Ends the group. (No-op beyond matching the upstream API.)
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations the routine should run this sample.
    iters: u64,
    /// Measured wall time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Per-benchmark nanosecond quantiles.
struct Stats {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

fn run_samples<F: FnMut(&mut Bencher)>(
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) -> Stats {
    // Warmup: one untimed run, also used to size per-sample iteration
    // counts so the whole benchmark lands near `measurement_time`.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = measurement_time.as_secs_f64() / sample_size as f64;
    let iters = (budget_per_sample / once.as_secs_f64()).clamp(1.0, 1e6) as u64;

    let mut samples_ns = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    Stats {
        median_ns: samples_ns[samples_ns.len() / 2],
        min_ns: samples_ns[0],
        max_ns: *samples_ns.last().unwrap(),
    }
}

fn human(ns: f64) -> String {
    let mut out = String::new();
    if ns < 1e3 {
        let _ = write!(out, "{ns:.1} ns");
    } else if ns < 1e6 {
        let _ = write!(out, "{:.2} µs", ns / 1e3);
    } else if ns < 1e9 {
        let _ = write!(out, "{:.2} ms", ns / 1e6);
    } else {
        let _ = write!(out, "{:.3} s", ns / 1e9);
    }
    out
}

fn report(group: &str, id: &str, stats: &Stats) {
    println!(
        "{group}/{id:<28} median {:>12}   [{} .. {}]",
        human(stats.median_ns),
        human(stats.min_ns),
        human(stats.max_ns),
    );
}

/// Declares a benchmark group function list, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
            sample_size: 3,
        };
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn human_units() {
        assert!(human(12.0).contains("ns"));
        assert!(human(12_000.0).contains("µs"));
        assert!(human(12_000_000.0).contains("ms"));
        assert!(human(12_000_000_000.0).contains('s'));
    }
}
