//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace builds in offline environments with no crates.io
//! access, so the handful of `rand` features it relies on are
//! reimplemented here: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits,
//! uniform ranges (half-open and inclusive), and the `Standard`
//! distribution for `f64`. The sampling algorithms are deliberately
//! simple and deterministic:
//!
//! * integers use the widening-multiply range reduction
//!   (`(x * span) >> bits`), which is bias-free enough for simulation
//!   workloads and has no data-dependent rejection loop;
//! * `f64` uses the top 53 bits of a `u64`, giving the usual
//!   `[0, 1)` grid of spacing `2^-53`.
//!
//! The streams are **not** bit-compatible with upstream `rand`; they only
//! promise to be deterministic per seed, which is what the workspace's
//! reproducibility guarantees are built on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type (for example `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// construction `rand_core` uses) and builds the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the [`Standard`](distributions::Standard)
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a bool with probability `p` of being `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! The distribution traits and the uniform distribution.

    use super::RngCore;

    /// Types that can produce samples of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type: uniform bits for integers,
    /// uniform `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            uniform::unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty => $m:ident),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$m() as $t
                }
            }
        )*};
    }
    standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                  u64 => next_u64, usize => next_u64,
                  i8 => next_u32, i16 => next_u32, i32 => next_u32,
                  i64 => next_u64, isize => next_u64);

    /// Uniform distribution over a range, sampled repeatedly.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: uniform::SampleUniform + Copy + PartialOrd> Uniform<T> {
        /// Uniform over `[low, high)`.
        ///
        /// # Panics
        ///
        /// Panics if `low >= high`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new called with empty range");
            Uniform {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        ///
        /// # Panics
        ///
        /// Panics if `low > high`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(
                low <= high,
                "Uniform::new_inclusive called with empty range"
            );
            Uniform {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            if self.inclusive {
                T::sample_inclusive(&self.low, &self.high, rng)
            } else {
                T::sample_half_open(&self.low, &self.high, rng)
            }
        }
    }

    pub mod uniform {
        //! Range-sampling machinery behind [`Rng::gen_range`](crate::Rng).

        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Converts 64 random bits into `[0, 1)` with 53-bit precision.
        pub(crate) fn unit_f64(bits: u64) -> f64 {
            (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Converts 64 random bits into `[0, 1]` with 53-bit precision.
        pub(crate) fn unit_f64_inclusive(bits: u64) -> f64 {
            (bits >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        }

        /// Types that can be drawn uniformly from a range.
        pub trait SampleUniform: Sized {
            /// Uniform sample from `[low, high)`.
            fn sample_half_open<R: RngCore + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self;
            /// Uniform sample from `[low, high]`.
            fn sample_inclusive<R: RngCore + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self;
        }

        macro_rules! impl_uniform_int {
            ($($t:ty as $wide:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(
                        low: &Self,
                        high: &Self,
                        rng: &mut R,
                    ) -> Self {
                        assert!(low < high, "cannot sample empty range");
                        let span = (*high as $wide).wrapping_sub(*low as $wide) as u64;
                        let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                        ((*low as $wide).wrapping_add(draw as $wide)) as $t
                    }

                    fn sample_inclusive<R: RngCore + ?Sized>(
                        low: &Self,
                        high: &Self,
                        rng: &mut R,
                    ) -> Self {
                        assert!(low <= high, "cannot sample empty range");
                        let span = (*high as $wide).wrapping_sub(*low as $wide) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        let draw =
                            ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                        ((*low as $wide).wrapping_add(draw as $wide)) as $t
                    }
                }
            )*};
        }
        impl_uniform_int!(
            u8 as u64,
            u16 as u64,
            u32 as u64,
            u64 as u64,
            usize as u64,
            i8 as i64,
            i16 as i64,
            i32 as i64,
            i64 as i64,
            isize as i64
        );

        impl SampleUniform for f64 {
            fn sample_half_open<R: RngCore + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let u = unit_f64(rng.next_u64());
                let v = low + u * (high - low);
                // Floating-point rounding can land exactly on `high`.
                if v >= *high {
                    // Nudge back inside the half-open interval.
                    f64::max(*low, *high - (*high - *low) * f64::EPSILON)
                } else {
                    v
                }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let u = unit_f64_inclusive(rng.next_u64());
                (low + u * (high - low)).clamp(*low, *high)
            }
        }

        impl SampleUniform for f32 {
            fn sample_half_open<R: RngCore + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self {
                f64::sample_half_open(&(*low as f64), &(*high as f64), rng) as f32
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self {
                f64::sample_inclusive(&(*low as f64), &(*high as f64), rng) as f32
            }
        }

        /// Range types acceptable to [`Rng::gen_range`](crate::Rng).
        pub trait SampleRange<T> {
            /// Draws one sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(&self.start, &self.end, rng)
            }
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_inclusive(self.start(), self.end(), rng)
            }
        }
    }

    pub use uniform::SampleUniform;
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = Lcg(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Lcg(3);
        for _ in 0..10_000 {
            let a = rng.gen_range(5usize..17);
            assert!((5..17).contains(&a));
            let b = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&b));
            let c = rng.gen_range(0.0f64..1e-9);
            assert!((0.0..1e-9).contains(&c));
        }
    }

    #[test]
    fn uniform_distribution_bounds() {
        let mut rng = Lcg(11);
        let nodes = Uniform::new(0, 12u32);
        let rates = Uniform::new_inclusive(0.1f64, 5.0);
        for _ in 0..10_000 {
            assert!(nodes.sample(&mut rng) < 12);
            let r = rates.sample(&mut rng);
            assert!((0.1..=5.0).contains(&r));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        // The widening multiply must reach both ends of small spans.
        let mut rng = Lcg(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = Lcg(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
