//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Acceptable length specifications for [`vec`]: an exact length or a
/// half-open range.
pub trait IntoSizeRange {
    /// Draws a length.
    fn pick_len(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn pick_len(&self, rng: &mut TestRng) -> usize {
        if self.start >= self.end {
            self.start
        } else {
            rng.gen_range(self.clone())
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.pick_len(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Vector of `len` values drawn from `element`.
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}
