//! Strategy combinators: how test inputs are generated.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::distributions::uniform::SampleUniform;
use rand::Rng;

/// A recipe for producing values of `Self::Value` from a RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each produced value and draws from
    /// it — the dependent-generation combinator (e.g. first a topology,
    /// then parameters whose ranges depend on its node count).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn new_value(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical "whole domain" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32, bool);

/// Strategy over a type's full domain (`any::<u64>()`).
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+ $(,)?);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0,);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}
