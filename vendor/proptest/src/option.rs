//! Strategies over `Option<T>`, mirroring `proptest::option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy yielding `None` half the time and `Some(inner)` otherwise.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen::<bool>() {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}

/// Wraps a strategy to also produce `None` (with probability one half).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn respects_the_inner_domain(v in crate::option::of(1usize..5)) {
            if let Some(x) = v {
                prop_assert!((1..5).contains(&x));
            }
        }
    }

    #[test]
    fn produces_both_variants() {
        // Across enough draws both `None` and `Some` must appear.
        let cfg = ProptestConfig::with_cases(64);
        let mut seen = (false, false);
        crate::test_runner::run(&cfg, "produces_both_variants", |rng| {
            match crate::option::of(0u8..10).new_value(rng) {
                Some(_) => seen.0 = true,
                None => seen.1 = true,
            }
            Ok(())
        });
        assert!(seen.0 && seen.1, "one variant never appeared: {seen:?}");
    }
}
