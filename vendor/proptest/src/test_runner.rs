//! The case loop: configuration, RNG seeding, and failure reporting.

use std::fmt;

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// RNG handed to strategies. A ChaCha stream seeded per test.
pub type TestRng = ChaCha12Rng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure carrying a message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// FNV-1a over the test name: a stable, platform-independent seed so
/// every run of a given property replays the identical case sequence.
fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs `body` for `config.cases` cases, panicking on the first failure.
pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(seed_for(name));
    for case in 0..config.cases {
        if let Err(err) = body(&mut rng) {
            panic!(
                "property `{name}` failed at case {case}/{}: {err}",
                config.cases
            );
        }
    }
}
