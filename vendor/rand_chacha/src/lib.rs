//! Vendored ChaCha-based RNG for offline builds.
//!
//! Implements the ChaCha stream cipher keystream (Bernstein 2008) as a
//! random-number generator, matching the small slice of the
//! `rand_chacha` 0.3 API this workspace uses: [`ChaCha12Rng`],
//! [`ChaCha8Rng`], [`ChaCha20Rng`], and the `rand_core` re-exports.
//!
//! Output is a genuine ChaCha keystream over a 256-bit key (little-endian
//! words, 64-bit block counter, zero nonce), so streams have the quality
//! expected of ChaCha. Word order within a block follows the natural
//! state layout; the workspace only relies on per-seed determinism, not
//! byte-compatibility with upstream `rand_chacha`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

pub mod rand_core {
    //! Re-exports mirroring `rand_chacha::rand_core`.
    pub use rand::{RngCore, SeedableRng};
}

/// ChaCha keystream generator with a configurable number of
/// double-rounds (`DR = 4, 6, 10` for ChaCha8/12/20).
#[derive(Clone, Debug)]
pub struct ChaChaRng<const DR: usize> {
    /// Words 0..4 constants, 4..12 key, 12..14 counter, 14..16 nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    cursor: usize,
}

impl<const DR: usize> ChaChaRng<DR> {
    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DR {
            // Column round.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit little-endian block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }
}

impl<const DR: usize> RngCore for ChaChaRng<DR> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl<const DR: usize> SeedableRng for ChaChaRng<DR> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Counter and nonce start at zero.
        ChaChaRng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

/// ChaCha with 8 rounds (4 double-rounds).
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds (6 double-rounds).
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds (10 double-rounds).
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
