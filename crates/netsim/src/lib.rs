//! Inter-datacenter WAN simulation substrate for the Metis reproduction.
//!
//! The paper ("Towards Maximal Service Profit in Geo-Distributed Clouds",
//! ICDCS 2019) models a provider-operated WAN `G(V, E)` whose directed
//! links carry per-unit bandwidth prices and are billed on peak usage per
//! cycle. This crate provides:
//!
//! * [`Topology`] — the priced directed graph, with [`topologies::b4`] and
//!   [`topologies::sub_b4`] matching the paper's evaluation networks;
//! * [`paths`] — Dijkstra + Yen's k-cheapest loopless paths and the
//!   all-pairs [`PathCatalog`] used as the candidate sets `P_i`;
//! * [`LoadMatrix`] — per-(edge, slot) reservation accounting, peak-based
//!   integer charging `c_e`, cost, and utilization statistics.
//!
//! # Examples
//!
//! ```
//! use metis_netsim::{topologies, LoadMatrix, PathCatalog, PathMetric};
//!
//! let topo = topologies::b4();
//! let catalog = PathCatalog::build(&topo, 3, PathMetric::Price);
//! let src = topo.node_ids().next().unwrap();
//! let dst = topo.node_ids().nth(7).unwrap();
//! let path = &catalog.paths(src, dst)[0];
//!
//! let mut load = LoadMatrix::new(topo.num_edges(), 12);
//! for &e in path.edges() {
//!     load.add(e, 0, 3, 0.25); // reserve 2.5 Gbps for slots 0..=3
//! }
//! assert!(load.total_cost(&topo) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod load;
pub mod paths;
pub mod topologies;

pub use graph::{Edge, EdgeId, Node, NodeId, Region, Topology, TopologyBuilder};
pub use load::{ceil_units, LoadMatrix, UtilizationStats, CEIL_EPS};
pub use paths::{k_shortest_paths, shortest_path, Path, PathCatalog, PathMetric};

/// One unit of bandwidth in Gbps: ISPs sell bandwidth in fixed units of
/// 10 Gbps in the paper's model.
pub const UNIT_GBPS: f64 = 10.0;

/// Converts a rate in Gbps to bandwidth units.
///
/// # Examples
///
/// ```
/// assert_eq!(metis_netsim::gbps_to_units(5.0), 0.5);
/// ```
pub fn gbps_to_units(gbps: f64) -> f64 {
    gbps / UNIT_GBPS
}

/// Converts bandwidth units to a rate in Gbps.
pub fn units_to_gbps(units: f64) -> f64 {
    units * UNIT_GBPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_round_trip() {
        assert_eq!(units_to_gbps(gbps_to_units(3.7)), 3.7);
        assert_eq!(gbps_to_units(10.0), 1.0);
    }
}
