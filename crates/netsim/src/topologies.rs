//! The evaluation topologies of the paper: B4 and SUB-B4.
//!
//! The paper evaluates on Google's **B4** inter-DC WAN (12 data centers,
//! 19 bidirectional links; its Fig. 2) and on **SUB-B4**, the induced
//! sub-network on DC1–DC6 with 7 links. The exact adjacency in the paper's
//! figure is not machine-readable, so this module encodes the standard
//! 12-node/19-link B4 layout used across the inter-DC-WAN literature and
//! documents the link list explicitly; SUB-B4 is literally the induced
//! subgraph on the first six data centers, which by construction has the
//! 7 links the paper states.
//!
//! Prices follow the Cloudflare relative-regional-price table via
//! [`Region::price_factor`]: DC1–DC3 are in Asia, DC4–DC9 in North
//! America, DC10–DC12 in Europe. A link's per-unit price is
//! `BASE_PRICE · (factor(a) + factor(b)) / 2`.

use crate::graph::{NodeId, Region, Topology, TopologyBuilder};

/// Baseline price of one bandwidth unit (10 Gbps) per billing cycle on the
/// cheapest (intra-NA/EU) links, in abstract dollars.
pub const BASE_PRICE: f64 = 1.0;

/// Bidirectional links of the 12-node B4 model, as `(a, b)` 0-based pairs.
///
/// The induced subgraph on nodes `0..6` has exactly the 7 links of SUB-B4.
pub const B4_LINKS: [(u32, u32); 19] = [
    (0, 1),
    (0, 2),
    (1, 3),
    (2, 3),
    (3, 4),
    (3, 5),
    (4, 5),
    (4, 6),
    (5, 6),
    (5, 7),
    (6, 7),
    (6, 8),
    (7, 8),
    (7, 9),
    (8, 9),
    (8, 10),
    (9, 11),
    (10, 11),
    (8, 11),
];

fn region_of(node: u32) -> Region {
    match node {
        0..=2 => Region::Asia,
        3..=8 => Region::NorthAmerica,
        _ => Region::Europe,
    }
}

fn build(nodes: u32, links: &[(u32, u32)]) -> Topology {
    let mut b: TopologyBuilder = Topology::builder();
    let ids: Vec<NodeId> = (0..nodes)
        .map(|i| b.add_node(format!("DC{}", i + 1), region_of(i)))
        .collect();
    for &(x, y) in links {
        b.add_regional_link(ids[x as usize], ids[y as usize], BASE_PRICE);
    }
    b.build()
}

/// Google's B4 inter-DC WAN: 12 data centers, 19 bidirectional links
/// (38 directed edges).
///
/// # Examples
///
/// ```
/// let topo = metis_netsim::topologies::b4();
/// assert_eq!(topo.num_nodes(), 12);
/// assert_eq!(topo.num_edges(), 38);
/// assert!(topo.is_strongly_connected());
/// ```
pub fn b4() -> Topology {
    build(12, &B4_LINKS)
}

/// SUB-B4: the induced sub-network of [`b4`] on DC1–DC6 (7 links,
/// 14 directed edges).
///
/// # Examples
///
/// ```
/// let topo = metis_netsim::topologies::sub_b4();
/// assert_eq!(topo.num_nodes(), 6);
/// assert_eq!(topo.num_edges(), 14);
/// ```
pub fn sub_b4() -> Topology {
    let links: Vec<(u32, u32)> = B4_LINKS
        .iter()
        .copied()
        .filter(|&(a, b)| a < 6 && b < 6)
        .collect();
    build(6, &links)
}

/// The Internet2/Abilene research backbone: 11 PoPs, 14 bidirectional
/// links, all North American. Not part of the paper's evaluation; useful
/// for robustness experiments on a different WAN shape.
///
/// # Examples
///
/// ```
/// let topo = metis_netsim::topologies::abilene();
/// assert_eq!(topo.num_nodes(), 11);
/// assert_eq!(topo.num_edges(), 28);
/// assert!(topo.is_strongly_connected());
/// ```
pub fn abilene() -> Topology {
    const NAMES: [&str; 11] = [
        "Seattle",
        "Sunnyvale",
        "Los Angeles",
        "Denver",
        "Kansas City",
        "Houston",
        "Chicago",
        "Indianapolis",
        "Atlanta",
        "Washington",
        "New York",
    ];
    const LINKS: [(u32, u32); 14] = [
        (0, 1),  // Seattle–Sunnyvale
        (0, 3),  // Seattle–Denver
        (1, 2),  // Sunnyvale–Los Angeles
        (1, 3),  // Sunnyvale–Denver
        (2, 5),  // Los Angeles–Houston
        (3, 4),  // Denver–Kansas City
        (4, 5),  // Kansas City–Houston
        (4, 7),  // Kansas City–Indianapolis
        (5, 8),  // Houston–Atlanta
        (6, 7),  // Chicago–Indianapolis
        (6, 10), // Chicago–New York
        (7, 8),  // Indianapolis–Atlanta
        (8, 9),  // Atlanta–Washington
        (9, 10), // Washington–New York
    ];
    let mut b = Topology::builder();
    let ids: Vec<NodeId> = NAMES
        .iter()
        .map(|n| b.add_node(*n, Region::NorthAmerica))
        .collect();
    for &(x, y) in &LINKS {
        b.add_regional_link(ids[x as usize], ids[y as usize], BASE_PRICE);
    }
    b.build()
}

/// A 22-node model of the GÉANT pan-European research network (36
/// bidirectional links, the layout commonly used in traffic-engineering
/// studies). All-European pricing.
///
/// # Examples
///
/// ```
/// let topo = metis_netsim::topologies::geant();
/// assert_eq!(topo.num_nodes(), 22);
/// assert_eq!(topo.num_edges(), 72);
/// assert!(topo.is_strongly_connected());
/// ```
pub fn geant() -> Topology {
    // 0:AT 1:BE 2:CH 3:CZ 4:DE 5:ES 6:FR 7:GR 8:HR 9:HU 10:IE 11:IL
    // 12:IT 13:LU 14:NL 15:NY(US peering) 16:PL 17:PT 18:SE 19:SI 20:SK 21:UK
    const LINKS: [(u32, u32); 36] = [
        (0, 3),
        (0, 4),
        (0, 9),
        (0, 19),
        (1, 4),
        (1, 14),
        (1, 6),
        (2, 4),
        (2, 6),
        (2, 12),
        (3, 4),
        (3, 16),
        (3, 20),
        (4, 12),
        (4, 14),
        (4, 18),
        (4, 21),
        (5, 6),
        (5, 12),
        (5, 17),
        (5, 21),
        (6, 13),
        (6, 21),
        (7, 12),
        (7, 0),
        (8, 9),
        (8, 19),
        (9, 20),
        (10, 21),
        (11, 12),
        (12, 21),
        (13, 4),
        (14, 21),
        (15, 21),
        (15, 18),
        (16, 4),
    ];
    const NAMES: [&str; 22] = [
        "AT", "BE", "CH", "CZ", "DE", "ES", "FR", "GR", "HR", "HU", "IE", "IL", "IT", "LU", "NL",
        "NY", "PL", "PT", "SE", "SI", "SK", "UK",
    ];
    let mut b = Topology::builder();
    let ids: Vec<NodeId> = NAMES
        .iter()
        .enumerate()
        .map(|(i, n)| {
            // NY peering point priced as North America; the rest Europe.
            let region = if i == 15 {
                Region::NorthAmerica
            } else {
                Region::Europe
            };
            b.add_node(*n, region)
        })
        .collect();
    for &(x, y) in &LINKS {
        b.add_regional_link(ids[x as usize], ids[y as usize], BASE_PRICE);
    }
    b.build()
}

/// A seeded random WAN: a ring over `n` nodes (guaranteeing strong
/// connectivity) plus `extra_links` random chords, with nodes assigned
/// round-robin to all five pricing regions.
///
/// Deterministic per `(n, extra_links, seed)`.
///
/// # Panics
///
/// Panics if `n < 3`.
///
/// # Examples
///
/// ```
/// let topo = metis_netsim::topologies::random_wan(9, 5, 7);
/// assert_eq!(topo.num_nodes(), 9);
/// assert!(topo.is_strongly_connected());
/// assert_eq!(topo, metis_netsim::topologies::random_wan(9, 5, 7));
/// ```
pub fn random_wan(n: u32, extra_links: usize, seed: u64) -> Topology {
    assert!(n >= 3, "need at least three nodes");
    const REGIONS: [Region; 5] = [
        Region::NorthAmerica,
        Region::Europe,
        Region::Asia,
        Region::SouthAmerica,
        Region::Oceania,
    ];
    let mut b = Topology::builder();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node(format!("DC{}", i + 1), REGIONS[i as usize % REGIONS.len()]))
        .collect();
    for i in 0..n as usize {
        b.add_regional_link(ids[i], ids[(i + 1) % n as usize], BASE_PRICE);
    }
    // Simple SplitMix64 stream; full determinism without pulling RNG
    // crates into this crate.
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut added = 0;
    let mut guard = 0;
    while added < extra_links && guard < extra_links * 20 + 100 {
        guard += 1;
        let a = (next() % n as u64) as usize;
        let c = (next() % n as u64) as usize;
        let neighbors = c == (a + 1) % n as usize || a == (c + 1) % n as usize;
        if a != c && !neighbors {
            b.add_regional_link(ids[a], ids[c], BASE_PRICE);
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{k_shortest_paths, PathMetric};

    #[test]
    fn b4_shape_matches_paper() {
        let t = b4();
        assert_eq!(t.num_nodes(), 12);
        assert_eq!(t.num_edges(), 2 * 19);
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn sub_b4_shape_matches_paper() {
        let t = sub_b4();
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.num_edges(), 2 * 7);
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn sub_b4_is_induced_subgraph_of_b4() {
        let big = b4();
        let small = sub_b4();
        for e in small.edge_ids() {
            let edge = small.edge(e);
            let be = big
                .find_edge(edge.from, edge.to)
                .expect("SUB-B4 edge missing from B4");
            assert_eq!(big.price(be), edge.price, "price differs for {e}");
        }
    }

    #[test]
    fn prices_reflect_regions() {
        let t = b4();
        // Asia–Asia link (DC1–DC2) costs 6.5×; NA–NA (DC5–DC6) costs 1×.
        let asia = t
            .find_edge(NodeId(0), NodeId(1))
            .expect("DC1–DC2 link exists");
        let na = t
            .find_edge(NodeId(4), NodeId(5))
            .expect("DC5–DC6 link exists");
        assert!((t.price(asia) - 6.5 * BASE_PRICE).abs() < 1e-12);
        assert!((t.price(na) - BASE_PRICE).abs() < 1e-12);
        assert!(t.price(asia) > t.price(na));
    }

    #[test]
    fn multiple_paths_exist_between_all_pairs() {
        // The evaluation requires path diversity ("there are several
        // routing paths between two data centers").
        for t in [b4(), sub_b4()] {
            let mut pairs_with_choice = 0;
            let mut pairs = 0;
            for s in t.node_ids() {
                for d in t.node_ids() {
                    if s == d {
                        continue;
                    }
                    pairs += 1;
                    let ps = k_shortest_paths(&t, s, d, 3, PathMetric::Price);
                    assert!(!ps.is_empty(), "{s}→{d} unreachable");
                    if ps.len() >= 2 {
                        pairs_with_choice += 1;
                    }
                }
            }
            assert!(
                pairs_with_choice * 10 >= pairs * 9,
                "fewer than 90% of pairs have alternative paths"
            );
        }
    }

    #[test]
    fn abilene_and_geant_are_sane() {
        let a = abilene();
        assert_eq!(a.num_nodes(), 11);
        assert_eq!(a.num_edges(), 28);
        assert!(a.is_strongly_connected());
        // All-NA: every link costs the base price.
        for e in a.edge_ids() {
            assert!((a.price(e) - BASE_PRICE).abs() < 1e-12);
        }

        let g = geant();
        assert_eq!(g.num_nodes(), 22);
        assert_eq!(g.num_edges(), 72);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn random_wan_is_deterministic_and_connected() {
        for seed in 0..5 {
            let t = random_wan(8, 6, seed);
            assert!(t.is_strongly_connected(), "seed {seed}");
            assert_eq!(t, random_wan(8, 6, seed));
            assert!(t.num_edges() >= 16, "ring plus chords");
        }
        assert_ne!(random_wan(8, 6, 1), random_wan(8, 6, 2));
    }

    #[test]
    #[should_panic(expected = "at least three nodes")]
    fn random_wan_too_small() {
        random_wan(2, 0, 0);
    }

    #[test]
    fn dot_export_contains_all_nodes() {
        let t = sub_b4();
        let dot = t.to_dot();
        for n in t.node_ids() {
            assert!(dot.contains(&t.node(n).name), "{} missing", t.node(n).name);
        }
        // 7 bidirectional links → 7 collapsed edges.
        assert_eq!(dot.matches(" -- ").count(), 7);
    }

    #[test]
    fn directed_pairs_have_symmetric_prices() {
        let t = b4();
        for e in t.edge_ids() {
            let edge = t.edge(e);
            let rev = t.find_edge(edge.to, edge.from).expect("reverse edge");
            assert_eq!(t.price(e), t.price(rev));
        }
    }
}
