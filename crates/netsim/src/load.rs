//! Per-(edge, time-slot) load accounting and billing.
//!
//! ISPs in the Metis model charge for the **peak** bandwidth used on each
//! link over the billing cycle, rounded up to integer units (`c_e`). The
//! [`LoadMatrix`] tracks reserved bandwidth per directed edge and slot and
//! derives charged units, cost, and link-utilization statistics.

use serde::{Deserialize, Serialize};

use crate::graph::{EdgeId, Topology};

/// Tolerance when rounding peak loads up to integer units: loads within
/// this distance of an integer do not trigger an extra unit.
pub const CEIL_EPS: f64 = 1e-9;

/// Reserved bandwidth (in units) per directed edge and time slot.
///
/// # Examples
///
/// ```
/// use metis_netsim::{topologies, LoadMatrix};
///
/// let topo = topologies::sub_b4();
/// let mut load = LoadMatrix::new(topo.num_edges(), 12);
/// let e = topo.edge_ids().next().unwrap();
/// load.add(e, 2, 5, 0.37); // slots 2..=5
/// assert_eq!(load.charged_units(e), 1);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadMatrix {
    num_edges: usize,
    num_slots: usize,
    /// Row-major `[edge][slot]`.
    data: Vec<f64>,
    /// Cached `max(0, max_t load)` per edge, maintained incrementally by
    /// [`LoadMatrix::add`]: increments update it in O(interval); a
    /// decrement that may have lowered the peak rebuilds that edge's
    /// cache in O(slots). The cache always equals a fresh scan exactly
    /// (same fold, same float operations), so callers cannot observe it.
    peaks: Vec<f64>,
}

/// Cache-blind equality: two matrices are equal iff their dimensions and
/// per-cell loads are (the peak cache is a pure function of those).
impl PartialEq for LoadMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.num_edges == other.num_edges
            && self.num_slots == other.num_slots
            && self.data == other.data
    }
}

impl LoadMatrix {
    /// Creates an all-zero matrix.
    pub fn new(num_edges: usize, num_slots: usize) -> Self {
        LoadMatrix {
            num_edges,
            num_slots,
            data: vec![0.0; num_edges * num_slots],
            peaks: vec![0.0; num_edges],
        }
    }

    /// Number of time slots per billing cycle.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Load on `edge` during `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` or `slot` is out of range.
    pub fn get(&self, edge: EdgeId, slot: usize) -> f64 {
        assert!(slot < self.num_slots, "slot {slot} out of range");
        self.data[edge.index() * self.num_slots + slot]
    }

    /// Adds `amount` to `edge` for every slot in `start..=end` (inclusive,
    /// matching the paper's `[ts_i, td_i]`).
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted or out of bounds.
    pub fn add(&mut self, edge: EdgeId, start: usize, end: usize, amount: f64) {
        assert!(start <= end, "inverted slot range {start}..={end}");
        assert!(end < self.num_slots, "slot {end} out of range");
        let base = edge.index() * self.num_slots;
        let mut old_touched_max = f64::NEG_INFINITY;
        let mut touched_max = f64::NEG_INFINITY;
        for s in start..=end {
            let old = self.data[base + s];
            if old > old_touched_max {
                old_touched_max = old;
            }
            let v = old + amount;
            self.data[base + s] = v;
            if v > touched_max {
                touched_max = v;
            }
        }
        let cached = self.peaks[edge.index()];
        if amount >= 0.0 {
            // Untouched slots are unchanged and touched slots only grew,
            // so the new peak is the old one or the tallest touched slot.
            if touched_max > cached {
                self.peaks[edge.index()] = touched_max;
            }
        } else if old_touched_max >= cached {
            // The tallest touched slot reached the cached peak before this
            // decrement, so the peak may have dropped — rescan this edge.
            // (When it was strictly below, the peak lives on an untouched
            // slot or the zero floor and is unchanged.)
            self.peaks[edge.index()] = scan_peak(&self.data[base..base + self.num_slots]);
        }
    }

    /// Removes previously added load (equivalent to `add` of `-amount`).
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted or out of bounds.
    pub fn remove(&mut self, edge: EdgeId, start: usize, end: usize, amount: f64) {
        self.add(edge, start, end, -amount);
    }

    /// Peak load on `edge` over the billing cycle (clamped below at zero),
    /// answered from the incrementally-maintained per-edge cache in O(1).
    pub fn peak(&self, edge: EdgeId) -> f64 {
        self.peaks[edge.index()]
    }

    /// Mean load on `edge` over the billing cycle.
    pub fn mean(&self, edge: EdgeId) -> f64 {
        let base = edge.index() * self.num_slots;
        self.data[base..base + self.num_slots].iter().sum::<f64>() / self.num_slots as f64
    }

    /// Charged bandwidth `c_e`: the peak rounded up to integer units.
    pub fn charged_units(&self, edge: EdgeId) -> u64 {
        ceil_units(self.peak(edge))
    }

    /// Total bandwidth cost `Σ_e u_e · c_e` over a topology.
    ///
    /// # Panics
    ///
    /// Panics if the matrix and topology disagree on the edge count.
    pub fn total_cost(&self, topo: &Topology) -> f64 {
        assert_eq!(self.num_edges, topo.num_edges(), "edge count mismatch");
        topo.edge_ids()
            .map(|e| topo.price(e) * self.charged_units(e) as f64)
            .sum()
    }

    /// Utilization statistics against a per-edge capacity vector (units).
    ///
    /// Edges with zero capacity are skipped (they carry no purchased
    /// bandwidth, so "utilization" is undefined for them). Utilization of
    /// an edge is its **mean load over the cycle** divided by capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity.len()` differs from the edge count.
    pub fn utilization(&self, capacity: &[f64]) -> UtilizationStats {
        assert_eq!(capacity.len(), self.num_edges, "capacity length mismatch");
        let stats: Vec<f64> = capacity
            .iter()
            .enumerate()
            .filter(|&(_, &cap)| cap > 0.0)
            .map(|(e, &cap)| self.mean(EdgeId(e as u32)) / cap)
            .collect();
        UtilizationStats::from_values(&stats)
    }

    /// Per-edge charged units as a capacity vector (what the provider
    /// actually purchased, given this load).
    pub fn charged_capacities(&self) -> Vec<f64> {
        (0..self.num_edges)
            .map(|e| self.charged_units(EdgeId(e as u32)) as f64)
            .collect()
    }

    /// Whether adding `amount` on `edge` during `start..=end` stays within
    /// `capacity` everywhere.
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted or out of bounds.
    pub fn fits(&self, edge: EdgeId, start: usize, end: usize, amount: f64, capacity: f64) -> bool {
        assert!(start <= end, "inverted slot range {start}..={end}");
        assert!(end < self.num_slots, "slot {end} out of range");
        let base = edge.index() * self.num_slots;
        (start..=end).all(|s| self.data[base + s] + amount <= capacity + CEIL_EPS)
    }
}

/// The reference peak fold: `max(0, max over the row)`. The incremental
/// cache must stay bit-identical to this.
fn scan_peak(row: &[f64]) -> f64 {
    row.iter().fold(0.0_f64, |a, &b| a.max(b))
}

/// Rounds a non-negative load up to whole bandwidth units, forgiving
/// floating-point fuzz within [`CEIL_EPS`].
pub fn ceil_units(load: f64) -> u64 {
    if load <= CEIL_EPS {
        0
    } else {
        (load - CEIL_EPS).ceil() as u64
    }
}

/// Min / mean / max link utilization, as plotted in Fig. 3c and Fig. 5c.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct UtilizationStats {
    /// Minimum utilization over links with purchased bandwidth.
    pub min: f64,
    /// Mean utilization over links with purchased bandwidth.
    pub mean: f64,
    /// Maximum utilization over links with purchased bandwidth.
    pub max: f64,
    /// Number of links with purchased bandwidth.
    pub links: usize,
}

impl UtilizationStats {
    /// Aggregates raw per-link utilizations; empty input yields zeros.
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return UtilizationStats::default();
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        UtilizationStats {
            min,
            mean: sum / values.len() as f64,
            max,
            links: values.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Region;
    use crate::Topology;

    fn one_link() -> Topology {
        let mut b = Topology::builder();
        let a = b.add_node("a", Region::Europe);
        let c = b.add_node("c", Region::Asia);
        b.add_link(a, c, 2.0);
        b.build()
    }

    #[test]
    fn add_peak_mean() {
        let mut l = LoadMatrix::new(2, 12);
        let e = EdgeId(0);
        l.add(e, 0, 5, 1.0);
        l.add(e, 3, 8, 0.5);
        assert_eq!(l.get(e, 0), 1.0);
        assert_eq!(l.get(e, 4), 1.5);
        assert_eq!(l.get(e, 8), 0.5);
        assert_eq!(l.get(e, 9), 0.0);
        assert_eq!(l.peak(e), 1.5);
        assert!((l.mean(e) - (6.0 + 3.0) / 12.0).abs() < 1e-12);
    }

    #[test]
    fn remove_restores() {
        let mut l = LoadMatrix::new(1, 4);
        let e = EdgeId(0);
        l.add(e, 1, 2, 0.7);
        l.remove(e, 1, 2, 0.7);
        for s in 0..4 {
            assert!(l.get(e, s).abs() < 1e-15);
        }
    }

    #[test]
    fn charging_rounds_up() {
        let mut l = LoadMatrix::new(1, 3);
        let e = EdgeId(0);
        assert_eq!(l.charged_units(e), 0);
        l.add(e, 0, 0, 0.1);
        assert_eq!(l.charged_units(e), 1);
        l.add(e, 0, 0, 0.9);
        assert_eq!(l.charged_units(e), 1, "exactly 1.0 stays one unit");
        l.add(e, 0, 0, 1e-12);
        assert_eq!(l.charged_units(e), 1, "epsilon overshoot forgiven");
        l.add(e, 0, 0, 0.5);
        assert_eq!(l.charged_units(e), 2);
    }

    #[test]
    fn ceil_units_edge_cases() {
        assert_eq!(ceil_units(0.0), 0);
        assert_eq!(ceil_units(-0.5), 0);
        assert_eq!(ceil_units(1e-12), 0);
        assert_eq!(ceil_units(0.001), 1);
        assert_eq!(ceil_units(2.0), 2);
        assert_eq!(ceil_units(2.0 + 1e-12), 2);
        assert_eq!(ceil_units(2.1), 3);
    }

    #[test]
    fn cost_uses_prices() {
        let t = one_link();
        let mut l = LoadMatrix::new(t.num_edges(), 12);
        // Price on the a↔c link is 2.0 both ways.
        l.add(EdgeId(0), 0, 0, 1.2); // → 2 units → cost 4
        l.add(EdgeId(1), 0, 11, 0.4); // → 1 unit → cost 2
        assert!((l.total_cost(&t) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_stats() {
        let mut l = LoadMatrix::new(3, 2);
        l.add(EdgeId(0), 0, 1, 1.0); // mean 1.0, cap 2 → 0.5
        l.add(EdgeId(1), 0, 0, 1.0); // mean 0.5, cap 1 → 0.5
                                     // edge 2 unused; cap 0 → skipped
        let u = l.utilization(&[2.0, 1.0, 0.0]);
        assert_eq!(u.links, 2);
        assert!((u.min - 0.5).abs() < 1e-12);
        assert!((u.max - 0.5).abs() < 1e-12);
        assert!((u.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_utilization_is_zeroed() {
        let l = LoadMatrix::new(2, 2);
        let u = l.utilization(&[0.0, 0.0]);
        assert_eq!(u, UtilizationStats::default());
    }

    #[test]
    fn fits_respects_capacity() {
        let mut l = LoadMatrix::new(1, 4);
        let e = EdgeId(0);
        l.add(e, 0, 3, 0.8);
        assert!(l.fits(e, 0, 3, 0.2, 1.0));
        assert!(!l.fits(e, 1, 2, 0.3, 1.0));
        assert!(l.fits(e, 1, 2, 0.3, 1.2));
    }

    /// The peak cache must be indistinguishable from rescanning the row.
    fn assert_cache_exact(l: &LoadMatrix) {
        for e in 0..l.num_edges() {
            let edge = EdgeId(e as u32);
            let base = e * l.num_slots();
            let fresh = scan_peak(&l.data[base..base + l.num_slots()]);
            assert_eq!(l.peak(edge).to_bits(), fresh.to_bits(), "edge {e}");
        }
    }

    #[test]
    fn peak_cache_tracks_adds_and_removes() {
        let mut l = LoadMatrix::new(2, 8);
        let e = EdgeId(0);
        assert_cache_exact(&l);
        l.add(e, 0, 3, 1.5);
        assert_cache_exact(&l);
        l.add(e, 2, 5, 0.75); // new peak at overlap
        assert_cache_exact(&l);
        assert_eq!(l.peak(e), 2.25);
        l.remove(e, 2, 3, 0.75); // removes the peak holder → rescan path
        assert_cache_exact(&l);
        assert_eq!(l.peak(e), 1.5);
        l.remove(e, 4, 5, 0.75); // peak untouched → fast path
        assert_cache_exact(&l);
        l.remove(e, 0, 3, 1.5); // back to empty
        assert_cache_exact(&l);
        assert_eq!(l.peak(EdgeId(1)), 0.0, "other edge untouched");
    }

    #[test]
    fn peak_clamps_below_at_zero() {
        // The historical fold starts at 0.0, so all-negative rows still
        // report a zero peak; the cache must agree.
        let mut l = LoadMatrix::new(1, 4);
        let e = EdgeId(0);
        l.add(e, 0, 3, 1.0);
        l.remove(e, 0, 3, 2.0);
        assert_eq!(l.peak(e), 0.0);
        assert_cache_exact(&l);
        assert_eq!(l.charged_units(e), 0);
    }

    #[test]
    fn equality_ignores_construction_order() {
        // Same loads reached through different add/remove histories (and
        // hence different cache code paths) compare equal.
        let mut a = LoadMatrix::new(1, 4);
        let mut b = LoadMatrix::new(1, 4);
        let e = EdgeId(0);
        a.add(e, 0, 3, 1.0);
        b.add(e, 0, 3, 3.0);
        b.remove(e, 0, 3, 2.0);
        // 1.0 vs 3.0 − 2.0: equal within f64 because both are exact.
        assert_eq!(a, b);
        assert_eq!(a.peak(e), b.peak(e));
    }

    #[test]
    #[should_panic(expected = "slot 5 out of range")]
    fn out_of_range_slot_panics() {
        let mut l = LoadMatrix::new(1, 4);
        l.add(EdgeId(0), 2, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "inverted slot range")]
    fn inverted_range_panics() {
        let mut l = LoadMatrix::new(1, 4);
        l.add(EdgeId(0), 3, 1, 1.0);
    }
}
