//! Directed inter-DC WAN topology with per-link bandwidth prices.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a data center (node) within one [`Topology`].
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DC{}", self.0 + 1)
    }
}

/// Identifier of a directed link (edge) within one [`Topology`].
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Geographic pricing region of a data center.
///
/// Relative bandwidth prices follow the Cloudflare "bandwidth costs around
/// the world" breakdown the paper cites: Europe and North America are the
/// cheapest (1×), Asia roughly 6.5×, Oceania and South America roughly 17×.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// North America (relative price 1.0).
    NorthAmerica,
    /// Europe (relative price 1.0).
    Europe,
    /// Asia (relative price 6.5).
    Asia,
    /// South America (relative price 17.0).
    SouthAmerica,
    /// Oceania (relative price 17.0).
    Oceania,
}

impl Region {
    /// Relative price of one unit of bandwidth terminating in this region.
    pub fn price_factor(self) -> f64 {
        match self {
            Region::NorthAmerica | Region::Europe => 1.0,
            Region::Asia => 6.5,
            Region::SouthAmerica | Region::Oceania => 17.0,
        }
    }
}

/// A data center.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable name, e.g. `"DC3"`.
    pub name: String,
    /// Pricing region.
    pub region: Region,
}

/// A directed link between two data centers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source data center.
    pub from: NodeId,
    /// Destination data center.
    pub to: NodeId,
    /// Price of one unit (10 Gbps) of bandwidth per billing cycle.
    pub price: f64,
}

/// A directed inter-DC WAN.
///
/// Nodes are data centers; edges are directed leased links, each with a
/// per-unit bandwidth price `u_e`. Bidirectional physical links are stored
/// as two directed edges. Construct with [`Topology::builder`] or a
/// ready-made topology from [`crate::topologies`].
///
/// # Examples
///
/// ```
/// use metis_netsim::{Region, Topology};
///
/// let mut b = Topology::builder();
/// let a = b.add_node("A", Region::NorthAmerica);
/// let c = b.add_node("C", Region::Europe);
/// b.add_link(a, c, 2.0); // both directions, price 2.0/unit
/// let topo = b.build();
/// assert_eq!(topo.num_nodes(), 2);
/// assert_eq!(topo.num_edges(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node.
    out_adj: Vec<Vec<EdgeId>>,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Number of data centers.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The node record behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The edge record behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Price `u_e` of one bandwidth unit on `id`.
    pub fn price(&self, id: EdgeId) -> f64 {
        self.edges[id.index()].price
    }

    /// Iterates all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Outgoing edges of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out_adj[node.index()]
    }

    /// The directed edge from `from` to `to`, if one exists.
    pub fn find_edge(&self, from: NodeId, to: NodeId) -> Option<EdgeId> {
        self.out_adj[from.index()]
            .iter()
            .copied()
            .find(|&e| self.edges[e.index()].to == to)
    }

    /// Whether every node can reach every other node.
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        // BFS from node 0 forward, then check every node reaches node 0 by
        // BFS on the reverse graph.
        let reach_fwd = self.bfs_reach(NodeId(0), false);
        let reach_bwd = self.bfs_reach(NodeId(0), true);
        reach_fwd.iter().all(|&r| r) && reach_bwd.iter().all(|&r| r)
    }

    /// Renders the topology as a GraphViz DOT document: one undirected
    /// edge per bidirectional link pair (directed edges without a reverse
    /// twin are drawn with an arrow), labelled with the per-unit price,
    /// nodes colored by region.
    ///
    /// # Examples
    ///
    /// ```
    /// let dot = metis_netsim::topologies::sub_b4().to_dot();
    /// assert!(dot.starts_with("graph wan {"));
    /// assert!(dot.contains("DC1"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph wan {\n");
        let _ = writeln!(out, "  layout=neato; overlap=false;");
        for (i, n) in self.nodes.iter().enumerate() {
            let color = match n.region {
                Region::NorthAmerica => "#88aaff",
                Region::Europe => "#88ddaa",
                Region::Asia => "#ffcc88",
                Region::SouthAmerica => "#ff9999",
                Region::Oceania => "#dd99ff",
            };
            let _ = writeln!(
                out,
                "  n{i} [label=\"{}\" style=filled fillcolor=\"{color}\"];",
                n.name
            );
        }
        // Collapse bidirectional pairs.
        let mut drawn = vec![false; self.edges.len()];
        for (i, e) in self.edges.iter().enumerate() {
            if drawn[i] {
                continue;
            }
            drawn[i] = true;
            let twin = self
                .find_edge(e.to, e.from)
                .filter(|t| self.edges[t.index()].price == e.price && !drawn[t.index()]);
            if let Some(t) = twin {
                drawn[t.index()] = true;
                let _ = writeln!(
                    out,
                    "  n{} -- n{} [label=\"{:.2}\"];",
                    e.from.index(),
                    e.to.index(),
                    e.price
                );
            } else {
                let _ = writeln!(
                    out,
                    "  n{} -- n{} [dir=forward label=\"{:.2}\"];",
                    e.from.index(),
                    e.to.index(),
                    e.price
                );
            }
        }
        out.push_str("}\n");
        out
    }

    fn bfs_reach(&self, start: NodeId, reverse: bool) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(u) = stack.pop() {
            for e in &self.edges {
                let (a, b) = if reverse {
                    (e.to, e.from)
                } else {
                    (e.from, e.to)
                };
                if a == u && !seen[b.index()] {
                    seen[b.index()] = true;
                    stack.push(b);
                }
            }
        }
        seen
    }
}

/// Incremental [`Topology`] construction.
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl TopologyBuilder {
    /// Adds a data center and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, region: Region) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.into(),
            region,
        });
        id
    }

    /// Adds one directed edge with an explicit price.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is unknown, the endpoints are equal, or
    /// `price` is not finite and positive.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, price: f64) -> EdgeId {
        assert!(from.index() < self.nodes.len(), "unknown `from` node");
        assert!(to.index() < self.nodes.len(), "unknown `to` node");
        assert_ne!(from, to, "self-loop links are not allowed");
        assert!(
            price.is_finite() && price > 0.0,
            "price must be finite and positive, got {price}"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { from, to, price });
        id
    }

    /// Adds a bidirectional link (two directed edges, same price).
    pub fn add_link(&mut self, a: NodeId, b: NodeId, price: f64) -> (EdgeId, EdgeId) {
        (self.add_edge(a, b, price), self.add_edge(b, a, price))
    }

    /// Adds a bidirectional link priced from the endpoint regions:
    /// `base · (factor(a) + factor(b)) / 2`.
    pub fn add_regional_link(&mut self, a: NodeId, b: NodeId, base: f64) -> (EdgeId, EdgeId) {
        let fa = self.nodes[a.index()].region.price_factor();
        let fb = self.nodes[b.index()].region.price_factor();
        self.add_link(a, b, base * (fa + fb) / 2.0)
    }

    /// Finalizes the topology.
    pub fn build(self) -> Topology {
        let mut out_adj = vec![Vec::new(); self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            out_adj[e.from.index()].push(EdgeId(i as u32));
        }
        Topology {
            nodes: self.nodes,
            edges: self.edges,
            out_adj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut b = Topology::builder();
        let n1 = b.add_node("DC1", Region::NorthAmerica);
        let n2 = b.add_node("DC2", Region::Europe);
        let n3 = b.add_node("DC3", Region::Asia);
        b.add_link(n1, n2, 1.0);
        b.add_link(n2, n3, 2.0);
        b.add_link(n3, n1, 3.0);
        b.build()
    }

    #[test]
    fn builder_produces_directed_pairs() {
        let t = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 6);
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn adjacency_and_lookup() {
        let t = triangle();
        let e = t.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(t.edge(e).to, NodeId(1));
        assert_eq!(t.price(e), 1.0);
        assert!(t.find_edge(NodeId(0), NodeId(0)).is_none());
        assert_eq!(t.out_edges(NodeId(0)).len(), 2);
    }

    #[test]
    fn regional_pricing() {
        let mut b = Topology::builder();
        let na = b.add_node("na", Region::NorthAmerica);
        let asia = b.add_node("asia", Region::Asia);
        let (e, _) = b.add_regional_link(na, asia, 2.0);
        let t = b.build();
        // (1.0 + 6.5)/2 * 2.0 = 7.5
        assert!((t.price(e) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn region_factors_ordered() {
        assert!(Region::NorthAmerica.price_factor() < Region::Asia.price_factor());
        assert!(Region::Asia.price_factor() < Region::Oceania.price_factor());
        assert_eq!(
            Region::Europe.price_factor(),
            Region::NorthAmerica.price_factor()
        );
    }

    #[test]
    fn disconnected_detected() {
        let mut b = Topology::builder();
        let a = b.add_node("a", Region::Europe);
        let c = b.add_node("c", Region::Europe);
        b.add_edge(a, c, 1.0); // one-way only
        let t = b.build();
        assert!(!t.is_strongly_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut b = Topology::builder();
        let a = b.add_node("a", Region::Europe);
        b.add_edge(a, a, 1.0);
    }

    #[test]
    #[should_panic(expected = "price must be finite and positive")]
    fn bad_price_rejected() {
        let mut b = Topology::builder();
        let a = b.add_node("a", Region::Europe);
        let c = b.add_node("c", Region::Europe);
        b.add_edge(a, c, 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(0).to_string(), "DC1");
        assert_eq!(EdgeId(3).to_string(), "e3");
    }
}
