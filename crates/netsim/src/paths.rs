//! Loopless path enumeration between data centers.
//!
//! Requests in the Metis model are unsplittable: each accepted request is
//! pinned to exactly one path from a precomputed candidate set `P_i`. This
//! module provides Dijkstra shortest paths and Yen's algorithm for the
//! `k` cheapest loopless paths, plus a [`PathCatalog`] that precomputes the
//! candidate set for every ordered DC pair.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::graph::{EdgeId, NodeId, Topology};

/// How path cost is measured during enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PathMetric {
    /// Sum of per-unit bandwidth prices along the path — the natural metric
    /// for cost-aware scheduling (cheapest paths first).
    #[default]
    Price,
    /// Hop count.
    Hops,
}

impl PathMetric {
    fn edge_cost(self, topo: &Topology, e: EdgeId) -> f64 {
        match self {
            PathMetric::Price => topo.price(e),
            PathMetric::Hops => 1.0,
        }
    }
}

/// A loopless directed path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Path {
    edges: Vec<EdgeId>,
    nodes: Vec<NodeId>,
}

impl Path {
    /// Builds a path from its edge sequence, deriving the node sequence.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not contiguous in `topo`.
    pub fn from_edges(topo: &Topology, edges: Vec<EdgeId>) -> Self {
        assert!(!edges.is_empty(), "a path needs at least one edge");
        let mut nodes = vec![topo.edge(edges[0]).from];
        for &e in &edges {
            let edge = topo.edge(e);
            assert_eq!(
                edge.from,
                *nodes.last().unwrap(),
                "edges do not form a contiguous path"
            );
            nodes.push(edge.to);
        }
        Path { edges, nodes }
    }

    /// Edge ids in order.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Node ids in order (one more than edges).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Source data center.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination data center.
    pub fn dest(&self) -> NodeId {
        *self.nodes.last().unwrap()
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Always false: paths have at least one edge.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the path uses `e`.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Total cost under a metric.
    pub fn cost(&self, topo: &Topology, metric: PathMetric) -> f64 {
        self.edges.iter().map(|&e| metric.edge_cost(topo, e)).sum()
    }

    /// Sum of per-unit prices along the path.
    pub fn price(&self, topo: &Topology) -> f64 {
        self.cost(topo, PathMetric::Price)
    }
}

#[derive(Clone, Copy, PartialEq)]
struct HeapItem {
    dist: f64,
    node: u32,
}

impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| self.node.cmp(&other.node))
    }
}

/// Dijkstra shortest path with per-edge and per-node exclusions.
///
/// Returns `None` when `dst` is unreachable.
fn dijkstra(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    metric: PathMetric,
    banned_edges: &[bool],
    banned_nodes: &[bool],
) -> Option<Vec<EdgeId>> {
    let n = topo.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        node: src.0,
    });
    while let Some(HeapItem { dist: d, node }) = heap.pop() {
        if d > dist[node as usize] {
            continue;
        }
        if node == dst.0 {
            break;
        }
        for &e in topo.out_edges(NodeId(node)) {
            if banned_edges[e.index()] {
                continue;
            }
            let to = topo.edge(e).to;
            if banned_nodes[to.index()] {
                continue;
            }
            let nd = d + metric.edge_cost(topo, e);
            if nd < dist[to.index()] - 1e-15 {
                dist[to.index()] = nd;
                prev[to.index()] = Some(e);
                heap.push(HeapItem {
                    dist: nd,
                    node: to.0,
                });
            }
        }
    }
    if dist[dst.index()].is_infinite() {
        return None;
    }
    let mut edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        let e = prev[cur.index()]?;
        edges.push(e);
        cur = topo.edge(e).from;
    }
    edges.reverse();
    Some(edges)
}

/// The cheapest path from `src` to `dst`, or `None` if unreachable.
pub fn shortest_path(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    metric: PathMetric,
) -> Option<Path> {
    if src == dst {
        return None;
    }
    let banned_e = vec![false; topo.num_edges()];
    let banned_n = vec![false; topo.num_nodes()];
    dijkstra(topo, src, dst, metric, &banned_e, &banned_n)
        .map(|edges| Path::from_edges(topo, edges))
}

/// Yen's algorithm: up to `k` cheapest loopless paths from `src` to `dst`,
/// ordered by increasing cost.
///
/// Returns fewer than `k` paths when the graph does not contain that many
/// loopless alternatives, and an empty vector when `dst` is unreachable or
/// `src == dst`.
pub fn k_shortest_paths(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    k: usize,
    metric: PathMetric,
) -> Vec<Path> {
    if k == 0 || src == dst {
        return Vec::new();
    }
    let Some(first) = shortest_path(topo, src, dst, metric) else {
        return Vec::new();
    };
    let mut found = vec![first];
    // Candidate pool: (cost, edge list). Linear scan is fine at WAN scale.
    let mut candidates: Vec<(f64, Vec<EdgeId>)> = Vec::new();

    while found.len() < k {
        let last = found.last().unwrap().clone();
        for spur_idx in 0..last.len() {
            let spur_node = last.nodes()[spur_idx];
            let root_edges = &last.edges()[..spur_idx];

            let mut banned_e = vec![false; topo.num_edges()];
            let mut banned_n = vec![false; topo.num_nodes()];
            // Ban edges that would recreate an already-found path sharing
            // this root.
            for p in &found {
                if p.len() > spur_idx && p.edges()[..spur_idx] == *root_edges {
                    banned_e[p.edges()[spur_idx].index()] = true;
                }
            }
            // Ban root nodes (except the spur node) to keep paths loopless.
            for &nd in &last.nodes()[..spur_idx] {
                banned_n[nd.index()] = true;
            }

            if let Some(spur) = dijkstra(topo, spur_node, dst, metric, &banned_e, &banned_n) {
                let mut total: Vec<EdgeId> = root_edges.to_vec();
                total.extend(spur);
                let path = Path::from_edges(topo, total);
                let cost = path.cost(topo, metric);
                let dup = found.iter().any(|p| p.edges() == path.edges())
                    || candidates.iter().any(|(_, e)| *e == path.edges());
                if !dup {
                    candidates.push((cost, path.edges().to_vec()));
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the cheapest candidate.
        let (best_idx, _) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0))
            .unwrap();
        let (_, edges) = candidates.swap_remove(best_idx);
        found.push(Path::from_edges(topo, edges));
    }
    found
}

/// Precomputed candidate path sets `P_i` for every ordered DC pair.
///
/// # Examples
///
/// ```
/// use metis_netsim::{topologies, PathCatalog, PathMetric};
///
/// let topo = topologies::sub_b4();
/// let catalog = PathCatalog::build(&topo, 3, PathMetric::Price);
/// let (src, dst) = (topo.node_ids().next().unwrap(), topo.node_ids().last().unwrap());
/// assert!(!catalog.paths(src, dst).is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathCatalog {
    num_nodes: usize,
    k: usize,
    metric: PathMetric,
    /// Indexed by `src * num_nodes + dst`.
    sets: Vec<Vec<Path>>,
}

impl PathCatalog {
    /// Enumerates up to `k` cheapest loopless paths for every ordered pair.
    pub fn build(topo: &Topology, k: usize, metric: PathMetric) -> Self {
        let n = topo.num_nodes();
        let mut sets = vec![Vec::new(); n * n];
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s != d {
                    sets[(s as usize) * n + d as usize] =
                        k_shortest_paths(topo, NodeId(s), NodeId(d), k, metric);
                }
            }
        }
        PathCatalog {
            num_nodes: n,
            k,
            metric,
            sets,
        }
    }

    /// Candidate paths from `src` to `dst`, cheapest first.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn paths(&self, src: NodeId, dst: NodeId) -> &[Path] {
        &self.sets[src.index() * self.num_nodes + dst.index()]
    }

    /// The `k` the catalog was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The metric the catalog was built with.
    pub fn metric(&self) -> PathMetric {
        self.metric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Region, Topology};

    /// Square with a diagonal: 1-2-4 (cost 2), 1-3-4 (cost 5), 1-4 (cost 10).
    fn square() -> Topology {
        let mut b = Topology::builder();
        let n: Vec<_> = (0..4)
            .map(|i| b.add_node(format!("DC{}", i + 1), Region::Europe))
            .collect();
        b.add_link(n[0], n[1], 1.0);
        b.add_link(n[1], n[3], 1.0);
        b.add_link(n[0], n[2], 2.0);
        b.add_link(n[2], n[3], 3.0);
        b.add_link(n[0], n[3], 10.0);
        b.build()
    }

    #[test]
    fn shortest_is_cheapest() {
        let t = square();
        let p = shortest_path(&t, NodeId(0), NodeId(3), PathMetric::Price).unwrap();
        assert_eq!(p.len(), 2);
        assert!((p.price(&t) - 2.0).abs() < 1e-12);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.dest(), NodeId(3));
    }

    #[test]
    fn shortest_by_hops_differs() {
        let t = square();
        let p = shortest_path(&t, NodeId(0), NodeId(3), PathMetric::Hops).unwrap();
        assert_eq!(p.len(), 1, "direct link wins on hop count");
    }

    #[test]
    fn yen_orders_by_cost() {
        let t = square();
        let ps = k_shortest_paths(&t, NodeId(0), NodeId(3), 5, PathMetric::Price);
        assert_eq!(ps.len(), 3, "exactly three loopless 1→4 paths exist");
        let costs: Vec<f64> = ps.iter().map(|p| p.price(&t)).collect();
        assert!((costs[0] - 2.0).abs() < 1e-12);
        assert!((costs[1] - 5.0).abs() < 1e-12);
        assert!((costs[2] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn yen_paths_are_loopless_and_distinct() {
        let t = square();
        let ps = k_shortest_paths(&t, NodeId(0), NodeId(3), 10, PathMetric::Price);
        for p in &ps {
            let mut nodes = p.nodes().to_vec();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), p.nodes().len(), "loop in path");
        }
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                assert_ne!(ps[i].edges(), ps[j].edges(), "duplicate path");
            }
        }
    }

    #[test]
    fn k_limits_result() {
        let t = square();
        let ps = k_shortest_paths(&t, NodeId(0), NodeId(3), 2, PathMetric::Price);
        assert_eq!(ps.len(), 2);
        assert_eq!(
            k_shortest_paths(&t, NodeId(0), NodeId(3), 0, PathMetric::Price).len(),
            0
        );
    }

    #[test]
    fn unreachable_and_self() {
        let mut b = Topology::builder();
        let a = b.add_node("a", Region::Europe);
        let c = b.add_node("c", Region::Europe);
        let d = b.add_node("d", Region::Europe);
        b.add_link(a, c, 1.0);
        let t = b.build();
        assert!(shortest_path(&t, a, d, PathMetric::Price).is_none());
        assert!(k_shortest_paths(&t, a, d, 3, PathMetric::Price).is_empty());
        assert!(k_shortest_paths(&t, a, a, 3, PathMetric::Price).is_empty());
        let _ = d;
    }

    #[test]
    fn catalog_covers_all_pairs() {
        let t = square();
        let cat = PathCatalog::build(&t, 3, PathMetric::Price);
        for s in t.node_ids() {
            for d in t.node_ids() {
                if s == d {
                    assert!(cat.paths(s, d).is_empty());
                } else {
                    assert!(!cat.paths(s, d).is_empty(), "{s}→{d} missing");
                    // Cheapest-first ordering.
                    let ps = cat.paths(s, d);
                    for w in ps.windows(2) {
                        assert!(w[0].price(&t) <= w[1].price(&t) + 1e-12);
                    }
                }
            }
        }
        assert_eq!(cat.k(), 3);
        assert_eq!(cat.metric(), PathMetric::Price);
    }

    #[test]
    fn path_from_edges_validates() {
        let t = square();
        let e01 = t.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e13 = t.find_edge(NodeId(1), NodeId(3)).unwrap();
        let p = Path::from_edges(&t, vec![e01, e13]);
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert!(p.contains_edge(e01));
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_rejected() {
        let t = square();
        let e01 = t.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e23 = t.find_edge(NodeId(2), NodeId(3)).unwrap();
        let _ = Path::from_edges(&t, vec![e01, e23]);
    }
}
