//! Property tests for path enumeration and load accounting on random
//! topologies.

use proptest::prelude::*;

use metis_netsim::{
    ceil_units, k_shortest_paths, shortest_path, EdgeId, LoadMatrix, NodeId, PathMetric, Region,
    Topology,
};

/// Random connected topology: a ring plus chords, mixed regions.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (
        3usize..10,
        proptest::collection::vec((0usize..10, 0usize..10, 1.0f64..20.0), 0..8),
    )
        .prop_map(|(n, chords)| {
            let mut b = Topology::builder();
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    let region = match i % 3 {
                        0 => Region::NorthAmerica,
                        1 => Region::Asia,
                        _ => Region::Europe,
                    };
                    b.add_node(format!("DC{i}"), region)
                })
                .collect();
            for i in 0..n {
                b.add_link(ids[i], ids[(i + 1) % n], 1.0 + i as f64);
            }
            for (a, c, price) in chords {
                let (a, c) = (a % n, c % n);
                if a != c {
                    b.add_link(ids[a], ids[c], price);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_topologies_are_strongly_connected(topo in arb_topology()) {
        prop_assert!(topo.is_strongly_connected());
    }

    #[test]
    fn shortest_path_is_minimal_among_yen(topo in arb_topology(), k in 1usize..6) {
        let src = NodeId(0);
        let dst = NodeId((topo.num_nodes() - 1) as u32);
        let best = shortest_path(&topo, src, dst, PathMetric::Price).unwrap();
        let all = k_shortest_paths(&topo, src, dst, k, PathMetric::Price);
        prop_assert!(!all.is_empty());
        prop_assert!((all[0].price(&topo) - best.price(&topo)).abs() < 1e-9);
        // Sorted by cost, loopless, pairwise distinct, endpoints right.
        for w in all.windows(2) {
            prop_assert!(w[0].price(&topo) <= w[1].price(&topo) + 1e-9);
            prop_assert!(w[0].edges() != w[1].edges());
        }
        for p in &all {
            prop_assert_eq!(p.source(), src);
            prop_assert_eq!(p.dest(), dst);
            let mut nodes = p.nodes().to_vec();
            nodes.sort();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), p.nodes().len(), "loop in path");
            prop_assert!(p.len() < topo.num_nodes());
        }
        prop_assert!(all.len() <= k);
    }

    #[test]
    fn yen_with_larger_k_extends_prefix(topo in arb_topology()) {
        let src = NodeId(0);
        let dst = NodeId(1);
        let small = k_shortest_paths(&topo, src, dst, 2, PathMetric::Price);
        let large = k_shortest_paths(&topo, src, dst, 4, PathMetric::Price);
        // Cost sequence of the smaller call is a prefix of the larger's.
        for (a, b) in small.iter().zip(&large) {
            prop_assert!((a.price(&topo) - b.price(&topo)).abs() < 1e-9);
        }
        prop_assert!(large.len() >= small.len());
    }

    #[test]
    fn load_roundtrip_is_exact(
        spans in proptest::collection::vec(
            (0usize..4, 0usize..12, 0usize..12, 0.01f64..2.0), 1..20)
    ) {
        let mut load = LoadMatrix::new(4, 12);
        let mut applied = Vec::new();
        for (e, a, b, amt) in spans {
            let (start, end) = if a <= b { (a, b) } else { (b, a) };
            load.add(EdgeId(e as u32), start, end, amt);
            applied.push((e, start, end, amt));
        }
        // Peak ≥ mean on every edge; cost ≥ 0.
        for e in 0..4u32 {
            prop_assert!(load.peak(EdgeId(e)) + 1e-12 >= load.mean(EdgeId(e)));
        }
        // Removing everything restores zero.
        for (e, start, end, amt) in applied {
            load.remove(EdgeId(e as u32), start, end, amt);
        }
        for e in 0..4u32 {
            prop_assert!(load.peak(EdgeId(e)).abs() < 1e-9);
        }
    }

    #[test]
    fn ceil_units_brackets_load(load in 0.0f64..100.0) {
        let u = ceil_units(load) as f64;
        prop_assert!(u + 1e-9 >= load, "charge covers the load");
        prop_assert!(u < load + 1.0 + 1e-6, "never more than one spare unit");
    }

    #[test]
    fn utilization_stats_within_bounds(
        loads in proptest::collection::vec(0.0f64..5.0, 3),
        caps in proptest::collection::vec(1.0f64..10.0, 3),
    ) {
        let mut m = LoadMatrix::new(3, 4);
        for (e, &l) in loads.iter().enumerate() {
            m.add(EdgeId(e as u32), 0, 3, l);
        }
        let u = m.utilization(&caps);
        prop_assert!(u.min <= u.mean + 1e-12 && u.mean <= u.max + 1e-12);
        prop_assert_eq!(u.links, 3);
    }
}
