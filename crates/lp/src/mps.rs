//! Reading and writing problems in (free-form) MPS format.
//!
//! MPS is the lingua franca of LP/MILP solvers; supporting it lets
//! problems built here be cross-checked against external solvers and
//! vice versa. The dialect implemented is free-form MPS with the
//! universally supported sections:
//!
//! * `NAME`, `ROWS` (`N`/`L`/`G`/`E`), `COLUMNS` (incl. integrality
//!   `MARKER` lines), `RHS`, `RANGES`, `BOUNDS`
//!   (`UP LO FX FR MI PL BV UI LI`), `OBJSENSE`, `ENDATA`;
//! * `*` comment lines and blank lines.
//!
//! A `RANGES` entry on row `r` with value `R` turns the row into a ranged
//! constraint per the standard convention; since [`Problem`] rows carry a
//! single relation, the reader materializes the second side as an extra
//! row, which is semantically identical.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::error::SolveError;
use crate::model::{Problem, Relation, Sense, VarId};

/// A parse failure, with the 1-based line number where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MpsParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for MpsParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mps parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MpsParseError {}

impl From<MpsParseError> for SolveError {
    fn from(_: MpsParseError) -> Self {
        // Parse errors surface before solving; map to the generic
        // numerical bucket only when converted for convenience.
        SolveError::Singular
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Rows,
    Columns,
    Rhs,
    Ranges,
    Bounds,
    ObjSense,
}

/// Parses a free-form MPS document into a [`Problem`].
///
/// The objective row is the first `N` row; additional `N` rows are
/// ignored (as most solvers do). Variables default to `[0, ∞)` bounds.
///
/// # Errors
///
/// Returns [`MpsParseError`] on malformed input, unknown rows/sections,
/// or unparsable numbers.
///
/// # Examples
///
/// ```
/// let text = "\
/// NAME          demo
/// ROWS
///  N  COST
///  L  LIM1
/// COLUMNS
///     X1  COST  1.0  LIM1  2.0
///     X2  COST  3.0  LIM1  1.0
/// RHS
///     RHS  LIM1  10.0
/// BOUNDS
///  UP BND  X1  4.0
/// ENDATA
/// ";
/// let p = metis_lp::mps::parse(text)?;
/// assert_eq!(p.num_vars(), 2);
/// assert_eq!(p.num_constraints(), 1);
/// # Ok::<(), metis_lp::mps::MpsParseError>(())
/// ```
pub fn parse(text: &str) -> Result<Problem, MpsParseError> {
    let err = |line: usize, message: &str| MpsParseError {
        line,
        message: message.to_string(),
    };

    let mut sense = Sense::Minimize;
    // Row name → (relation, order). The objective row is special-cased.
    let mut obj_row: Option<String> = None;
    let mut row_rel: BTreeMap<String, Relation> = BTreeMap::new();
    let mut row_order: Vec<String> = Vec::new();
    // Column name → var id, with accumulated entries.
    let mut col_ids: BTreeMap<String, VarId> = BTreeMap::new();
    let mut col_order: Vec<String> = Vec::new();
    let mut obj_coef: BTreeMap<String, f64> = BTreeMap::new();
    let mut entries: BTreeMap<(String, String), f64> = BTreeMap::new(); // (row, col)
    let mut rhs: BTreeMap<String, f64> = BTreeMap::new();
    let mut ranges: BTreeMap<String, f64> = BTreeMap::new();
    let mut bounds: Vec<(String, String, Option<f64>, usize)> = Vec::new(); // (type, col, value)
    let mut integer_cols: Vec<String> = Vec::new();

    let mut section = Section::None;
    let mut in_int_marker = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        let starts_flush = !raw.starts_with(' ') && !raw.starts_with('\t');
        let fields: Vec<&str> = line.split_whitespace().collect();
        if starts_flush {
            // Section header.
            match fields[0].to_ascii_uppercase().as_str() {
                "NAME" => continue,
                "OBJSENSE" => {
                    section = Section::ObjSense;
                    // Inline form: OBJSENSE MAX
                    if let Some(word) = fields.get(1) {
                        sense = parse_objsense(word).ok_or_else(|| {
                            err(lineno, &format!("unknown objective sense {word}"))
                        })?;
                        section = Section::None;
                    }
                    continue;
                }
                "ROWS" => {
                    section = Section::Rows;
                    continue;
                }
                "COLUMNS" => {
                    section = Section::Columns;
                    continue;
                }
                "RHS" => {
                    section = Section::Rhs;
                    continue;
                }
                "RANGES" => {
                    section = Section::Ranges;
                    continue;
                }
                "BOUNDS" => {
                    section = Section::Bounds;
                    continue;
                }
                "ENDATA" => break,
                other => return Err(err(lineno, &format!("unknown section {other}"))),
            }
        }

        match section {
            Section::None => return Err(err(lineno, "data before any section")),
            Section::ObjSense => {
                sense = parse_objsense(fields[0]).ok_or_else(|| {
                    err(lineno, &format!("unknown objective sense {}", fields[0]))
                })?;
                section = Section::None;
            }
            Section::Rows => {
                if fields.len() != 2 {
                    return Err(err(lineno, "ROWS line needs `<type> <name>`"));
                }
                let name = fields[1].to_string();
                match fields[0].to_ascii_uppercase().as_str() {
                    "N" => {
                        if obj_row.is_none() {
                            obj_row = Some(name);
                        }
                    }
                    "L" => {
                        row_rel.insert(name.clone(), Relation::Le);
                        row_order.push(name);
                    }
                    "G" => {
                        row_rel.insert(name.clone(), Relation::Ge);
                        row_order.push(name);
                    }
                    "E" => {
                        row_rel.insert(name.clone(), Relation::Eq);
                        row_order.push(name);
                    }
                    other => return Err(err(lineno, &format!("unknown row type {other}"))),
                }
            }
            Section::Columns => {
                // MARKER lines toggle integrality.
                if fields.len() >= 3 && fields[1].eq_ignore_ascii_case("'MARKER'") {
                    match fields[2].to_ascii_uppercase().as_str() {
                        "'INTORG'" => in_int_marker = true,
                        "'INTEND'" => in_int_marker = false,
                        other => return Err(err(lineno, &format!("unknown marker {other}"))),
                    }
                    continue;
                }
                if fields.len() < 3 || fields.len().is_multiple_of(2) {
                    return Err(err(lineno, "COLUMNS line needs `<col> (<row> <val>)+`"));
                }
                let col = fields[0].to_string();
                if !col_ids.contains_key(&col) {
                    col_ids.insert(col.clone(), VarId(col_order.len() as u32));
                    col_order.push(col.clone());
                    if in_int_marker {
                        integer_cols.push(col.clone());
                    }
                }
                for pair in fields[1..].chunks(2) {
                    let row = pair[0].to_string();
                    let value: f64 = pair[1]
                        .parse()
                        .map_err(|_| err(lineno, &format!("bad number {}", pair[1])))?;
                    if Some(&row) == obj_row.as_ref() {
                        *obj_coef.entry(col.clone()).or_insert(0.0) += value;
                    } else if row_rel.contains_key(&row) {
                        *entries.entry((row, col.clone())).or_insert(0.0) += value;
                    } else {
                        return Err(err(lineno, &format!("unknown row {row}")));
                    }
                }
            }
            Section::Rhs => {
                if fields.len() < 3 || fields.len().is_multiple_of(2) {
                    return Err(err(lineno, "RHS line needs `<set> (<row> <val>)+`"));
                }
                for pair in fields[1..].chunks(2) {
                    let row = pair[0].to_string();
                    let value: f64 = pair[1]
                        .parse()
                        .map_err(|_| err(lineno, &format!("bad number {}", pair[1])))?;
                    if Some(&row) == obj_row.as_ref() {
                        // Objective constant; ignored (common convention).
                        continue;
                    }
                    if !row_rel.contains_key(&row) {
                        return Err(err(lineno, &format!("unknown row {row}")));
                    }
                    rhs.insert(row, value);
                }
            }
            Section::Ranges => {
                if fields.len() < 3 || fields.len().is_multiple_of(2) {
                    return Err(err(lineno, "RANGES line needs `<set> (<row> <val>)+`"));
                }
                for pair in fields[1..].chunks(2) {
                    let row = pair[0].to_string();
                    let value: f64 = pair[1]
                        .parse()
                        .map_err(|_| err(lineno, &format!("bad number {}", pair[1])))?;
                    if !row_rel.contains_key(&row) {
                        return Err(err(lineno, &format!("unknown row {row}")));
                    }
                    ranges.insert(row, value);
                }
            }
            Section::Bounds => {
                if fields.len() < 3 {
                    return Err(err(lineno, "BOUNDS line needs `<type> <set> <col> [val]`"));
                }
                let btype = fields[0].to_ascii_uppercase();
                let col = fields[2].to_string();
                let value = fields.get(3).map(|v| {
                    v.parse::<f64>()
                        .map_err(|_| err(lineno, &format!("bad number {v}")))
                });
                let value = match value {
                    Some(Ok(v)) => Some(v),
                    Some(Err(e)) => return Err(e),
                    None => None,
                };
                bounds.push((btype, col, value, lineno));
            }
        }
    }

    let obj_row = obj_row.ok_or_else(|| err(0, "no objective (N) row"))?;
    let _ = obj_row;

    // Assemble the Problem.
    let mut p = Problem::new(sense);
    for col in &col_order {
        let obj = obj_coef.get(col).copied().unwrap_or(0.0);
        p.add_var(obj, 0.0, f64::INFINITY);
    }
    for col in &integer_cols {
        p.set_integer(col_ids[col], true);
    }
    // Bounds, applied in file order.
    for (btype, col, value, lineno) in bounds {
        let id = *col_ids
            .get(&col)
            .ok_or_else(|| err(lineno, &format!("bound on unknown column {col}")))?;
        let (lo, up) = p.bounds(id);
        let need = |v: Option<f64>| v.ok_or_else(|| err(lineno, "bound type needs a value"));
        let (nlo, nup) = match btype.as_str() {
            "UP" => (lo, need(value)?),
            "LO" => (need(value)?, up),
            "FX" => {
                let v = need(value)?;
                (v, v)
            }
            "FR" => (f64::NEG_INFINITY, f64::INFINITY),
            "MI" => (f64::NEG_INFINITY, up),
            "PL" => (lo, f64::INFINITY),
            "BV" => {
                p.set_integer(id, true);
                (0.0, 1.0)
            }
            "UI" => {
                p.set_integer(id, true);
                (lo, need(value)?)
            }
            "LI" => {
                p.set_integer(id, true);
                (need(value)?, up)
            }
            other => return Err(err(lineno, &format!("unknown bound type {other}"))),
        };
        if nlo > nup {
            return Err(err(
                lineno,
                &format!("bound makes {col} empty: [{nlo}, {nup}]"),
            ));
        }
        p.set_bounds(id, nlo, nup);
    }

    for row in &row_order {
        let rel = row_rel[row];
        let b = rhs.get(row).copied().unwrap_or(0.0);
        let terms: Vec<(VarId, f64)> = col_order
            .iter()
            .filter_map(|col| {
                entries
                    .get(&(row.clone(), col.clone()))
                    .map(|&v| (col_ids[col], v))
            })
            .collect();
        p.add_constraint(terms.iter().copied(), rel, b);
        // RANGES: add the mirrored side.
        if let Some(&r) = ranges.get(row) {
            let (rel2, b2) = match rel {
                Relation::Le => (Relation::Ge, b - r.abs()),
                Relation::Ge => (Relation::Le, b + r.abs()),
                // E row: range sign picks the side per the MPS convention.
                Relation::Eq => {
                    if r >= 0.0 {
                        (Relation::Le, b + r)
                    } else {
                        (Relation::Ge, b + r)
                    }
                }
            };
            p.add_constraint(terms.iter().copied(), rel2, b2);
        }
    }

    Ok(p)
}

fn parse_objsense(word: &str) -> Option<Sense> {
    match word.to_ascii_uppercase().as_str() {
        "MAX" | "MAXIMIZE" => Some(Sense::Maximize),
        "MIN" | "MINIMIZE" => Some(Sense::Minimize),
        _ => None,
    }
}

/// Serializes a [`Problem`] as free-form MPS.
///
/// Variables are named `X0, X1, …` and rows `R0, R1, …`; the objective
/// row is `OBJ`. Round-trips through [`parse`] reproduce the problem
/// (modulo the generated names).
pub fn write(problem: &Problem) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "NAME          METIS_LP");
    if problem.sense() == Sense::Maximize {
        let _ = writeln!(out, "OBJSENSE\n    MAX");
    }
    let _ = writeln!(out, "ROWS");
    let _ = writeln!(out, " N  OBJ");
    for (i, rel) in problem.row_relations().iter().enumerate() {
        let t = match rel {
            Relation::Le => 'L',
            Relation::Ge => 'G',
            Relation::Eq => 'E',
        };
        let _ = writeln!(out, " {t}  R{i}");
    }
    let _ = writeln!(out, "COLUMNS");
    // Group entries per column.
    let by_col = problem.entries_by_column();
    let mut int_open = false;
    let mut marker = 0usize;
    for (j, col_entries) in by_col.iter().enumerate() {
        let id = problem.var(j);
        let is_int = problem.is_integer(id);
        if is_int != int_open {
            let word = if is_int { "'INTORG'" } else { "'INTEND'" };
            let _ = writeln!(out, "    MARKER{marker}  'MARKER'  {word}");
            marker += 1;
            int_open = is_int;
        }
        let obj = problem.objective_coeff(id);
        if obj != 0.0 {
            let _ = writeln!(out, "    X{j}  OBJ  {obj}");
        }
        for &(row, v) in col_entries {
            let _ = writeln!(out, "    X{j}  R{row}  {v}");
        }
        // Columns with no entries at all still need to exist: emit a
        // zero objective entry so parsers register them.
        if obj == 0.0 && col_entries.is_empty() {
            let _ = writeln!(out, "    X{j}  OBJ  0.0");
        }
    }
    if int_open {
        let _ = writeln!(out, "    MARKER{marker}  'MARKER'  'INTEND'");
    }
    let _ = writeln!(out, "RHS");
    for (i, &b) in problem.row_rhs().iter().enumerate() {
        if b != 0.0 {
            let _ = writeln!(out, "    RHS  R{i}  {b}");
        }
    }
    let _ = writeln!(out, "BOUNDS");
    for j in 0..problem.num_vars() {
        let id = problem.var(j);
        let (lo, up) = problem.bounds(id);
        match (lo == 0.0, up.is_infinite()) {
            (true, true) => {} // default bounds
            _ => {
                if lo == up {
                    let _ = writeln!(out, " FX BND  X{j}  {lo}");
                } else {
                    if lo.is_infinite() {
                        let _ = writeln!(out, " MI BND  X{j}");
                    } else if lo != 0.0 {
                        let _ = writeln!(out, " LO BND  X{j}  {lo}");
                    }
                    if up.is_finite() {
                        let _ = writeln!(out, " UP BND  X{j}  {up}");
                    }
                }
            }
        }
    }
    let _ = writeln!(out, "ENDATA");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
* a classic toy problem
NAME          demo
ROWS
 N  COST
 L  LIM1
 G  LIM2
 E  EQ1
COLUMNS
    X1  COST  1.0  LIM1  1.0
    X1  LIM2  1.0
    MARKER0  'MARKER'  'INTORG'
    X2  COST  2.0  LIM1  1.0
    X2  EQ1  -1.0
    MARKER1  'MARKER'  'INTEND'
    X3  COST  -1.0  EQ1  1.0
RHS
    RHS  LIM1  4.0  LIM2  1.0
BOUNDS
 UP BND  X1  4.0
 BV BND  X2
ENDATA
";

    #[test]
    fn parses_sections_and_types() {
        let p = parse(SAMPLE).unwrap();
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.num_constraints(), 3);
        assert_eq!(p.sense(), Sense::Minimize);
        assert!(p.is_integer(p.var(1)), "marker sets integrality");
        assert_eq!(p.bounds(p.var(0)), (0.0, 4.0));
        assert_eq!(p.bounds(p.var(1)), (0.0, 1.0));
        assert_eq!(p.bounds(p.var(2)), (0.0, f64::INFINITY));
    }

    #[test]
    fn parsed_problem_solves() {
        let p = parse(SAMPLE).unwrap();
        let s = p.solve().unwrap();
        assert!(p.max_violation(s.values()) < 1e-7);
    }

    #[test]
    fn objsense_max() {
        let text = "NAME x\nOBJSENSE\n    MAX\nROWS\n N  OBJ\n L  R0\nCOLUMNS\n    A  OBJ  1.0  R0  1.0\nRHS\n    RHS  R0  3.0\nENDATA\n";
        let p = parse(text).unwrap();
        assert_eq!(p.sense(), Sense::Maximize);
        let s = p.solve().unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ranges_make_two_sided_rows() {
        // L row with rhs 10 and range 4 means 6 ≤ a·x ≤ 10.
        let text = "NAME x\nROWS\n N  OBJ\n L  R0\nCOLUMNS\n    A  OBJ  1.0  R0  1.0\nRHS\n    RHS  R0  10.0\nRANGES\n    RNG  R0  4.0\nENDATA\n";
        let p = parse(text).unwrap();
        assert_eq!(p.num_constraints(), 2);
        let s = p.solve().unwrap(); // min A s.t. 6 ≤ A ≤ 10
        assert!((s.objective() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn error_reports_line() {
        let text = "NAME x\nROWS\n N  OBJ\nCOLUMNS\n    A  NOPE  1.0\nENDATA\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.to_string().contains("unknown row"));
    }

    #[test]
    fn rejects_unknown_section() {
        let e = parse("GARBAGE\n").unwrap_err();
        assert!(e.message.contains("unknown section"));
    }

    #[test]
    fn export_is_byte_deterministic() {
        // Column/row order must come from the document and the ordered
        // maps, never from hash iteration: two independent parses must
        // serialize byte-identically, and the serialized form must be a
        // fixed point of parse ∘ write.
        let a = write(&parse(SAMPLE).unwrap());
        let b = write(&parse(SAMPLE).unwrap());
        assert_eq!(a, b, "independent parses must export identically");
        let c = write(&parse(&a).unwrap());
        assert_eq!(a, c, "write ∘ parse must be a fixed point");
    }

    #[test]
    fn roundtrip_preserves_optimum() {
        use crate::model::{Problem, Relation, Sense};
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0, 0.0, f64::INFINITY);
        let y = p.add_int_var(5.0, 0.0, 7.0);
        p.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint([(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);

        let text = write(&p);
        let q = parse(&text).unwrap();
        assert_eq!(q.num_vars(), p.num_vars());
        assert_eq!(q.num_constraints(), p.num_constraints());
        assert_eq!(q.sense(), Sense::Maximize);
        assert!(q.is_integer(q.var(1)));

        let sp = p.solve().unwrap();
        let sq = q.solve().unwrap();
        assert!((sp.objective() - sq.objective()).abs() < 1e-9);
    }

    #[test]
    fn roundtrip_negative_and_free_bounds() {
        use crate::model::{Problem, Relation, Sense};
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, f64::NEG_INFINITY, f64::INFINITY);
        let y = p.add_var(1.0, -2.5, 2.5);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, -4.0);
        let text = write(&p);
        let q = parse(&text).unwrap();
        assert_eq!(q.bounds(q.var(0)), (f64::NEG_INFINITY, f64::INFINITY));
        assert_eq!(q.bounds(q.var(1)), (-2.5, 2.5));
        let (sp, sq) = (p.solve().unwrap(), q.solve().unwrap());
        assert!((sp.objective() - sq.objective()).abs() < 1e-9);
    }
}
