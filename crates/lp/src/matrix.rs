//! Compressed sparse column (CSC) matrices.
//!
//! The simplex solver stores the constraint matrix column-major because
//! every hot operation (pricing a column, computing the pivot direction
//! `B⁻¹ aⱼ`) walks one column's nonzeros.

use std::fmt;

/// An immutable sparse matrix in compressed-sparse-column form.
///
/// Built through [`CscBuilder`]; rows within a column are sorted and
/// duplicate entries are coalesced by summation.
#[derive(Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Total number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The nonzeros of column `j` as parallel `(row, value)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.ncols()`.
    pub fn col(&self, j: usize) -> ColView<'_> {
        let lo = self.col_ptr[j];
        // INDEX: col_ptr has ncols()+1 entries (CSR invariant), so j+1 is in range for j < ncols().
        let hi = self.col_ptr[j + 1];
        ColView {
            rows: &self.row_idx[lo..hi],
            values: &self.values[lo..hi],
        }
    }

    /// Computes `y += alpha * A[:, j]` into a dense vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or `y.len() != self.nrows()`.
    pub fn axpy_col(&self, j: usize, alpha: f64, y: &mut [f64]) {
        assert_eq!(y.len(), self.nrows, "dense vector length mismatch");
        let c = self.col(j);
        for (&r, &v) in c.rows.iter().zip(c.values) {
            y[r as usize] += alpha * v;
        }
    }

    /// Sparse dot product of column `j` with a dense vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or `y.len() != self.nrows()`.
    pub fn dot_col(&self, j: usize, y: &[f64]) -> f64 {
        assert_eq!(y.len(), self.nrows, "dense vector length mismatch");
        let c = self.col(j);
        let mut acc = 0.0;
        for (&r, &v) in c.rows.iter().zip(c.values) {
            acc += v * y[r as usize];
        }
        acc
    }
}

impl fmt::Debug for CscMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CscMatrix")
            .field("nrows", &self.nrows)
            .field("ncols", &self.ncols)
            .field("nnz", &self.nnz())
            .finish()
    }
}

/// A borrowed view of one column's nonzeros.
#[derive(Clone, Copy, Debug)]
pub struct ColView<'a> {
    /// Row indices, ascending.
    pub rows: &'a [u32],
    /// Values parallel to `rows`.
    pub values: &'a [f64],
}

impl<'a> ColView<'a> {
    /// Iterates `(row, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + 'a {
        self.rows
            .iter()
            .zip(self.values)
            .map(|(&r, &v)| (r as usize, v))
    }
}

/// One triangular factor of a sparse LU decomposition, in
/// elimination-position space.
///
/// Only the strict off-diagonal part is stored, grouped by elimination
/// step `k`: group `k` holds `(pos, val)` entries with `pos > k`. For
/// the unit lower factor `L` the groups are its *columns*; for the
/// upper factor `U` (whose diagonal lives in a separate vector) the
/// groups are its *rows*. Both orientations support the two
/// substitutions the simplex FTRAN/BTRAN pair needs:
///
/// * [`SparseTriangular::solve_forward`] — the factor (or its
///   transpose) is lower triangular and the groups are its columns:
///   scatter each resolved component into the positions after it.
/// * [`SparseTriangular::solve_backward`] — the factor (or its
///   transpose) is upper triangular and the groups are its rows:
///   gather each row's sparse dot product, last position first.
///
/// Work is proportional to the stored nonzeros plus one pass over the
/// dense right-hand side — never `O(m²)`.
#[derive(Clone, Debug, Default)]
pub struct SparseTriangular {
    /// Group boundaries, length `m + 1`.
    ptr: Vec<usize>,
    /// Elimination positions, parallel to `val`.
    idx: Vec<u32>,
    /// Values, parallel to `idx`.
    val: Vec<f64>,
}

impl SparseTriangular {
    /// Builds a factor from per-step groups of `(position, value)`
    /// entries. Every entry of group `k` must satisfy `position > k`;
    /// groups are stored in the order given (callers sort by position
    /// for reproducible floating-point summation order).
    pub fn from_groups(groups: Vec<Vec<(u32, f64)>>) -> Self {
        let mut ptr = Vec::with_capacity(groups.len() + 1);
        ptr.push(0usize);
        let total: usize = groups.iter().map(Vec::len).sum();
        let mut idx = Vec::with_capacity(total);
        let mut val = Vec::with_capacity(total);
        for group in &groups {
            for &(p, v) in group {
                idx.push(p);
                val.push(v);
            }
            ptr.push(idx.len());
        }
        SparseTriangular { ptr, idx, val }
    }

    /// Number of stored off-diagonal nonzeros.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Iterates group `k`'s `(position, value)` entries in stored order.
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ dim()`.
    pub fn group(&self, k: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        // INDEX: ptr has dim()+1 entries (CSR invariant), so k+1 is in range for k < dim().
        self.idx[self.ptr[k]..self.ptr[k + 1]]
            .iter()
            .zip(&self.val[self.ptr[k]..self.ptr[k + 1]])
            .map(|(&p, &v)| (p, v))
    }

    /// Number of elimination steps (the factor is `m × m`).
    pub fn dim(&self) -> usize {
        self.ptr.len() - 1
    }

    /// In-place forward substitution: solves `T x = b` where `T` is
    /// lower triangular, `b` arrives in `x`, the groups are `T`'s
    /// columns, and the diagonal is `diag` (unit when `None`).
    ///
    /// # Panics
    ///
    /// Panics if `x` (or a supplied `diag`) is shorter than
    /// [`SparseTriangular::dim`].
    pub fn solve_forward(&self, diag: Option<&[f64]>, x: &mut [f64]) {
        let m = self.dim();
        for k in 0..m {
            if let Some(d) = diag {
                x[k] /= d[k];
            }
            let xk = x[k];
            if xk != 0.0 {
                // INDEX: ptr has dim()+1 entries (CSR invariant), so k+1 is in range for k < dim().
                for (&p, &v) in self.idx[self.ptr[k]..self.ptr[k + 1]]
                    .iter()
                    .zip(&self.val[self.ptr[k]..self.ptr[k + 1]])
                {
                    x[p as usize] -= v * xk;
                }
            }
        }
    }

    /// In-place backward substitution: solves `T x = b` where `T` is
    /// upper triangular, `b` arrives in `x`, the groups are `T`'s rows,
    /// and the diagonal is `diag` (unit when `None`).
    ///
    /// # Panics
    ///
    /// Panics if `x` (or a supplied `diag`) is shorter than
    /// [`SparseTriangular::dim`].
    pub fn solve_backward(&self, diag: Option<&[f64]>, x: &mut [f64]) {
        let m = self.dim();
        for k in (0..m).rev() {
            let mut acc = x[k];
            // INDEX: ptr has dim()+1 entries (CSR invariant), so k+1 is in range for k < dim().
            for (&p, &v) in self.idx[self.ptr[k]..self.ptr[k + 1]]
                .iter()
                .zip(&self.val[self.ptr[k]..self.ptr[k + 1]])
            {
                acc -= v * x[p as usize];
            }
            x[k] = match diag {
                Some(d) => acc / d[k],
                None => acc,
            };
        }
    }
}

/// Incremental builder for a [`CscMatrix`], filled column by column.
#[derive(Clone, Debug, Default)]
pub struct CscBuilder {
    nrows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
    /// Scratch for sorting/coalescing the column being built.
    current: Vec<(u32, f64)>,
    open: bool,
}

impl CscBuilder {
    /// Creates a builder for a matrix with `nrows` rows and no columns yet.
    pub fn new(nrows: usize) -> Self {
        CscBuilder {
            nrows,
            col_ptr: vec![0],
            row_idx: Vec::new(),
            values: Vec::new(),
            current: Vec::new(),
            open: false,
        }
    }

    /// Begins a new column. Must be matched by [`CscBuilder::finish_col`].
    ///
    /// # Panics
    ///
    /// Panics if a column is already open.
    pub fn start_col(&mut self) {
        assert!(!self.open, "previous column not finished");
        self.open = true;
        self.current.clear();
    }

    /// Adds an entry to the open column. Zero values are dropped.
    ///
    /// # Panics
    ///
    /// Panics if no column is open or `row` is out of range.
    pub fn push(&mut self, row: usize, value: f64) {
        assert!(self.open, "no open column");
        assert!(row < self.nrows, "row {row} out of range");
        if value != 0.0 {
            self.current.push((row as u32, value));
        }
    }

    /// Finishes the open column, sorting and coalescing duplicates.
    pub fn finish_col(&mut self) {
        assert!(self.open, "no open column");
        self.open = false;
        self.current.sort_unstable_by_key(|&(r, _)| r);
        let mut i = 0;
        while i < self.current.len() {
            let (r, mut v) = self.current[i];
            let mut k = i + 1;
            while k < self.current.len() && self.current[k].0 == r {
                v += self.current[k].1;
                k += 1;
            }
            if v != 0.0 {
                self.row_idx.push(r);
                self.values.push(v);
            }
            i = k;
        }
        self.col_ptr.push(self.row_idx.len());
    }

    /// Convenience: appends a whole column from `(row, value)` pairs.
    pub fn add_col<I: IntoIterator<Item = (usize, f64)>>(&mut self, entries: I) {
        self.start_col();
        for (r, v) in entries {
            self.push(r, v);
        }
        self.finish_col();
    }

    /// Number of completed columns so far.
    pub fn ncols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Finalizes the matrix.
    ///
    /// # Panics
    ///
    /// Panics if a column is still open.
    pub fn build(self) -> CscMatrix {
        assert!(!self.open, "column still open");
        CscMatrix {
            nrows: self.nrows,
            ncols: self.col_ptr.len() - 1,
            col_ptr: self.col_ptr,
            row_idx: self.row_idx,
            values: self.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        let mut b = CscBuilder::new(2);
        b.add_col([(0, 1.0)]);
        b.add_col([(1, 3.0)]);
        b.add_col([(0, 2.0)]);
        b.build()
    }

    #[test]
    fn dims_and_nnz() {
        let m = sample();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn col_view() {
        let m = sample();
        let c = m.col(2);
        assert_eq!(c.rows, &[0]);
        assert_eq!(c.values, &[2.0]);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![(0, 2.0)]);
    }

    #[test]
    fn duplicates_coalesce() {
        let mut b = CscBuilder::new(3);
        b.add_col([(2, 1.0), (0, 4.0), (2, 2.5)]);
        let m = b.build();
        let c = m.col(0);
        assert_eq!(c.rows, &[0, 2]);
        assert_eq!(c.values, &[4.0, 3.5]);
    }

    #[test]
    fn zeros_dropped() {
        let mut b = CscBuilder::new(2);
        b.add_col([(0, 0.0), (1, 1.0)]);
        b.add_col([(0, 2.0), (0, -2.0)]);
        let m = b.build();
        assert_eq!(m.col(0).rows, &[1]);
        assert_eq!(m.nnz(), 1, "exact cancellation is removed");
    }

    #[test]
    fn axpy_and_dot() {
        let m = sample();
        let mut y = vec![1.0, 1.0];
        m.axpy_col(1, 2.0, &mut y);
        assert_eq!(y, vec![1.0, 7.0]);
        assert_eq!(m.dot_col(0, &y), 1.0);
        assert_eq!(m.dot_col(1, &y), 21.0);
    }

    #[test]
    fn empty_columns() {
        let mut b = CscBuilder::new(2);
        b.add_col([]);
        b.add_col([(1, 5.0)]);
        let m = b.build();
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.col(0).rows.len(), 0);
    }

    #[test]
    #[should_panic(expected = "row 5 out of range")]
    fn out_of_range_row_panics() {
        let mut b = CscBuilder::new(2);
        b.start_col();
        b.push(5, 1.0);
    }
}
