//! Bounded-variable revised simplex over a factorized sparse basis.
//!
//! The solver works on an internal standard form
//!
//! ```text
//! min c·x   s.t.  A x + s = b,   l ≤ (x, s, a) ≤ u
//! ```
//!
//! with one slack per row (`≤` rows get `s ∈ [0, ∞)`, `≥` rows
//! `s ∈ (−∞, 0]`, `=` rows `s ∈ [0, 0]`) and, during phase 1, one artificial
//! variable per initially-infeasible row. Maximization is handled by
//! negating the objective.
//!
//! Design choices sized for this workspace's LPs (up to ≈10³–10⁴ rows and
//! columns, very sparse):
//!
//! * The basis is held as a **sparse LU factorization** with Markowitz
//!   fill-in control ([`crate::factor`]), so FTRAN (`B⁻¹aⱼ`) and BTRAN
//!   (`cᵦᵀB⁻¹`) cost time proportional to the factor nonzeros rather
//!   than `O(m²)`. Between the periodic refactorizations
//!   ([`SolveOptions::refresh_every`]) each pivot either appends a
//!   **product-form eta** or, under
//!   [`FactorUpdate::ForrestTomlin`], rewrites one column of `U` in
//!   place — the latter keeps update storage proportional to the
//!   eliminated rows' nonzeros, so the refresh cadence is a numerical
//!   cadence, not a memory bound. The historical dense explicit `B⁻¹`
//!   (elementary row updates per pivot, Gauss-Jordan refresh) remains
//!   available behind [`SolveOptions::basis`]`=
//!   `[`BasisBackend::Dense`] for A/B validation of results and
//!   performance.
//! * Pricing ([`Pricing`]) is Dantzig (most violating reduced cost) on
//!   small problems — full sweeps or rotating candidate blocks — and
//!   **devex reference-weight pricing** by default on large ones, which
//!   approximates steepest edge and typically cuts the pivot count on
//!   the degenerate LPs the SPM pipeline produces. An automatic switch
//!   to Bland's rule after a run of degenerate pivots guarantees
//!   termination. Block rotation and devex weights are index-ordered
//!   solver state, so results stay deterministic.
//! * The ratio test is the textbook smallest-ratio rule or, under
//!   [`RatioTest::Harris`], the Harris two-pass variant that relaxes
//!   bounds by the feasibility tolerance and then picks the largest
//!   admissible pivot, trading microscopic bound shifts for far better
//!   numerical behavior on degenerate bases.

use crate::error::SolveError;
use crate::factor::{EtaFile, FtFactors, LuFactors};
use crate::matrix::{CscBuilder, CscMatrix};
use crate::model::{Problem, Relation, Sense};
use crate::solution::{LpTrace, Solution, SolveStats, TracePricing, TraceRecord};

/// How the simplex represents (the inverse of) the basis matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BasisBackend {
    /// Sparse LU factorization with Markowitz ordering and product-form
    /// eta updates between refactorizations: pivots cost time
    /// proportional to the factor nonzeros. The default.
    #[default]
    SparseLu,
    /// Dense explicit `m×m` inverse, updated by elementary row
    /// operations (`O(m²)` per pivot) and recomputed by Gauss-Jordan
    /// (`O(m³)`). Kept for A/B validation against the sparse backend.
    Dense,
}

/// Entering-variable pricing strategy (primal simplex).
///
/// Every strategy declares optimality only after the full column set has
/// been examined against the current duals, so they all return the same
/// optima — just with different pivot sequences. Block rotation starts
/// at block 0 and advances deterministically; devex weights are plain
/// solver state updated in index order — results stay deterministic
/// under every variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Pricing {
    /// Dantzig full sweeps on small problems, switching to [`Pricing::Devex`]
    /// once the column count reaches an internal threshold. The default.
    #[default]
    Auto,
    /// Dantzig: scan every nonbasic column on every iteration, most
    /// violating reduced cost enters.
    Full,
    /// Dantzig over rotating candidate blocks of the given size (`0`
    /// picks `max(256, ⌈√n⌉)`); the scan falls back to the remaining
    /// blocks — a full sweep — before declaring optimality.
    Partial(usize),
    /// Devex (Forrest–Goldfarb) pricing: each column carries a reference
    /// weight `γⱼ` approximating the squared steepest-edge norm, the
    /// column maximizing `dⱼ²/γⱼ` enters, and the weights are updated
    /// from the pivot row at `O(nnz)` per pivot. Weights reset to 1
    /// (counted in [`crate::SolveStats::devex_resets`]) when they grow
    /// past an internal guard.
    Devex,
}

/// Column-count threshold at which [`Pricing::Auto`] switches from
/// Dantzig full sweeps to devex. Below this, a plain sweep is cheap
/// enough that the per-pivot weight maintenance only adds overhead.
const AUTO_DEVEX_MIN_COLS: usize = 3000;

/// Devex weights past this guard trigger a reference-framework reset:
/// the approximation error compounds multiplicatively per pivot, so
/// runaway weights mean the steepest-edge estimate has degraded.
const DEVEX_RESET_THRESHOLD: f64 = 1e8;

/// Primal ratio-test rule; see [`SolveOptions::ratio`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RatioTest {
    /// Textbook smallest-ratio rule: the first basic variable to hit a
    /// bound blocks, ties broken by lowest row index. The default.
    #[default]
    Textbook,
    /// Harris two-pass rule: pass one computes the largest step
    /// admissible with bounds relaxed by the feasibility tolerance, pass
    /// two picks the largest-magnitude pivot among rows whose exact
    /// ratio fits under it. Degenerate steps clamp at zero and count in
    /// [`crate::SolveStats::harris_expansions`].
    Harris,
}

/// How pivots update the sparse basis factorization between periodic
/// refactorizations; see [`SolveOptions::factor_update`]. Ignored by
/// [`BasisBackend::Dense`], which updates `B⁻¹` in place.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FactorUpdate {
    /// Product-form eta file: each pivot appends its (dense-ish) FTRAN
    /// direction, growing by up to `m` nonzeros per pivot until the next
    /// refresh. The default.
    #[default]
    ProductForm,
    /// Forrest–Tomlin: rewrite one column of `U` in place per pivot,
    /// storing only the sparse row eta of the displaced row's
    /// elimination ([`crate::SolveStats::ft_spikes`] counts them).
    ForrestTomlin,
}

/// Default partial-pricing block size for `n` columns: `max(256, ⌈√n⌉)`.
/// (IEEE-754 `sqrt` is correctly rounded, so this is deterministic.)
fn auto_block(n: usize) -> usize {
    let r = (n as f64).sqrt().ceil() as usize;
    r.max(256)
}

/// Tuning knobs for the simplex solver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveOptions {
    /// Feasibility / optimality tolerance.
    pub tol: f64,
    /// Smallest pivot magnitude accepted in the ratio test.
    pub pivot_tol: f64,
    /// Hard cap on pivots across both phases; `0` means automatic
    /// (`1000 + 50·(m + n)`).
    pub max_iterations: usize,
    /// Refactorization cadence: rebuild the basis representation from
    /// scratch every this many pivots. For [`BasisBackend::SparseLu`]
    /// this also bounds the eta-file length; for
    /// [`BasisBackend::Dense`] it bounds drift of the explicit inverse.
    pub refresh_every: usize,
    /// Number of consecutive degenerate pivots before switching to
    /// Bland's rule.
    pub bland_after: usize,
    /// Basis representation; see [`BasisBackend`]. Both backends accept
    /// and produce the same warm-start [`Basis`] snapshots.
    pub basis: BasisBackend,
    /// Entering-variable pricing strategy; see [`Pricing`].
    pub pricing: Pricing,
    /// Primal ratio-test rule; see [`RatioTest`].
    pub ratio: RatioTest,
    /// Pivot update strategy for the sparse factorization; see
    /// [`FactorUpdate`].
    pub factor_update: FactorUpdate,
    /// Equilibrate the problem (geometric-mean row/column scaling,
    /// powers of two) before solving and unscale the solution after;
    /// see [`crate::equilibrate`]. Off by default: scaling
    /// changes pivot sequences, and the workspace's generated LPs are
    /// already well-scaled.
    pub scale: bool,
    /// Independently certify every returned solution via
    /// [`crate::verify`] (recomputed residuals, bounds, objective) and
    /// fail the solve with [`SolveError::CertificateRejected`] on
    /// disagreement. Always on under `debug_assertions`; this flag forces
    /// it in release builds (`MetisConfig::audit` sets it).
    pub verify: bool,
    /// Record a per-iteration trace (entering/leaving column, objective,
    /// pivot magnitude, pricing rule) into a bounded ring returned via
    /// [`Solution::trace`]. Off by default: each traced step costs an
    /// `O(m + n)` objective evaluation. Tracing is read-only — it never
    /// changes the pivot sequence, so a traced solve returns exactly
    /// the solution an untraced one does.
    pub trace: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tol: 1e-7,
            pivot_tol: 1e-9,
            max_iterations: 0,
            refresh_every: 300,
            bland_after: 200,
            basis: BasisBackend::SparseLu,
            pricing: Pricing::Auto,
            ratio: RatioTest::Textbook,
            factor_update: FactorUpdate::ProductForm,
            scale: false,
            verify: false,
            trace: false,
        }
    }
}

/// A snapshot of an optimal basis, reusable to warm-start the solve of a
/// *related* problem (same rows and columns, different bounds) — the
/// branch-and-bound pattern. Opaque; obtain one from
/// [`Problem::solve_with_basis`].
#[derive(Clone, Debug)]
pub struct Basis {
    /// Status of every structural variable and slack (artificials are
    /// never snapshotted).
    state: Vec<VarState>,
    n_struct: usize,
}

impl Problem {
    /// Solves the linear relaxation of this problem (integrality markers are
    /// ignored) with default options.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Infeasible`], [`SolveError::Unbounded`], or a
    /// numerical/limit error.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with(&SolveOptions::default())
    }

    /// Solves the linear relaxation with explicit options.
    ///
    /// # Errors
    ///
    /// See [`Problem::solve`].
    pub fn solve_with(&self, options: &SolveOptions) -> Result<Solution, SolveError> {
        if options.scale {
            // Solve the equilibrated problem, unscale, and certify the
            // *unscaled* point against the *original* problem — the
            // scaled solve's own certificate says nothing about the
            // restoration step. `scale: false` on the inner options
            // prevents recursion.
            let (scaled, scaling) = crate::presolve::equilibrate(self);
            let inner = SolveOptions {
                scale: false,
                verify: false,
                ..*options
            };
            let solution = scaling.restore(&scaled.solve_with(&inner)?);
            self.certify_if_requested(options, &solution)?;
            return Ok(solution);
        }
        let mut s = Simplex::new(self, options);
        let solution = s.run()?;
        self.certify_if_requested(options, &solution)?;
        Ok(solution)
    }

    /// Solves the relaxation, optionally warm-starting from a [`Basis`]
    /// snapshotted on a related problem (identical rows/columns; bounds
    /// and costs may differ). Returns the solution together with the
    /// final basis for further chaining.
    ///
    /// When the supplied basis is dual-feasible for this problem — the
    /// case after tightening a variable bound, as branch-and-bound does —
    /// reoptimization runs the **dual simplex** and typically needs a
    /// handful of pivots. Otherwise the solver falls back to a cold
    /// start; the result is identical either way.
    ///
    /// # Errors
    ///
    /// See [`Problem::solve`].
    pub fn solve_with_basis(
        &self,
        options: &SolveOptions,
        warm: Option<&Basis>,
    ) -> Result<(Solution, Basis), SolveError> {
        if options.scale {
            // Basis snapshots carry variable *statuses*, not values, and
            // column scales are positive, so a basis for the original
            // problem is valid verbatim for the equilibrated one (and
            // vice versa for the returned snapshot).
            let (scaled, scaling) = crate::presolve::equilibrate(self);
            let inner = SolveOptions {
                scale: false,
                verify: false,
                ..*options
            };
            let (sol, basis) = scaled.solve_with_basis(&inner, warm)?;
            let solution = scaling.restore(&sol);
            self.certify_if_requested(options, &solution)?;
            return Ok((solution, basis));
        }
        if let Some(basis) = warm {
            let mut s = Simplex::new(self, options);
            match s.run_from_basis(basis) {
                Ok(done) => {
                    self.certify_if_requested(options, &done.0)?;
                    return Ok(done);
                }
                Err(SolveError::Infeasible) => return Err(SolveError::Infeasible),
                Err(SolveError::Unbounded) => return Err(SolveError::Unbounded),
                Err(_) => { /* numerically unusable start: cold-start below */ }
            }
        }
        let mut s = Simplex::new(self, options);
        let solution = s.run()?;
        self.certify_if_requested(options, &solution)?;
        let basis = s.snapshot();
        Ok((solution, basis))
    }

    /// Runs [`crate::verify`] on a freshly produced solution when
    /// [`SolveOptions::verify`] is set or in debug builds. The
    /// certificate tolerance is one order looser than the solver's own,
    /// so honest accumulated rounding never trips it.
    fn certify_if_requested(
        &self,
        options: &SolveOptions,
        solution: &Solution,
    ) -> Result<(), SolveError> {
        if options.verify || cfg!(debug_assertions) {
            crate::verify::verify(self, solution, options.tol * 10.0)?;
        }
        Ok(())
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VarState {
    Basic(u32),
    AtLower,
    AtUpper,
    /// Nonbasic free variable, held at value 0.
    FreeZero,
}

struct Simplex {
    /// Full standard-form matrix: structural | slacks | artificials.
    a: CscMatrix,
    /// Objective over all standard-form columns (minimization).
    cost: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    rhs: Vec<f64>,
    n_struct: usize,
    n_slack: usize,
    maximize: bool,

    state: Vec<VarState>,
    basis: Vec<u32>,
    /// Basis representation: dense explicit inverse or sparse LU + etas.
    repr: BasisRepr,
    /// Values of basic variables, per row.
    xb: Vec<f64>,

    opts: SolveOptions,
    iterations: usize,
    max_iterations: usize,
    degenerate_streak: usize,
    pivots_since_refresh: usize,
    /// Partial-pricing block size; `0` means full sweeps.
    price_block: usize,
    /// Block the last entering column came from; rotation resumes here.
    price_cursor: usize,
    /// Whether devex pricing is active (overrides `price_block`).
    devex: bool,
    /// Devex reference weights `γⱼ`, one per standard-form column.
    devex_w: Vec<f64>,

    // Work counters reported through `Solution::stats`.
    phase1_iterations: usize,
    dual_iterations: usize,
    bound_flips: usize,
    refreshes: usize,
    warm_started: bool,
    eta_updates: usize,
    lu_l_nnz: usize,
    lu_u_nnz: usize,
    pricing_block_scans: usize,
    devex_resets: usize,
    ft_spikes: usize,
    harris_expansions: usize,

    /// Per-iteration ring buffer, filled only when `opts.trace` is set.
    /// `trace[trace_start..]` then `trace[..trace_start]` is the
    /// chronological order once the ring has wrapped.
    trace: Vec<TraceRecord>,
    trace_start: usize,
    trace_dropped: u64,

    // Scratch buffers reused across iterations.
    y: Vec<f64>,
    w: Vec<f64>,
    /// Row-space scratch (FTRAN right-hand sides, BTRAN outputs).
    rowbuf: Vec<f64>,
    /// Permuted-space scratch handed to [`LuFactors`] solves.
    lubuf: Vec<f64>,
}

/// Runtime basis representation behind [`BasisBackend`].
// One representation lives per solve; the size skew between variants
// is irrelevant next to the O(m²)/O(nnz) buffers each one owns.
#[allow(clippy::large_enum_variant)]
enum BasisRepr {
    /// Dense row-major `B⁻¹`, `m × m`.
    Dense { binv: Vec<f64> },
    /// Sparse LU factors of `B` plus the eta file of pivots applied
    /// since the last refactorization.
    Sparse { lu: LuFactors, etas: EtaFile },
    /// Sparse LU factors updated in place per pivot (Forrest–Tomlin).
    SparseFt { ft: FtFactors },
}

/// Outcome of one pricing step.
enum PriceStep {
    Optimal,
    Enter { col: usize, dir: f64 },
}

/// Outcome of one ratio test.
enum Ratio {
    Unbounded,
    BoundFlip {
        step: f64,
    },
    Pivot {
        row: usize,
        step: f64,
        to_upper: bool,
    },
}

impl Simplex {
    fn new(problem: &Problem, opts: &SolveOptions) -> Self {
        let m = problem.num_constraints();
        let n = problem.num_vars();
        let maximize = problem.sense() == Sense::Maximize;

        let structural = problem.to_csc();
        let mut builder = CscBuilder::new(m);
        // Re-add structural columns (CscBuilder has no concat; rebuild).
        for j in 0..n {
            builder.add_col(structural.col(j).iter());
        }
        let mut cost: Vec<f64> = problem
            .vars
            .iter()
            .map(|v| if maximize { -v.obj } else { v.obj })
            .collect();
        let mut lower: Vec<f64> = problem.vars.iter().map(|v| v.lower).collect();
        let mut upper: Vec<f64> = problem.vars.iter().map(|v| v.upper).collect();

        // Slacks: a·x + s = b.
        for (i, row) in problem.rows.iter().enumerate() {
            builder.add_col([(i, 1.0)]);
            cost.push(0.0);
            match row.relation {
                Relation::Le => {
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                }
                Relation::Ge => {
                    lower.push(f64::NEG_INFINITY);
                    upper.push(0.0);
                }
                Relation::Eq => {
                    lower.push(0.0);
                    upper.push(0.0);
                }
            }
        }
        let rhs: Vec<f64> = problem.rows.iter().map(|r| r.rhs).collect();

        let max_iterations = if opts.max_iterations == 0 {
            1000 + 50 * (m + n)
        } else {
            opts.max_iterations
        };

        let repr = match (opts.basis, opts.factor_update) {
            (BasisBackend::Dense, _) => BasisRepr::Dense { binv: Vec::new() },
            (BasisBackend::SparseLu, FactorUpdate::ProductForm) => BasisRepr::Sparse {
                lu: LuFactors::identity(m),
                etas: EtaFile::default(),
            },
            (BasisBackend::SparseLu, FactorUpdate::ForrestTomlin) => BasisRepr::SparseFt {
                ft: FtFactors::identity(m),
            },
        };
        // Resolve the pricing strategy against the column count
        // (structural + slack; phase-1 artificials are few and ride in
        // the last block).
        let ncols = n + m;
        let (price_block, devex) = match opts.pricing {
            Pricing::Full => (0, false),
            Pricing::Devex => (0, true),
            Pricing::Partial(0) => (auto_block(ncols), false),
            Pricing::Partial(b) => (b, false),
            Pricing::Auto if ncols >= AUTO_DEVEX_MIN_COLS => (0, true),
            Pricing::Auto => (0, false),
        };

        Simplex {
            a: builder.build(),
            cost,
            lower,
            upper,
            rhs,
            n_struct: n,
            n_slack: m,
            maximize,
            state: Vec::new(),
            basis: Vec::new(),
            repr,
            xb: Vec::new(),
            opts: *opts,
            iterations: 0,
            max_iterations,
            degenerate_streak: 0,
            pivots_since_refresh: 0,
            price_block,
            price_cursor: 0,
            devex,
            devex_w: Vec::new(),
            phase1_iterations: 0,
            dual_iterations: 0,
            bound_flips: 0,
            refreshes: 0,
            warm_started: false,
            eta_updates: 0,
            lu_l_nnz: 0,
            lu_u_nnz: 0,
            pricing_block_scans: 0,
            devex_resets: 0,
            ft_spikes: 0,
            harris_expansions: 0,
            trace: Vec::new(),
            trace_start: 0,
            trace_dropped: 0,
            y: vec![0.0; m],
            w: vec![0.0; m],
            rowbuf: vec![0.0; m],
            lubuf: vec![0.0; m],
        }
    }

    fn m(&self) -> usize {
        self.rhs.len()
    }

    /// Resting value of a nonbasic variable in a given state.
    fn nonbasic_value(&self, j: usize, st: VarState) -> f64 {
        match st {
            VarState::AtLower => self.lower[j],
            VarState::AtUpper => self.upper[j],
            VarState::FreeZero => 0.0,
            // metis-lint: allow(PANIC-01): callers filter to nonbasic states; enum invariant
            VarState::Basic(_) => unreachable!("basic variable has no resting value"),
        }
    }

    /// Initial nonbasic state: prefer a finite bound, else free at zero.
    fn initial_state(&self, j: usize) -> VarState {
        if self.lower[j].is_finite() {
            VarState::AtLower
        } else if self.upper[j].is_finite() {
            VarState::AtUpper
        } else {
            VarState::FreeZero
        }
    }

    fn run(&mut self) -> Result<Solution, SolveError> {
        let m = self.m();
        let n_total = self.n_struct + self.n_slack;

        // --- Initial point: structural vars at a bound, slacks basic. ---
        self.state = (0..n_total)
            .map(|j| {
                if j < self.n_struct {
                    self.initial_state(j)
                } else {
                    VarState::Basic((j - self.n_struct) as u32)
                }
            })
            .collect();
        self.basis = (0..m).map(|i| (self.n_struct + i) as u32).collect();
        // B = I for the slack basis.
        if let BasisRepr::Dense { binv } = &mut self.repr {
            *binv = vec![0.0; m * m];
            for i in 0..m {
                binv[i * m + i] = 1.0;
            }
        }

        // Row residuals with all structural vars at their resting values.
        let mut resid = self.rhs.clone();
        for j in 0..self.n_struct {
            let v = self.nonbasic_value(j, self.state[j]);
            if v != 0.0 {
                self.a.axpy_col(j, -v, &mut resid);
            }
        }

        // --- Phase 1: add artificials for rows whose slack can't absorb
        // the residual. ---
        let mut need_phase1 = false;
        let mut art_builder = CscBuilder::new(m);
        let mut art_rows: Vec<usize> = Vec::new();
        self.xb = vec![0.0; m];
        for (i, &r) in resid.iter().enumerate() {
            let sj = self.n_struct + i;
            let (sl, su) = (self.lower[sj], self.upper[sj]);
            if r > su + self.opts.tol {
                // Slack pinned at its upper bound; artificial absorbs r − su.
                self.state[sj] = VarState::AtUpper;
                self.xb[i] = r - su;
                art_builder.add_col([(i, 1.0)]);
                art_rows.push(i);
                need_phase1 = true;
            } else if r < sl - self.opts.tol {
                self.state[sj] = VarState::AtLower;
                self.xb[i] = sl - r;
                art_builder.add_col([(i, -1.0)]);
                // B gets a −1 on this diagonal, so B⁻¹ does too.
                if let BasisRepr::Dense { binv } = &mut self.repr {
                    binv[i * m + i] = -1.0;
                }
                art_rows.push(i);
                need_phase1 = true;
            } else {
                self.xb[i] = r.clamp(sl.min(su), su.max(sl));
            }
        }

        if need_phase1 {
            // Splice artificial columns into the matrix and vectors.
            let art = art_builder.build();
            let mut builder = CscBuilder::new(m);
            for j in 0..n_total {
                builder.add_col(self.a.col(j).iter());
            }
            for k in 0..art.ncols() {
                builder.add_col(art.col(k).iter());
            }
            self.a = builder.build();
            let n_art = art_rows.len();
            let saved_cost = std::mem::replace(&mut self.cost, vec![0.0; n_total + n_art]);
            for (k, &row) in art_rows.iter().enumerate() {
                let aj = n_total + k;
                self.cost[aj] = 1.0;
                self.lower.push(0.0);
                self.upper.push(f64::INFINITY);
                self.state.push(VarState::Basic(row as u32));
                // The artificial replaces the slack as the basic variable
                // of its row; xb[row] was already set above.
                self.basis[row] = aj as u32;
            }

            self.factorize_sparse()?;
            self.optimize()?;
            self.phase1_iterations = self.iterations;

            let phase1_obj = self.current_objective();
            if phase1_obj > self.opts.tol.max(1e-6) {
                return Err(SolveError::Infeasible);
            }
            // Freeze artificials at zero for phase 2. Basic artificials at
            // value 0 are harmless: the [0,0] range blocks any move through
            // them, forcing them out of the basis on contact.
            for k in 0..n_art {
                let aj = n_total + k;
                self.lower[aj] = 0.0;
                self.upper[aj] = 0.0;
                if !matches!(self.state[aj], VarState::Basic(_)) {
                    self.state[aj] = VarState::AtLower;
                }
            }
            // Restore the real objective (zero on artificials).
            self.cost = saved_cost;
            self.cost.resize(n_total + n_art, 0.0);
        } else {
            self.factorize_sparse()?;
        }

        // --- Phase 2. ---
        self.degenerate_streak = 0;
        self.optimize()?;

        self.extract_solution()
    }

    /// Snapshots the current basis over structural + slack columns.
    /// Rows whose basic variable is an artificial are remapped to their
    /// slack when possible; when not, the snapshot is unusable and a
    /// warm start from it will fall back to a cold start.
    fn snapshot(&self) -> Basis {
        let nm = self.n_struct + self.n_slack;
        let mut state: Vec<VarState> = self.state[..nm].to_vec();
        for (r, &bj) in self.basis.iter().enumerate() {
            if (bj as usize) >= nm {
                let slack = self.n_struct + r;
                if !matches!(state[slack], VarState::Basic(_)) {
                    state[slack] = VarState::Basic(r as u32);
                }
            }
        }
        Basis {
            state,
            n_struct: self.n_struct,
        }
    }

    /// Attempts a warm-started solve from a snapshotted basis: restore →
    /// dual simplex (restores primal feasibility) → primal simplex.
    ///
    /// Errors other than `Infeasible`/`Unbounded` mean "basis unusable";
    /// the caller cold-starts.
    fn run_from_basis(&mut self, warm: &Basis) -> Result<(Solution, Basis), SolveError> {
        let m = self.m();
        let nm = self.n_struct + self.n_slack;
        if warm.n_struct != self.n_struct || warm.state.len() != nm {
            return Err(SolveError::Singular);
        }
        self.warm_started = true;
        // Restore statuses, reconciling nonbasic states with the current
        // bounds (a tightened bound may have invalidated the old resting
        // side).
        self.state = warm.state.clone();
        let mut basis: Vec<Option<u32>> = vec![None; m];
        let mut basic_count = 0;
        for j in 0..nm {
            match self.state[j] {
                VarState::Basic(r) => {
                    let r = r as usize;
                    if r >= m || basis[r].is_some() {
                        return Err(SolveError::Singular);
                    }
                    basis[r] = Some(j as u32);
                    basic_count += 1;
                }
                VarState::AtLower if !self.lower[j].is_finite() => {
                    self.state[j] = if self.upper[j].is_finite() {
                        VarState::AtUpper
                    } else {
                        VarState::FreeZero
                    };
                }
                VarState::AtUpper if !self.upper[j].is_finite() => {
                    self.state[j] = if self.lower[j].is_finite() {
                        VarState::AtLower
                    } else {
                        VarState::FreeZero
                    };
                }
                _ => {}
            }
        }
        if basic_count != m {
            return Err(SolveError::Singular);
        }
        // metis-lint: allow(PANIC-01): basic_count == m above guarantees every slot is filled
        self.basis = basis.into_iter().map(|b| b.unwrap()).collect();
        if let BasisRepr::Dense { binv } = &mut self.repr {
            *binv = vec![0.0; m * m];
        }
        self.xb = vec![0.0; m];
        self.refresh()?; // factorizes B and recomputes xb

        // The warm basis must be dual-feasible (reduced costs consistent
        // with the nonbasic statuses); bound changes preserve this, other
        // edits may not.
        if !self.is_dual_feasible() {
            return Err(SolveError::IterationLimit);
        }

        self.degenerate_streak = 0;
        self.dual_optimize()?;
        // Polish with the primal (usually zero pivots).
        self.optimize()?;
        let solution = self.extract_solution()?;
        let basis = self.snapshot();
        Ok((solution, basis))
    }

    /// Whether every nonbasic reduced cost is consistent with its status.
    fn is_dual_feasible(&mut self) -> bool {
        self.compute_duals();
        let tol = self.opts.tol.max(1e-7) * 10.0;
        for j in 0..self.state.len() {
            let d = match self.state[j] {
                VarState::Basic(_) => continue,
                _ => self.cost[j] - self.a.dot_col(j, &self.y),
            };
            let ok = match self.state[j] {
                VarState::AtLower => self.lower[j] >= self.upper[j] || d >= -tol,
                VarState::AtUpper => self.lower[j] >= self.upper[j] || d <= tol,
                VarState::FreeZero => d.abs() <= tol,
                // metis-lint: allow(PANIC-01): the iteration skips basic columns; enum invariant
                VarState::Basic(_) => unreachable!(),
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Dual simplex: starting from a dual-feasible basis, drive all basic
    /// variables back inside their bounds.
    fn dual_optimize(&mut self) -> Result<(), SolveError> {
        let m = self.m();
        loop {
            if self.iterations >= self.max_iterations {
                return Err(SolveError::IterationLimit);
            }
            // Leaving row: most violated basic variable.
            let mut leave: Option<(usize, f64, bool)> = None; // (row, viol, at_upper)
            for r in 0..m {
                let bj = self.basis[r] as usize;
                let below = self.lower[bj] - self.xb[r];
                let above = self.xb[r] - self.upper[bj];
                let (viol, at_upper) = if below > above {
                    (below, false)
                } else {
                    (above, true)
                };
                if viol > self.opts.tol {
                    match leave {
                        Some((_, v, _)) if v >= viol => {}
                        _ => leave = Some((r, viol, at_upper)),
                    }
                }
            }
            let Some((row, _, at_upper)) = leave else {
                return Ok(()); // primal feasible
            };
            self.iterations += 1;
            self.dual_iterations += 1;

            let bj = self.basis[row] as usize;
            let target = if at_upper {
                self.upper[bj]
            } else {
                self.lower[bj]
            };
            let need_up = target > self.xb[row];

            // Duals for reduced costs, and row `row` of `B⁻¹` for the
            // dual ratio test.
            self.compute_duals();
            let rho = self.btran_unit(row);

            // Entering column: dual ratio test.
            let mut best: Option<(usize, f64, f64, f64)> = None; // (col, dir, ratio, |alpha|)
            for j in 0..self.state.len() {
                let dirs: &[f64] = match self.state[j] {
                    VarState::Basic(_) => continue,
                    VarState::AtLower if self.lower[j] >= self.upper[j] => continue,
                    VarState::AtUpper if self.lower[j] >= self.upper[j] => continue,
                    VarState::AtLower => &[1.0],
                    VarState::AtUpper => &[-1.0],
                    VarState::FreeZero => &[1.0, -1.0],
                };
                let alpha = {
                    let c = self.a.col(j);
                    let mut acc = 0.0;
                    for (r, v) in c.iter() {
                        acc += v * rho[r];
                    }
                    acc
                };
                if alpha.abs() < self.opts.pivot_tol {
                    continue;
                }
                let d = self.cost[j] - self.a.dot_col(j, &self.y);
                for &dir in dirs {
                    // Moving j by t·dir changes xb[row] by −alpha·dir·t.
                    let rises = -alpha * dir > 0.0;
                    if rises != need_up {
                        continue;
                    }
                    // Dual feasibility keeps d·dir ≥ 0 (within tol).
                    let ratio = (d * dir).max(0.0) / alpha.abs();
                    let better = match best {
                        None => true,
                        Some((_, _, br, ba)) => {
                            ratio < br - 1e-12 || (ratio < br + 1e-12 && alpha.abs() > ba)
                        }
                    };
                    if better {
                        best = Some((j, dir, ratio, alpha.abs()));
                    }
                }
            }
            let Some((col, dir, _, _)) = best else {
                // No way to repair this row: the problem is infeasible.
                return Err(SolveError::Infeasible);
            };

            self.compute_direction(col);
            let wr = self.w[row];
            if wr.abs() < self.opts.pivot_tol {
                return Err(SolveError::Singular);
            }
            let step = (self.xb[row] - target) / (dir * wr);
            if step < -1e-7 {
                return Err(SolveError::Singular); // sign bookkeeping broke
            }
            self.apply_pivot(col, dir, row, step.max(0.0), at_upper)?;
            self.trace_step(col, Some(bj), wr.abs(), TracePricing::Dual);
        }
    }

    /// Reads the structural solution and duals off the final basis.
    fn extract_solution(&mut self) -> Result<Solution, SolveError> {
        // Extract structural values.
        let mut x = vec![0.0; self.n_struct];
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = match self.state[j] {
                VarState::Basic(row) => self.xb[row as usize],
                st => self.nonbasic_value(j, st),
            };
        }
        let mut obj = 0.0;
        for (cj, xj) in self.cost.iter().zip(&x) {
            obj += cj * xj;
        }
        if self.maximize {
            obj = -obj;
        }

        // Row duals `y = c_Bᵀ B⁻¹` of the final basis, converted back to
        // the problem's own sense (we minimized the negated objective
        // when maximizing).
        self.compute_duals();
        let mut duals = self.y.clone();
        if self.maximize {
            for d in &mut duals {
                *d = -*d;
            }
        }
        let stats = SolveStats {
            iterations: self.iterations,
            phase1_iterations: self.phase1_iterations,
            dual_iterations: self.dual_iterations,
            bound_flips: self.bound_flips,
            refreshes: self.refreshes,
            warm_started: self.warm_started,
            eta_updates: self.eta_updates,
            lu_l_nnz: self.lu_l_nnz,
            lu_u_nnz: self.lu_u_nnz,
            pricing_block_scans: self.pricing_block_scans,
            devex_resets: self.devex_resets,
            ft_spikes: self.ft_spikes,
            harris_expansions: self.harris_expansions,
            presolve_removed_rows: 0,
            presolve_removed_vars: 0,
            scaling_passes: 0,
        };
        let trace = self.take_trace();
        Ok(Solution::new(obj, x, self.iterations)
            .with_stats(stats)
            .with_duals(duals)
            .with_trace(trace))
    }

    /// Which rule is choosing entering columns for the primal right now.
    fn primal_pricing(&self, bland: bool) -> TracePricing {
        if bland {
            TracePricing::Bland
        } else if self.devex {
            TracePricing::Devex
        } else if self.price_block > 0 {
            TracePricing::Partial
        } else {
            TracePricing::Dantzig
        }
    }

    /// Appends one step to the bounded trace ring. No-op unless
    /// `opts.trace` is set, so untraced solves pay a single branch.
    /// Call *after* the step was applied: the recorded objective is the
    /// post-step value (phase-1 steps record the phase-1 objective —
    /// total artificial infeasibility — which is what a convergence
    /// plot of feasibility restoration wants).
    fn trace_step(
        &mut self,
        entering: usize,
        leaving: Option<usize>,
        pivot: f64,
        pricing: TracePricing,
    ) {
        if !self.opts.trace {
            return;
        }
        let mut objective = self.current_objective();
        if self.maximize {
            objective = -objective;
        }
        let record = TraceRecord {
            iteration: self.iterations,
            entering,
            leaving,
            objective,
            pivot,
            pricing,
        };
        if self.trace.len() < LpTrace::CAPACITY {
            self.trace.push(record);
        } else {
            self.trace[self.trace_start] = record;
            self.trace_start = (self.trace_start + 1) % LpTrace::CAPACITY;
            self.trace_dropped += 1;
        }
    }

    /// Drains the trace ring into chronological order for the solution.
    fn take_trace(&mut self) -> LpTrace {
        let mut records = std::mem::take(&mut self.trace);
        records.rotate_left(self.trace_start);
        self.trace_start = 0;
        let dropped = self.trace_dropped;
        self.trace_dropped = 0;
        LpTrace { records, dropped }
    }

    /// Objective of the current basic solution under `self.cost`.
    fn current_objective(&self) -> f64 {
        let mut obj = 0.0;
        for (i, &bj) in self.basis.iter().enumerate() {
            obj += self.cost[bj as usize] * self.xb[i];
        }
        for (j, &st) in self.state.iter().enumerate() {
            if !matches!(st, VarState::Basic(_)) && self.cost[j] != 0.0 {
                obj += self.cost[j] * self.nonbasic_value(j, st);
            }
        }
        obj
    }

    /// Runs primal simplex iterations until optimal for the current costs.
    fn optimize(&mut self) -> Result<(), SolveError> {
        if self.devex {
            // Fresh reference framework: the current basis defines the
            // approximation, so every weight restarts at 1. (The dual
            // simplex does not maintain weights; re-entering here after
            // a warm start resets them too.)
            self.devex_w.clear();
            self.devex_w.resize(self.state.len(), 1.0);
        }
        loop {
            if self.iterations >= self.max_iterations {
                return Err(SolveError::IterationLimit);
            }
            let bland = self.degenerate_streak >= self.opts.bland_after;
            match self.price(bland) {
                PriceStep::Optimal => return Ok(()),
                PriceStep::Enter { col, dir } => {
                    self.iterations += 1;
                    self.compute_direction(col);
                    let ratio = match self.opts.ratio {
                        RatioTest::Textbook => self.ratio_test(col, dir),
                        RatioTest::Harris => self.ratio_test_harris(col, dir),
                    };
                    match ratio {
                        Ratio::Unbounded => return Err(SolveError::Unbounded),
                        Ratio::BoundFlip { step } => {
                            self.apply_bound_flip(col, dir, step);
                            self.degenerate_streak = 0;
                            self.trace_step(col, None, 0.0, self.primal_pricing(bland));
                        }
                        Ratio::Pivot {
                            row,
                            step,
                            to_upper,
                        } => {
                            if step <= self.opts.tol {
                                self.degenerate_streak += 1;
                            } else {
                                self.degenerate_streak = 0;
                            }
                            // Weight maintenance continues through Bland
                            // episodes so the framework is current when
                            // devex pricing resumes.
                            if self.devex {
                                self.update_devex_weights(col, row);
                            }
                            let leaving = self.basis[row] as usize;
                            let pivot_mag = self.w[row].abs();
                            self.apply_pivot(col, dir, row, step, to_upper)?;
                            self.trace_step(
                                col,
                                Some(leaving),
                                pivot_mag,
                                self.primal_pricing(bland),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Computes duals `y = c_Bᵀ B⁻¹` and picks an entering column.
    ///
    /// Under Bland's rule every column is scanned and the first improving
    /// index enters (the anti-cycling guarantee needs the global minimum
    /// index). Devex scans every column and weighs reduced costs by the
    /// reference weights. Otherwise Dantzig pricing runs over the
    /// configured blocks: a full sweep when `price_block == 0`, else
    /// rotating blocks starting at the block that produced the last
    /// entering column, wrapping through all of them — a full scan —
    /// before optimality is declared. `pricing_block_scans` counts only
    /// genuine partial-pricing block examinations: full sweeps (Dantzig,
    /// devex, or Bland) contribute zero.
    fn price(&mut self, bland: bool) -> PriceStep {
        self.compute_duals();
        let tol = self.opts.tol;
        let ncols = self.state.len();
        if bland {
            for j in 0..ncols {
                if let Some(dir) = self.price_candidate(j, tol) {
                    return PriceStep::Enter { col: j, dir: dir.0 };
                }
            }
            return PriceStep::Optimal;
        }
        if self.devex {
            return self.price_devex(tol);
        }
        if self.price_block == 0 || self.price_block >= ncols {
            return self.price_range(0, ncols, tol);
        }
        let nblocks = ncols.div_ceil(self.price_block);
        for offset in 0..nblocks {
            let blk = (self.price_cursor + offset) % nblocks;
            let lo = blk * self.price_block;
            let hi = (lo + self.price_block).min(ncols);
            self.pricing_block_scans += 1;
            if let PriceStep::Enter { col, dir } = self.price_range(lo, hi, tol) {
                self.price_cursor = blk;
                return PriceStep::Enter { col, dir };
            }
        }
        PriceStep::Optimal
    }

    /// Devex pricing: the nonbasic column maximizing `dⱼ²/γⱼ` enters,
    /// earliest index on ties.
    fn price_devex(&mut self, tol: f64) -> PriceStep {
        let ncols = self.state.len();
        // Phase-1 artificials may have grown the column set since the
        // weights were initialized; new columns start at the reference
        // weight 1.
        if self.devex_w.len() < ncols {
            self.devex_w.resize(ncols, 1.0);
        }
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, merit)
        for j in 0..ncols {
            let Some((dir, score)) = self.price_candidate(j, tol) else {
                continue;
            };
            let merit = score * score / self.devex_w[j];
            match best {
                Some((_, _, m)) if m >= merit => {}
                _ => best = Some((j, dir, merit)),
            }
        }
        match best {
            Some((col, dir, _)) => PriceStep::Enter { col, dir },
            None => PriceStep::Optimal,
        }
    }

    /// Devex weight maintenance for the pivot `(col enters, row
    /// leaves)`. Must run *before* [`Simplex::apply_pivot`]: the update
    /// reads the pivot row of the **outgoing** basis inverse and the
    /// entering direction still held in `self.w`.
    ///
    /// Following Forrest–Goldfarb: with pivot row `αⱼ = ρᵀ aⱼ`
    /// (`ρ` = row `row` of `B⁻¹`) and entering pivot `α_q = w[row]`,
    ///
    /// ```text
    /// γⱼ ← max(γⱼ, (αⱼ/α_q)²·γ_q)        (nonbasic j)
    /// γ_p ← max(γ_q/α_q², 1)              (leaving variable p)
    /// ```
    fn update_devex_weights(&mut self, col: usize, row: usize) {
        let alpha_q = self.w[row];
        if alpha_q == 0.0 {
            return; // apply_pivot will reject this pivot anyway
        }
        if self.devex_w.len() < self.state.len() {
            self.devex_w.resize(self.state.len(), 1.0);
        }
        let gamma_q = self.devex_w[col];
        let rho = self.btran_unit(row);
        let mut max_w: f64 = 1.0;
        for j in 0..self.state.len() {
            if j == col || matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            let alpha_j = self.a.dot_col(j, &rho);
            if alpha_j != 0.0 {
                let ratio = alpha_j / alpha_q;
                let cand = ratio * ratio * gamma_q;
                if cand > self.devex_w[j] {
                    self.devex_w[j] = cand;
                }
            }
            max_w = max_w.max(self.devex_w[j]);
        }
        let leaving = self.basis[row] as usize;
        self.devex_w[leaving] = (gamma_q / (alpha_q * alpha_q)).max(1.0);
        max_w = max_w.max(self.devex_w[leaving]);
        if max_w > DEVEX_RESET_THRESHOLD {
            // The reference framework has degraded; restart it from the
            // current basis.
            self.devex_w.fill(1.0);
            self.devex_resets += 1;
        }
    }

    /// Reduced-cost test for one nonbasic column against the current
    /// duals: `Some((dir, score))` when moving `j` in direction `dir`
    /// improves the objective by rate `score`.
    fn price_candidate(&self, j: usize, tol: f64) -> Option<(f64, f64)> {
        match self.state[j] {
            VarState::Basic(_) => None,
            VarState::AtLower => {
                if self.lower[j] >= self.upper[j] {
                    return None; // fixed variable
                }
                let d = self.cost[j] - self.a.dot_col(j, &self.y);
                if d < -tol {
                    Some((1.0, -d))
                } else {
                    None
                }
            }
            VarState::AtUpper => {
                if self.lower[j] >= self.upper[j] {
                    return None;
                }
                let d = self.cost[j] - self.a.dot_col(j, &self.y);
                if d > tol {
                    Some((-1.0, d))
                } else {
                    None
                }
            }
            VarState::FreeZero => {
                let d = self.cost[j] - self.a.dot_col(j, &self.y);
                if d < -tol {
                    Some((1.0, -d))
                } else if d > tol {
                    Some((-1.0, d))
                } else {
                    None
                }
            }
        }
    }

    /// Dantzig pricing over columns `lo..hi`: the most violating reduced
    /// cost wins, earliest index on ties.
    fn price_range(&self, lo: usize, hi: usize, tol: f64) -> PriceStep {
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, score)
        for j in lo..hi {
            let Some((dir, score)) = self.price_candidate(j, tol) else {
                continue;
            };
            match best {
                Some((_, _, s)) if s >= score => {}
                _ => best = Some((j, dir, score)),
            }
        }
        match best {
            Some((col, dir, _)) => PriceStep::Enter { col, dir },
            None => PriceStep::Optimal,
        }
    }

    /// Computes the duals `y = c_Bᵀ B⁻¹` into `self.y` (row space).
    fn compute_duals(&mut self) {
        let m = self.rhs.len();
        let Simplex {
            repr,
            y,
            cost,
            basis,
            rowbuf,
            lubuf,
            ..
        } = self;
        match repr {
            BasisRepr::Dense { binv } => {
                for yj in y.iter_mut() {
                    *yj = 0.0;
                }
                for (i, &bj) in basis.iter().enumerate() {
                    let cb = cost[bj as usize];
                    if cb != 0.0 {
                        let row = &binv[i * m..(i + 1) * m];
                        for (yj, &bij) in y.iter_mut().zip(row) {
                            *yj += cb * bij;
                        }
                    }
                }
            }
            BasisRepr::Sparse { lu, etas } => {
                // c_B in slot space, pushed back through the etas, then
                // through the factors.
                for (ci, &bj) in rowbuf.iter_mut().zip(basis.iter()) {
                    *ci = cost[bj as usize];
                }
                etas.btran(rowbuf);
                lu.btran(rowbuf, y, lubuf);
            }
            BasisRepr::SparseFt { ft } => {
                for (ci, &bj) in rowbuf.iter_mut().zip(basis.iter()) {
                    *ci = cost[bj as usize];
                }
                ft.btran(rowbuf, y, lubuf);
            }
        }
    }

    /// Row `row` of `B⁻¹` (= `B⁻ᵀ e_row` in row space), used by the dual
    /// simplex ratio test.
    fn btran_unit(&mut self, row: usize) -> Vec<f64> {
        let m = self.rhs.len();
        let Simplex {
            repr,
            rowbuf,
            lubuf,
            ..
        } = self;
        match repr {
            BasisRepr::Dense { binv } => binv[row * m..(row + 1) * m].to_vec(),
            BasisRepr::Sparse { lu, etas } => {
                let mut rho = vec![0.0; m];
                rowbuf.fill(0.0);
                rowbuf[row] = 1.0;
                etas.btran(rowbuf);
                lu.btran(rowbuf, &mut rho, lubuf);
                rho
            }
            BasisRepr::SparseFt { ft } => {
                let mut rho = vec![0.0; m];
                rowbuf.fill(0.0);
                rowbuf[row] = 1.0;
                ft.btran(rowbuf, &mut rho, lubuf);
                rho
            }
        }
    }

    /// Rebuilds the sparse factorization from the current basis and
    /// drops the accumulated updates. No-op on the dense backend.
    fn factorize_sparse(&mut self) -> Result<(), SolveError> {
        let Simplex {
            repr,
            a,
            basis,
            lu_l_nnz,
            lu_u_nnz,
            ..
        } = self;
        match repr {
            BasisRepr::Sparse { lu, etas } => {
                *lu = LuFactors::factor(a, basis, 1e-12)?;
                etas.clear();
                *lu_l_nnz = lu.l_nnz();
                *lu_u_nnz = lu.u_nnz();
            }
            BasisRepr::SparseFt { ft } => {
                *ft = FtFactors::factor(a, basis, 1e-12)?;
                *lu_l_nnz = ft.l_nnz();
                *lu_u_nnz = ft.u_nnz();
            }
            BasisRepr::Dense { .. } => {}
        }
        Ok(())
    }

    /// `w = B⁻¹ · A[:, col]`.
    fn compute_direction(&mut self, col: usize) {
        let m = self.rhs.len();
        let Simplex {
            repr,
            a,
            w,
            rowbuf,
            lubuf,
            ..
        } = self;
        match repr {
            BasisRepr::Dense { binv } => {
                for wi in w.iter_mut() {
                    *wi = 0.0;
                }
                for (r, v) in a.col(col).iter() {
                    // w += v * B^{-1}[:, r]
                    for i in 0..m {
                        w[i] += v * binv[i * m + r];
                    }
                }
            }
            BasisRepr::Sparse { lu, etas } => {
                rowbuf.fill(0.0);
                for (r, v) in a.col(col).iter() {
                    rowbuf[r] = v;
                }
                lu.ftran(rowbuf, w, lubuf);
                etas.ftran(w);
            }
            BasisRepr::SparseFt { ft } => {
                rowbuf.fill(0.0);
                for (r, v) in a.col(col).iter() {
                    rowbuf[r] = v;
                }
                ft.ftran(rowbuf, w, lubuf);
            }
        }
    }

    /// Finds the blocking constraint for the entering column moving by
    /// `t ≥ 0` in direction `dir` (basics change by `−t·dir·w`).
    fn ratio_test(&self, col: usize, dir: f64) -> Ratio {
        let ptol = self.opts.pivot_tol;
        let range = self.upper[col] - self.lower[col];
        let mut t_best = if range.is_finite() {
            range
        } else {
            f64::INFINITY
        };
        let mut blocking: Option<(usize, bool)> = None; // (row, leaves_at_upper)

        for i in 0..self.m() {
            let delta = -dir * self.w[i];
            let bj = self.basis[i] as usize;
            if delta > ptol {
                // Basic variable increases; blocked by its upper bound.
                let ub = self.upper[bj];
                if ub.is_finite() {
                    let t = (ub - self.xb[i]) / delta;
                    if t < t_best - 1e-12 || (t < t_best + 1e-12 && blocking.is_none()) {
                        t_best = t.max(0.0);
                        blocking = Some((i, true));
                    }
                }
            } else if delta < -ptol {
                let lb = self.lower[bj];
                if lb.is_finite() {
                    let t = (lb - self.xb[i]) / delta;
                    if t < t_best - 1e-12 || (t < t_best + 1e-12 && blocking.is_none()) {
                        t_best = t.max(0.0);
                        blocking = Some((i, false));
                    }
                }
            }
        }

        match blocking {
            None if t_best.is_infinite() => Ratio::Unbounded,
            None => Ratio::BoundFlip { step: t_best },
            Some((row, to_upper)) => Ratio::Pivot {
                row,
                step: t_best,
                to_upper,
            },
        }
    }

    /// Harris two-pass ratio test.
    ///
    /// Pass one computes the largest step `t_max` admissible when every
    /// basic bound is relaxed by the feasibility tolerance; pass two
    /// picks the largest-magnitude pivot among the rows whose **exact**
    /// ratio fits under `t_max` (ties by lowest row index). On
    /// degenerate bases this trades a bound shift of at most `tol` for
    /// much better pivots than the textbook smallest-ratio rule, which
    /// is forced onto whatever tiny pivot reaches the minimum first.
    /// A chosen exact ratio can be slightly negative (the basic
    /// variable sat just outside its bound); the step clamps to zero
    /// and `harris_expansions` counts the event.
    fn ratio_test_harris(&mut self, col: usize, dir: f64) -> Ratio {
        let ptol = self.opts.pivot_tol;
        let relax = self.opts.tol;
        let range = self.upper[col] - self.lower[col];
        let flip_cap = if range.is_finite() {
            range
        } else {
            f64::INFINITY
        };

        // Pass 1: relaxed maximum step.
        let mut t_max = flip_cap;
        for i in 0..self.m() {
            let delta = -dir * self.w[i];
            let bj = self.basis[i] as usize;
            if delta > ptol {
                let ub = self.upper[bj];
                if ub.is_finite() {
                    let t = (ub - self.xb[i] + relax) / delta;
                    if t < t_max {
                        t_max = t;
                    }
                }
            } else if delta < -ptol {
                let lb = self.lower[bj];
                if lb.is_finite() {
                    let t = (lb - self.xb[i] - relax) / delta;
                    if t < t_max {
                        t_max = t;
                    }
                }
            }
        }
        if t_max.is_infinite() {
            return Ratio::Unbounded;
        }

        // Pass 2: best pivot among rows whose exact ratio fits. The row
        // that set `t_max` always qualifies (its exact ratio is below
        // its relaxed one), so this is empty only when the entering
        // variable's own range binds first.
        let mut blocking: Option<(usize, bool, f64, f64)> = None; // (row, to_upper, t, |w|)
        for i in 0..self.m() {
            let delta = -dir * self.w[i];
            let bj = self.basis[i] as usize;
            let (bound, to_upper) = if delta > ptol {
                let ub = self.upper[bj];
                if !ub.is_finite() {
                    continue;
                }
                (ub, true)
            } else if delta < -ptol {
                let lb = self.lower[bj];
                if !lb.is_finite() {
                    continue;
                }
                (lb, false)
            } else {
                continue;
            };
            let t = (bound - self.xb[i]) / delta;
            if t <= t_max {
                let mag = self.w[i].abs();
                let better = match blocking {
                    None => true,
                    Some((_, _, _, bm)) => mag > bm,
                };
                if better {
                    blocking = Some((i, to_upper, t, mag));
                }
            }
        }
        match blocking {
            None => Ratio::BoundFlip { step: flip_cap },
            Some((row, to_upper, t, _)) => {
                let step = if t < 0.0 {
                    self.harris_expansions += 1;
                    0.0
                } else {
                    t
                };
                Ratio::Pivot {
                    row,
                    step,
                    to_upper,
                }
            }
        }
    }

    /// Entering variable traverses its whole range without any basic
    /// variable blocking: flip it to the opposite bound.
    fn apply_bound_flip(&mut self, col: usize, dir: f64, step: f64) {
        self.bound_flips += 1;
        for i in 0..self.m() {
            self.xb[i] -= step * dir * self.w[i];
        }
        self.state[col] = match self.state[col] {
            VarState::AtLower => VarState::AtUpper,
            VarState::AtUpper => VarState::AtLower,
            other => other, // free variables never bound-flip (infinite range)
        };
    }

    fn apply_pivot(
        &mut self,
        col: usize,
        dir: f64,
        row: usize,
        step: f64,
        to_upper: bool,
    ) -> Result<(), SolveError> {
        let m = self.m();
        let pivot = self.w[row];
        if pivot.abs() < self.opts.pivot_tol {
            return Err(SolveError::Singular);
        }

        // Update basic values and the entering variable's value.
        for i in 0..m {
            self.xb[i] -= step * dir * self.w[i];
        }
        let entering_start = match self.state[col] {
            // metis-lint: allow(PANIC-01): pricing only selects nonbasic columns; enum invariant
            VarState::Basic(_) => unreachable!("entering variable is basic"),
            st => self.nonbasic_value(col, st),
        };
        let entering_value = entering_start + dir * step;

        // Leaving variable exits at the bound it hit.
        let leaving = self.basis[row] as usize;
        self.state[leaving] = if to_upper {
            VarState::AtUpper
        } else {
            VarState::AtLower
        };
        // Snap exactly onto the bound to stop drift.
        let snapped = if to_upper {
            self.upper[leaving]
        } else {
            self.lower[leaving]
        };
        debug_assert!(
            (self.xb[row] - snapped).abs() < 1e-4,
            "leaving variable far from its bound"
        );
        let _ = snapped;

        self.basis[row] = col as u32;
        self.state[col] = VarState::Basic(row as u32);
        self.xb[row] = entering_value;

        let mut ft_failed = false;
        match &mut self.repr {
            BasisRepr::Dense { binv } => {
                // Elementary row update of B^{-1}: pivot row divided by
                // w_row, others eliminated.
                let inv_pivot = 1.0 / pivot;
                // Split borrow: copy pivot row once.
                let prow: Vec<f64> = binv[row * m..(row + 1) * m]
                    .iter()
                    .map(|&v| v * inv_pivot)
                    .collect();
                for i in 0..m {
                    if i == row {
                        continue;
                    }
                    let wi = self.w[i];
                    if wi != 0.0 {
                        let base = i * m;
                        for (k, &pv) in prow.iter().enumerate() {
                            binv[base + k] -= wi * pv;
                        }
                    }
                }
                binv[row * m..(row + 1) * m].copy_from_slice(&prow);
            }
            BasisRepr::Sparse { etas, .. } => {
                // Product-form update: B' = B·E with E the identity whose
                // column `row` is the entering direction w.
                etas.push(row, &self.w);
                self.eta_updates += 1;
            }
            BasisRepr::SparseFt { ft } => {
                // Forrest–Tomlin: rewrite column `row` of U in place from
                // the entering column's spike. A rejected (numerically
                // unstable) pivot falls back to an immediate
                // refactorization below — the basis arrays already
                // describe the post-pivot basis. The tolerance matches
                // the refactorization's absolute pivot floor.
                self.rowbuf.fill(0.0);
                for (r, v) in self.a.col(col).iter() {
                    self.rowbuf[r] = v;
                }
                match ft.update(row, &self.rowbuf, 1e-12, &mut self.lubuf) {
                    Ok(()) => self.ft_spikes += 1,
                    Err(_) => ft_failed = true,
                }
            }
        }

        self.pivots_since_refresh += 1;
        if ft_failed || self.pivots_since_refresh >= self.opts.refresh_every {
            self.refresh()?;
        }
        Ok(())
    }

    /// Rebuilds the basis representation from scratch (refactorization)
    /// and recomputes the basic values.
    fn refresh(&mut self) -> Result<(), SolveError> {
        self.refreshes += 1;
        self.pivots_since_refresh = 0;
        match self.opts.basis {
            BasisBackend::Dense => self.refresh_dense()?,
            BasisBackend::SparseLu => self.factorize_sparse()?,
        }
        // xb = B^{-1} (b − N x_N)
        let mut resid = self.rhs.clone();
        for (j, &st) in self.state.iter().enumerate() {
            if matches!(st, VarState::Basic(_)) {
                continue;
            }
            let v = self.nonbasic_value(j, st);
            if v != 0.0 {
                self.a.axpy_col(j, -v, &mut resid);
            }
        }
        let m = self.m();
        let Simplex {
            repr, xb, lubuf, ..
        } = self;
        match repr {
            BasisRepr::Dense { binv } => {
                for (i, xi) in xb.iter_mut().enumerate() {
                    let base = i * m;
                    *xi = binv[base..base + m]
                        .iter()
                        .zip(&resid)
                        .map(|(b, r)| b * r)
                        .sum();
                }
            }
            BasisRepr::Sparse { lu, .. } => {
                // The eta file was just cleared; the factors alone are B.
                lu.ftran(&resid, xb, lubuf);
            }
            BasisRepr::SparseFt { ft } => {
                ft.ftran(&resid, xb, lubuf);
            }
        }
        Ok(())
    }

    /// Recomputes the dense explicit `B⁻¹` by Gauss-Jordan elimination.
    fn refresh_dense(&mut self) -> Result<(), SolveError> {
        let m = self.m();
        // Assemble B column-wise into an augmented [B | I] dense matrix and
        // run Gauss-Jordan with partial pivoting.
        let mut aug = vec![0.0; m * 2 * m];
        let width = 2 * m;
        for (i, &bj) in self.basis.iter().enumerate() {
            for (r, v) in self.a.col(bj as usize).iter() {
                aug[r * width + i] = v;
            }
        }
        for i in 0..m {
            aug[i * width + m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivot.
            let mut best = col;
            let mut best_abs = aug[col * width + col].abs();
            for r in (col + 1)..m {
                let a = aug[r * width + col].abs();
                if a > best_abs {
                    best_abs = a;
                    best = r;
                }
            }
            if best_abs < 1e-12 {
                return Err(SolveError::Singular);
            }
            if best != col {
                for k in 0..width {
                    aug.swap(col * width + k, best * width + k);
                }
            }
            let inv = 1.0 / aug[col * width + col];
            for k in 0..width {
                aug[col * width + k] *= inv;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = aug[r * width + col];
                if f != 0.0 {
                    for k in 0..width {
                        aug[r * width + k] -= f * aug[col * width + k];
                    }
                }
            }
        }
        if let BasisRepr::Dense { binv } = &mut self.repr {
            if binv.len() != m * m {
                *binv = vec![0.0; m * m];
            }
            for i in 0..m {
                for k in 0..m {
                    binv[i * m + k] = aug[i * width + m + k];
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, Relation, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6,
            "expected {b}, got {a} (diff {})",
            (a - b).abs()
        );
    }

    #[test]
    fn trivial_bounds_only() {
        // min 2x − 3y, 0 ≤ x ≤ 1, 0 ≤ y ≤ 2 → x=0, y=2.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(2.0, 0.0, 1.0);
        let y = p.add_var(-3.0, 0.0, 2.0);
        let s = p.solve().unwrap();
        assert_close(s.objective(), -6.0);
        assert_close(s.value(x), 0.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn classic_2d_max() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0, 0.0, f64::INFINITY);
        let y = p.add_var(5.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint([(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn equality_and_ge_need_phase1() {
        // min x + y s.t. x + y = 2, x ≥ 0.5 → obj 2.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        p.add_constraint([(x, 1.0)], Relation::Ge, 0.5);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 2.0);
        assert!(s.value(x) >= 0.5 - 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, 0.0, 1.0);
        p.add_constraint([(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn trace_is_read_only_and_complete() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0, 0.0, f64::INFINITY);
        let y = p.add_var(5.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint([(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);

        let plain = p.solve().unwrap();
        let traced = p
            .solve_with(&SolveOptions {
                trace: true,
                ..SolveOptions::default()
            })
            .unwrap();

        // Tracing never changes the pivot sequence or the answer.
        assert_eq!(plain.values(), traced.values());
        assert_eq!(plain.objective(), traced.objective());
        assert_eq!(plain.stats(), traced.stats());
        assert!(plain.trace().records.is_empty(), "untraced solve is clean");

        let trace = traced.trace();
        assert_eq!(trace.dropped, 0);
        // One record per pivot or bound flip.
        assert_eq!(
            trace.total() as usize,
            traced.stats().iterations + traced.stats().bound_flips
        );
        // Iteration indices are 1-based, strictly increasing, and the
        // last record lands on the solve's final objective.
        for (k, r) in trace.records.iter().enumerate() {
            if k > 0 {
                assert!(r.iteration > trace.records[k - 1].iteration);
            }
            assert!(r.leaving.is_some() || r.pivot == 0.0);
        }
        let last = trace.records.last().unwrap();
        assert!((last.objective - traced.objective()).abs() < 1e-9);
        assert_eq!(last.pricing, TracePricing::Dantzig);
    }

    #[test]
    fn trace_records_dual_pivots_on_warm_restarts() {
        // Solve, tighten a bound so the old basis is primal-infeasible
        // but dual-feasible, and reoptimize warm with tracing on.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0, 0.0, f64::INFINITY);
        let y = p.add_var(5.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint([(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let opts = SolveOptions {
            trace: true,
            ..SolveOptions::default()
        };
        let (sol, basis) = p.solve_with_basis(&opts, None).unwrap();
        assert!(sol.trace().total() > 0);

        let mut q = p.clone();
        q.set_bounds(y, 0.0, 2.0);
        let (resol, _) = q.solve_with_basis(&opts, Some(&basis)).unwrap();
        assert!(resol.stats().warm_started);
        if resol.stats().dual_iterations > 0 {
            assert!(resol
                .trace()
                .records
                .iter()
                .any(|r| r.pricing == TracePricing::Dual));
        }
    }

    #[test]
    fn infeasible_conflicting_rows() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(0.0, f64::NEG_INFINITY, f64::INFINITY);
        p.add_constraint([(x, 1.0)], Relation::Ge, 3.0);
        p.add_constraint([(x, 1.0)], Relation::Le, 1.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(0.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn free_variable() {
        // min |x| style: min x s.t. x ≥ −5 handled via free var + Ge row.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, f64::NEG_INFINITY, f64::INFINITY);
        p.add_constraint([(x, 1.0)], Relation::Ge, -5.0);
        let s = p.solve().unwrap();
        assert_close(s.objective(), -5.0);
        assert_close(s.value(x), -5.0);
    }

    #[test]
    fn negative_rhs_le() {
        // min x s.t. −x ≤ −3  (i.e. x ≥ 3)
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, -1.0)], Relation::Le, -3.0);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 3.0);
    }

    #[test]
    fn bound_flip_path() {
        // max x + y s.t. x + y ≤ 10, 0 ≤ x ≤ 2, 0 ≤ y ≤ 3 → 5.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, 2.0);
        let y = p.add_var(1.0, 0.0, 3.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 10.0);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 5.0);
    }

    #[test]
    fn fixed_variables_respected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 1.5, 1.5);
        let y = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        let s = p.solve().unwrap();
        assert_close(s.value(x), 1.5);
        assert_close(s.objective(), 4.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Many redundant constraints through the same vertex.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(1.0, 0.0, f64::INFINITY);
        for k in 1..=6 {
            p.add_constraint(
                [(x, 1.0), (y, k as f64)],
                Relation::Le,
                1.0 + (k as f64 - 1.0),
            );
        }
        p.add_constraint([(x, 1.0)], Relation::Le, 1.0);
        p.add_constraint([(y, 1.0)], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        assert!(s.objective() <= 2.0 + 1e-6);
        assert!(p.max_violation(s.values()).max(0.0) < 1e-6);
    }

    #[test]
    fn transportation_problem() {
        // 2 supplies (10, 15), 3 demands (8, 7, 10), min cost.
        let cost = [[4.0, 6.0, 9.0], [5.0, 3.0, 8.0]];
        let supply = [10.0, 15.0];
        let demand = [8.0, 7.0, 10.0];
        let mut p = Problem::new(Sense::Minimize);
        let mut v = [[None; 3]; 2];
        for i in 0..2 {
            for j in 0..3 {
                v[i][j] = Some(p.add_var(cost[i][j], 0.0, f64::INFINITY));
            }
        }
        for i in 0..2 {
            p.add_constraint(
                (0..3).map(|j| (v[i][j].unwrap(), 1.0)),
                Relation::Le,
                supply[i],
            );
        }
        for j in 0..3 {
            p.add_constraint(
                (0..2).map(|i| (v[i][j].unwrap(), 1.0)),
                Relation::Ge,
                demand[j],
            );
        }
        let s = p.solve().unwrap();
        // Optimal: x11=8, x13=2, x22=7, x23=8 → 32+18+21+64 = 135.
        assert_close(s.objective(), 135.0);
        assert!(p.max_violation(s.values()) < 1e-6);
    }

    #[test]
    fn maximize_equals_negated_minimize() {
        let build = |sense| {
            let mut p = Problem::new(sense);
            let x = p.add_var(if sense == Sense::Maximize { 2.0 } else { -2.0 }, 0.0, 5.0);
            let y = p.add_var(if sense == Sense::Maximize { 1.0 } else { -1.0 }, 0.0, 5.0);
            p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 6.0);
            p
        };
        let smax = build(Sense::Maximize).solve().unwrap();
        let smin = build(Sense::Minimize).solve().unwrap();
        assert_close(smax.objective(), -smin.objective());
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new(Sense::Minimize);
        let s = p.solve().unwrap();
        assert_eq!(s.objective(), 0.0);
        assert!(s.values().is_empty());
    }

    #[test]
    fn no_constraints_bounded_vars() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(7.0, -1.0, 2.0);
        let s = p.solve().unwrap();
        assert_close(s.value(x), 2.0);
        assert_close(s.objective(), 14.0);
    }

    #[test]
    fn iteration_limit_error() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 10.0);
        let opts = SolveOptions {
            max_iterations: 1,
            ..SolveOptions::default()
        };
        // One pivot is not enough to reach optimality here.
        match p.solve_with(&opts) {
            Err(SolveError::IterationLimit) | Ok(_) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale (1955): cycles forever under naive Dantzig pricing with
        // exact arithmetic. The degenerate-streak → Bland fallback must
        // terminate at the optimum −1/20.
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_var(-0.75, 0.0, f64::INFINITY);
        let x2 = p.add_var(150.0, 0.0, f64::INFINITY);
        let x3 = p.add_var(-0.02, 0.0, f64::INFINITY);
        let x4 = p.add_var(6.0, 0.0, f64::INFINITY);
        p.add_constraint(
            [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint([(x3, 1.0)], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        assert_close(s.objective(), -0.05);
    }

    #[test]
    fn klee_minty_terminates() {
        // Klee–Minty cube (n = 6): exponential for worst-case pivot
        // rules, but must finish well within the iteration budget.
        let n = 6;
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|j| p.add_var(2f64.powi((n - 1 - j) as i32), 0.0, f64::INFINITY))
            .collect();
        for i in 0..n {
            let mut terms: Vec<(crate::model::VarId, f64)> = Vec::new();
            for (j, &vj) in vars.iter().enumerate().take(i) {
                terms.push((vj, 2f64.powi((i - j + 1) as i32)));
            }
            terms.push((vars[i], 1.0));
            p.add_constraint(terms, Relation::Le, 5f64.powi(i as i32 + 1));
        }
        let s = p.solve().unwrap();
        assert_close(s.objective(), 5f64.powi(n as i32));
    }

    #[test]
    fn random_dense_lp_feasible_and_stable() {
        // A moderately sized LP exercising the periodic refresh path.
        let n = 30;
        let mut p = Problem::new(Sense::Minimize);
        let vars: Vec<_> = (0..n)
            .map(|j| p.add_var(((j * 7) % 11) as f64 - 3.0, 0.0, 4.0))
            .collect();
        for i in 0..n {
            let terms: Vec<_> = (0..n)
                .filter(|j| (i + j) % 3 == 0)
                .map(|j| (vars[j], 1.0 + ((i * j) % 5) as f64))
                .collect();
            if !terms.is_empty() {
                p.add_constraint(terms, Relation::Ge, 2.0 + (i % 4) as f64);
            }
        }
        let s = p.solve().unwrap();
        assert!(p.max_violation(s.values()) < 1e-6);
        let opts = SolveOptions {
            refresh_every: 5,
            ..SolveOptions::default()
        };
        let s2 = p.solve_with(&opts).unwrap();
        assert_close(s.objective(), s2.objective());
    }

    #[test]
    fn duals_of_textbook_max() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
        // Known shadow prices: 0, 3/2, 1.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0, 0.0, f64::INFINITY);
        let y = p.add_var(5.0, 0.0, f64::INFINITY);
        let r1 = p.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        let r2 = p.add_constraint([(y, 2.0)], Relation::Le, 12.0);
        let r3 = p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = p.solve().unwrap();
        assert_close(s.dual(r1).unwrap(), 0.0);
        assert_close(s.dual(r2).unwrap(), 1.5);
        assert_close(s.dual(r3).unwrap(), 1.0);
        assert_eq!(s.duals().unwrap().len(), 3);
    }

    #[test]
    fn duals_predict_rhs_perturbation() {
        // Shadow price = marginal objective change for a small rhs bump.
        let build = |rhs: f64| {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var(2.0, 0.0, f64::INFINITY);
            let y = p.add_var(3.0, 0.0, f64::INFINITY);
            let row = p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, rhs);
            (p, row)
        };
        let (p, row) = build(10.0);
        let s = p.solve().unwrap();
        let dual = s.dual(row).unwrap();
        let (p2, _) = build(10.5);
        let s2 = p2.solve().unwrap();
        assert_close(s2.objective() - s.objective(), dual * 0.5);
    }

    #[test]
    fn warm_start_matches_cold_after_bound_tightening() {
        // The branch-and-bound pattern: solve, tighten one variable's
        // bound, re-solve from the old basis via the dual simplex.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0, 0.0, f64::INFINITY);
        let y = p.add_var(5.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint([(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let opts = SolveOptions::default();
        let (s0, basis) = p.solve_with_basis(&opts, None).unwrap();
        assert_close(s0.objective(), 36.0); // (2, 6)

        // Tighten y ≤ 4: the old optimum y = 6 violates it.
        let mut q = p.clone();
        q.set_bounds(y, 0.0, 4.0);
        let (warm, _) = q.solve_with_basis(&opts, Some(&basis)).unwrap();
        let cold = q.solve().unwrap();
        assert_close(warm.objective(), cold.objective());
        assert!(q.max_violation(warm.values()) < 1e-6);
    }

    #[test]
    fn warm_start_chain_stays_correct() {
        // Repeated tightenings, always reusing the previous basis.
        let build = || {
            let mut p = Problem::new(Sense::Minimize);
            let vars: Vec<_> = (0..6)
                .map(|i| p.add_var(1.0 + i as f64 * 0.5, 0.0, 10.0))
                .collect();
            for i in 0..6 {
                let j = (i + 1) % 6;
                p.add_constraint([(vars[i], 1.0), (vars[j], 1.0)], Relation::Ge, 4.0);
            }
            (p, vars)
        };
        let (mut p, vars) = build();
        let opts = SolveOptions::default();
        let (_, mut basis) = p.solve_with_basis(&opts, None).unwrap();
        for step in 0..4 {
            let v = vars[step % vars.len()];
            let (lo, up) = p.bounds(v);
            p.set_bounds(v, (lo + 1.0).min(up), up);
            let (warm, b) = p.solve_with_basis(&opts, Some(&basis)).unwrap();
            basis = b;
            let cold = p.solve().unwrap();
            assert_close(warm.objective(), cold.objective());
        }
    }

    #[test]
    fn warm_start_detects_infeasibility() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, 0.0, 10.0);
        p.add_constraint([(x, 1.0)], Relation::Ge, 4.0);
        let opts = SolveOptions::default();
        let (_, basis) = p.solve_with_basis(&opts, None).unwrap();
        let mut q = p.clone();
        q.set_bounds(x, 0.0, 2.0); // conflicts with x ≥ 4
        assert_eq!(
            q.solve_with_basis(&opts, Some(&basis)).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn warm_start_with_garbage_basis_falls_back() {
        // A basis from an unrelated problem must not corrupt the result.
        let mut other = Problem::new(Sense::Minimize);
        let a = other.add_var(1.0, 0.0, 1.0);
        other.add_constraint([(a, 1.0)], Relation::Le, 1.0);
        let opts = SolveOptions::default();
        let (_, alien) = other.solve_with_basis(&opts, None).unwrap();

        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, 5.0);
        let y = p.add_var(2.0, 0.0, 5.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 6.0);
        let (sol, _) = p.solve_with_basis(&opts, Some(&alien)).unwrap();
        assert_close(sol.objective(), 11.0); // y = 5, x = 1
    }

    #[test]
    fn stats_report_work_counters() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0, 0.0, f64::INFINITY);
        let y = p.add_var(5.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint([(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let opts = SolveOptions::default();
        let (cold, basis) = p.solve_with_basis(&opts, None).unwrap();
        let cs = cold.stats();
        assert!(cs.iterations > 0);
        assert_eq!(cs.iterations, cold.iterations());
        assert!(!cs.warm_started);
        assert_eq!(cs.dual_iterations, 0);

        // Tighten a bound and reoptimize warm: the dual simplex runs.
        let mut q = p.clone();
        q.set_bounds(y, 0.0, 4.0);
        let (warm, _) = q.solve_with_basis(&opts, Some(&basis)).unwrap();
        let ws = warm.stats();
        assert!(ws.warm_started);
        assert!(ws.dual_iterations > 0);
        assert!(ws.refreshes >= 1, "warm start refactorizes the basis");
        assert!(ws.iterations >= ws.dual_iterations);
    }

    #[test]
    fn refresh_keeps_answers_stable() {
        // Force frequent refreshes and compare against default options.
        let build = || {
            let mut p = Problem::new(Sense::Minimize);
            let n = 12;
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_var(1.0 + (i as f64) * 0.3, 0.0, 4.0))
                .collect();
            for i in 0..n {
                let j = (i + 1) % n;
                p.add_constraint([(vars[i], 1.0), (vars[j], 1.0)], Relation::Ge, 3.0);
            }
            p
        };
        let s_default = build().solve().unwrap();
        let opts = SolveOptions {
            refresh_every: 1,
            ..SolveOptions::default()
        };
        let s_refresh = build().solve_with(&opts).unwrap();
        assert_close(s_default.objective(), s_refresh.objective());
    }

    /// A moderately sized, non-degenerate LP used by the engine A/B
    /// tests below (same construction as
    /// `random_dense_lp_feasible_and_stable`).
    fn medium_lp() -> Problem {
        let n = 30;
        let mut p = Problem::new(Sense::Minimize);
        let vars: Vec<_> = (0..n)
            .map(|j| p.add_var(((j * 7) % 11) as f64 - 3.0, 0.0, 4.0))
            .collect();
        for i in 0..n {
            let terms: Vec<_> = (0..n)
                .filter(|j| (i + j) % 3 == 0)
                .map(|j| (vars[j], 1.0 + ((i * j) % 5) as f64))
                .collect();
            if !terms.is_empty() {
                p.add_constraint(terms, Relation::Ge, 2.0 + (i % 4) as f64);
            }
        }
        p
    }

    #[test]
    fn full_pricing_reports_zero_block_scans() {
        // Regression: full Dantzig sweeps used to be miscounted as
        // partial-pricing block scans. The counter is strictly a
        // partial-pricing counter now.
        let p = medium_lp();
        for pricing in [Pricing::Full, Pricing::Devex] {
            let opts = SolveOptions {
                pricing,
                ..SolveOptions::default()
            };
            let s = p.solve_with(&opts).unwrap();
            assert!(s.iterations() > 0);
            assert_eq!(
                s.stats().pricing_block_scans,
                0,
                "{pricing:?} pricing must not count block scans"
            );
        }
        // Sanity: partial pricing still counts its scans.
        let opts = SolveOptions {
            pricing: Pricing::Partial(4),
            ..SolveOptions::default()
        };
        let s = p.solve_with(&opts).unwrap();
        assert!(s.stats().pricing_block_scans > 0);
    }

    #[test]
    fn devex_pricing_matches_dantzig() {
        let p = medium_lp();
        let reference = p.solve().unwrap();
        for basis in [BasisBackend::SparseLu, BasisBackend::Dense] {
            let opts = SolveOptions {
                pricing: Pricing::Devex,
                basis,
                verify: true,
                ..SolveOptions::default()
            };
            let s = p.solve_with(&opts).unwrap();
            assert_close(s.objective(), reference.objective());
            assert!(p.max_violation(s.values()) < 1e-6);
        }
    }

    #[test]
    fn devex_survives_degenerate_and_worst_case_lps() {
        // Beale's cycling example and the Klee–Minty cube under devex:
        // the Bland fallback and weight maintenance must coexist.
        let mut beale = Problem::new(Sense::Minimize);
        let x1 = beale.add_var(-0.75, 0.0, f64::INFINITY);
        let x2 = beale.add_var(150.0, 0.0, f64::INFINITY);
        let x3 = beale.add_var(-0.02, 0.0, f64::INFINITY);
        let x4 = beale.add_var(6.0, 0.0, f64::INFINITY);
        beale.add_constraint(
            [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        beale.add_constraint(
            [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        beale.add_constraint([(x3, 1.0)], Relation::Le, 1.0);
        let opts = SolveOptions {
            pricing: Pricing::Devex,
            verify: true,
            ..SolveOptions::default()
        };
        assert_close(beale.solve_with(&opts).unwrap().objective(), -0.05);
    }

    #[test]
    fn harris_ratio_matches_textbook() {
        let p = medium_lp();
        let reference = p.solve().unwrap();
        let opts = SolveOptions {
            ratio: RatioTest::Harris,
            verify: true,
            ..SolveOptions::default()
        };
        let s = p.solve_with(&opts).unwrap();
        assert_close(s.objective(), reference.objective());
        assert!(p.max_violation(s.values()) < 1e-6);
    }

    #[test]
    fn harris_handles_degenerate_bases() {
        // Beale again: heavily degenerate, so the Harris second pass
        // repeatedly faces zero-length steps.
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_var(-0.75, 0.0, f64::INFINITY);
        let x2 = p.add_var(150.0, 0.0, f64::INFINITY);
        let x3 = p.add_var(-0.02, 0.0, f64::INFINITY);
        let x4 = p.add_var(6.0, 0.0, f64::INFINITY);
        p.add_constraint(
            [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint([(x3, 1.0)], Relation::Le, 1.0);
        let opts = SolveOptions {
            ratio: RatioTest::Harris,
            verify: true,
            ..SolveOptions::default()
        };
        assert_close(p.solve_with(&opts).unwrap().objective(), -0.05);
    }

    #[test]
    fn forrest_tomlin_matches_product_form() {
        let p = medium_lp();
        let reference = p.solve().unwrap();
        // A long refresh cadence forces many in-place FT updates between
        // refactorizations.
        let opts = SolveOptions {
            factor_update: FactorUpdate::ForrestTomlin,
            refresh_every: 1000,
            verify: true,
            ..SolveOptions::default()
        };
        let s = p.solve_with(&opts).unwrap();
        assert_close(s.objective(), reference.objective());
        let st = s.stats();
        assert!(st.ft_spikes > 0, "expected FT updates, got {st:?}");
        assert_eq!(st.eta_updates, 0, "FT backend must not grow an eta file");
    }

    #[test]
    fn forrest_tomlin_with_frequent_refresh() {
        let p = medium_lp();
        let reference = p.solve().unwrap();
        let opts = SolveOptions {
            factor_update: FactorUpdate::ForrestTomlin,
            refresh_every: 2,
            verify: true,
            ..SolveOptions::default()
        };
        let s = p.solve_with(&opts).unwrap();
        assert_close(s.objective(), reference.objective());
    }

    #[test]
    fn scaling_recovers_ill_conditioned_lp() {
        // Coefficients spanning nine orders of magnitude; equilibration
        // must leave the optimum (and its duals) unchanged.
        let build = || {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var(1e4, 0.0, 1e6);
            let y = p.add_var(3e-3, 0.0, 1e6);
            let z = p.add_var(7.0, 0.0, 1e6);
            p.add_constraint([(x, 2e5), (y, 4e-4), (z, 1.0)], Relation::Ge, 3e2);
            p.add_constraint([(x, 5e4), (y, 8e-5)], Relation::Ge, 1e1);
            p.add_constraint([(y, 1e-3), (z, 6e3)], Relation::Ge, 2.0);
            p
        };
        let p = build();
        let reference = p.solve().unwrap();
        let opts = SolveOptions {
            scale: true,
            verify: true,
            ..SolveOptions::default()
        };
        let s = p.solve_with(&opts).unwrap();
        let rel = 1.0 + reference.objective().abs();
        assert!((s.objective() - reference.objective()).abs() < 1e-6 * rel);
        assert!(s.stats().scaling_passes >= 1);
        assert_eq!(
            s.duals().map(<[f64]>::len),
            reference.duals().map(<[f64]>::len)
        );
    }

    #[test]
    fn scaling_composes_with_warm_start() {
        // Basis snapshots are status-only, so they transfer between the
        // original and equilibrated problems unchanged.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3e3, 0.0, f64::INFINITY);
        let y = p.add_var(5e3, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1e-2)], Relation::Le, 4e-2);
        p.add_constraint([(y, 2e2)], Relation::Le, 12e2);
        p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let opts = SolveOptions {
            scale: true,
            verify: true,
            ..SolveOptions::default()
        };
        let (s0, basis) = p.solve_with_basis(&opts, None).unwrap();
        assert_close(s0.objective(), 36e3);
        let mut q = p.clone();
        q.set_bounds(y, 0.0, 4.0);
        let (warm, _) = q.solve_with_basis(&opts, Some(&basis)).unwrap();
        let cold = q.solve().unwrap();
        assert_close(warm.objective(), cold.objective());
    }

    #[test]
    fn engine_combination_agrees_across_warm_start_chain() {
        // Devex + Harris + Forrest–Tomlin together, through the
        // branch-and-bound-style tighten/re-solve pattern.
        let build = || {
            let mut p = Problem::new(Sense::Minimize);
            let vars: Vec<_> = (0..6)
                .map(|i| p.add_var(1.0 + i as f64 * 0.5, 0.0, 10.0))
                .collect();
            for i in 0..6 {
                let j = (i + 1) % 6;
                p.add_constraint([(vars[i], 1.0), (vars[j], 1.0)], Relation::Ge, 4.0);
            }
            (p, vars)
        };
        let (mut p, vars) = build();
        let opts = SolveOptions {
            pricing: Pricing::Devex,
            ratio: RatioTest::Harris,
            factor_update: FactorUpdate::ForrestTomlin,
            verify: true,
            ..SolveOptions::default()
        };
        let (_, mut basis) = p.solve_with_basis(&opts, None).unwrap();
        for step in 0..4 {
            let v = vars[step % vars.len()];
            let (lo, up) = p.bounds(v);
            p.set_bounds(v, (lo + 1.0).min(up), up);
            let (warm, b) = p.solve_with_basis(&opts, Some(&basis)).unwrap();
            basis = b;
            let cold = p.solve().unwrap();
            assert_close(warm.objective(), cold.objective());
        }
    }

    #[test]
    fn partial_pricing_cursor_survives_bland_episode() {
        // Tiny blocks on Beale's example: the rotating cursor passes
        // through a degenerate streak (Bland fallback) and must resume
        // cleanly — correct optimum, block scans actually counted.
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_var(-0.75, 0.0, f64::INFINITY);
        let x2 = p.add_var(150.0, 0.0, f64::INFINITY);
        let x3 = p.add_var(-0.02, 0.0, f64::INFINITY);
        let x4 = p.add_var(6.0, 0.0, f64::INFINITY);
        p.add_constraint(
            [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint([(x3, 1.0)], Relation::Le, 1.0);
        let opts = SolveOptions {
            pricing: Pricing::Partial(2),
            bland_after: 3,
            verify: true,
            ..SolveOptions::default()
        };
        let s = p.solve_with(&opts).unwrap();
        assert_close(s.objective(), -0.05);
        assert!(s.stats().pricing_block_scans > 0);
    }

    #[test]
    fn partial_pricing_cursor_survives_warm_start_resolves() {
        let build = || {
            let mut p = Problem::new(Sense::Minimize);
            let vars: Vec<_> = (0..8)
                .map(|i| p.add_var(1.0 + i as f64 * 0.25, 0.0, 10.0))
                .collect();
            for i in 0..8 {
                let j = (i + 1) % 8;
                p.add_constraint([(vars[i], 1.0), (vars[j], 1.0)], Relation::Ge, 4.0);
            }
            (p, vars)
        };
        let (mut p, vars) = build();
        let opts = SolveOptions {
            pricing: Pricing::Partial(3),
            verify: true,
            ..SolveOptions::default()
        };
        let (_, mut basis) = p.solve_with_basis(&opts, None).unwrap();
        for step in 0..3 {
            let v = vars[step % vars.len()];
            let (lo, up) = p.bounds(v);
            p.set_bounds(v, (lo + 1.0).min(up), up);
            let (warm, b) = p.solve_with_basis(&opts, Some(&basis)).unwrap();
            basis = b;
            assert_close(warm.objective(), p.solve().unwrap().objective());
        }
    }
}
