//! Linear and mixed-integer linear programming, self-contained.
//!
//! This crate is the optimization substrate for the Metis reproduction:
//! the paper ("Towards Maximal Service Profit in Geo-Distributed Clouds",
//! ICDCS 2019) calls Gurobi for every LP/ILP; this crate replaces it with
//!
//! * a **bounded-variable revised simplex** over sparse columns
//!   ([`Problem::solve`]), and
//! * a **branch-and-bound MILP solver** on top of it ([`solve_ilp`]).
//!
//! # Quick start
//!
//! ```
//! use metis_lp::{Problem, Relation, Sense};
//!
//! // max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var(3.0, 0.0, f64::INFINITY);
//! let y = p.add_var(5.0, 0.0, f64::INFINITY);
//! p.add_constraint([(x, 1.0)], Relation::Le, 4.0);
//! p.add_constraint([(y, 2.0)], Relation::Le, 12.0);
//! p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
//!
//! let sol = p.solve()?;
//! assert!((sol.objective() - 36.0).abs() < 1e-6);
//! # Ok::<(), metis_lp::SolveError>(())
//! ```
//!
//! Integer programs mark variables with [`Problem::add_int_var`] and go
//! through [`solve_ilp`], which supports node/time limits and reports the
//! proven bound so callers can use time-limited runs as baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod factor;
pub mod ilp;
pub mod matrix;
mod model;
pub mod mps;
mod presolve;
mod simplex;
mod solution;
pub mod verify;

pub use error::SolveError;
pub use ilp::{solve_ilp, solve_ilp_with_start, IlpOptions, IlpSolution, IlpStatus};
pub use model::{Problem, Relation, RowId, Sense, VarId};
pub use presolve::{
    equilibrate, presolve, presolve_and_solve, PresolveReport, Restoration, Scaling,
};
pub use simplex::{Basis, BasisBackend, FactorUpdate, Pricing, RatioTest, SolveOptions};
pub use solution::{LpTrace, Solution, SolveStats, TracePricing, TraceRecord};
pub use verify::{certify, Certificate};
