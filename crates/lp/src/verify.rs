//! Independent certification of reported LP solutions.
//!
//! A simplex solve does a sparse LU refactorization plus FTRAN/BTRAN
//! triangular solves per pivot (or `O(m²)` dense-inverse updates on the
//! [`crate::BasisBackend::Dense`] fallback); checking its answer is one
//! sparse matrix-vector product. This module recomputes, from the
//! [`Problem`] alone, everything a [`Solution`] claims — row activities,
//! bound satisfaction, and the objective value — and compares against
//! the reported figures. It shares no state with the solver: the row
//! activities are accumulated straight from the entry list, so a bug in
//! the solver's incremental basis updates cannot also hide in the check.
//!
//! Certification runs automatically after every solve under
//! `debug_assertions` or when [`SolveOptions::verify`] is set (which
//! `MetisConfig::audit` turns on for every LP the alternation issues).
//!
//! When [`SolveOptions::scale`] is on, the solver equilibrates the
//! problem, solves the scaled copy, and unscales the answer *before*
//! this module ever sees it: the certificate is always taken against
//! the original problem's coefficients, so a bug in the scaling
//! round-trip is caught here rather than masked by certifying the
//! scaled system against itself.
//!
//! [`SolveOptions::verify`]: crate::SolveOptions::verify
//! [`SolveOptions::scale`]: crate::SolveOptions::scale

use crate::error::SolveError;
use crate::model::{Problem, Relation};
use crate::solution::Solution;

/// The recomputed facts about one reported solution.
///
/// Produced by [`certify`]; [`Certificate::accepted`] is the verdict.
#[derive(Clone, Copy, Debug)]
pub struct Certificate {
    /// Largest `Ax − b` residual in the violating direction over all
    /// rows (`0.0` when every row holds).
    pub max_row_residual: f64,
    /// Largest excursion of any variable outside `[lower, upper]`.
    pub max_bound_violation: f64,
    /// Objective value the solver reported.
    pub reported_objective: f64,
    /// Objective recomputed as `c·x` from the problem's coefficients.
    pub recomputed_objective: f64,
    /// Tolerance the verdict was taken at.
    pub tol: f64,
}

impl Certificate {
    /// Whether the solution passes: residuals and bound violations within
    /// `tol`, and the reported objective within `tol·(1 + |c·x|)` of the
    /// recomputed one.
    pub fn accepted(&self) -> bool {
        self.max_row_residual <= self.tol
            && self.max_bound_violation <= self.tol
            && self.objective_gap() <= self.tol * (1.0 + self.recomputed_objective.abs())
    }

    /// Absolute gap between reported and recomputed objective.
    pub fn objective_gap(&self) -> f64 {
        (self.reported_objective - self.recomputed_objective).abs()
    }
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "row residual {:.3e}, bound violation {:.3e}, objective gap {:.3e} (tol {:.1e})",
            self.max_row_residual,
            self.max_bound_violation,
            self.objective_gap(),
            self.tol
        )
    }
}

/// Recomputes the certificate for `solution` against `problem` at `tol`.
///
/// Never fails; inspect [`Certificate::accepted`] for the verdict, or use
/// [`verify`] for the `Result` form.
pub fn certify(problem: &Problem, solution: &Solution, tol: f64) -> Certificate {
    let x = solution.values();
    let mut activity = vec![0.0; problem.num_constraints()];
    for (col, entries) in problem.entries_by_column().iter().enumerate() {
        let xi = x[col];
        for &(row, coeff) in entries {
            activity[row] += coeff * xi;
        }
    }
    let mut max_row_residual: f64 = 0.0;
    let relations = problem.row_relations();
    let rhs = problem.row_rhs();
    for ((a, rel), b) in activity.iter().zip(&relations).zip(&rhs) {
        let residual = match rel {
            Relation::Le => a - b,
            Relation::Ge => b - a,
            Relation::Eq => (a - b).abs(),
        };
        max_row_residual = max_row_residual.max(residual);
    }
    let mut max_bound_violation: f64 = 0.0;
    for (i, &xi) in x.iter().enumerate() {
        let (lo, up) = problem.bounds(problem.var(i));
        max_bound_violation = max_bound_violation.max(lo - xi).max(xi - up);
    }
    Certificate {
        max_row_residual,
        max_bound_violation,
        reported_objective: solution.objective(),
        recomputed_objective: problem.eval_objective(x),
        tol,
    }
}

/// [`certify`] with a `Result` verdict, for use on solver return paths.
///
/// # Errors
///
/// Returns [`SolveError::CertificateRejected`] when the recomputation
/// disagrees with the reported solution beyond `tol`.
pub fn verify(problem: &Problem, solution: &Solution, tol: f64) -> Result<Certificate, SolveError> {
    let cert = certify(problem, solution, tol);
    if cert.accepted() {
        Ok(cert)
    } else {
        Err(SolveError::CertificateRejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::simplex::SolveOptions;

    fn toy() -> Problem {
        // max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0, 0.0, f64::INFINITY);
        let y = p.add_var(5.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint([(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        p
    }

    #[test]
    fn accepts_a_genuine_optimum() {
        let p = toy();
        let s = p.solve().unwrap();
        let cert = certify(&p, &s, 1e-6);
        assert!(cert.accepted(), "{cert}");
        assert!(cert.objective_gap() < 1e-9);
    }

    /// A solution with the given point and reported objective, as if a
    /// (buggy) solver had returned it.
    fn claimed(values: Vec<f64>, objective: f64) -> Solution {
        Solution::new(objective, values, 0)
    }

    #[test]
    fn rejects_an_infeasible_point() {
        let p = toy();
        // x = 100 violates both x ≤ 4 and 3x + 2y ≤ 18.
        let s = claimed(vec![100.0, 0.0], 300.0);
        let cert = certify(&p, &s, 1e-6);
        assert!(!cert.accepted());
        assert!(cert.max_row_residual > 1.0);
        assert!(matches!(
            verify(&p, &s, 1e-6),
            Err(SolveError::CertificateRejected)
        ));
    }

    #[test]
    fn rejects_a_bound_excursion() {
        let mut p = toy();
        let z = p.add_var(0.0, 0.0, 1.0);
        let optimum = p.solve().unwrap();
        let mut x = optimum.values().to_vec();
        x[z.index()] = -0.5;
        let s = claimed(x, optimum.objective());
        let cert = certify(&p, &s, 1e-6);
        assert!(!cert.accepted());
        assert!((cert.max_bound_violation - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_a_misreported_objective() {
        let p = toy();
        let optimum = p.solve().unwrap();
        let s = claimed(optimum.values().to_vec(), optimum.objective() + 1.0);
        let cert = certify(&p, &s, 1e-6);
        assert!(!cert.accepted());
        assert!(cert.max_row_residual <= 1e-9, "point itself is feasible");
        assert!((cert.objective_gap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_solve_certifies_against_the_original_problem() {
        // The solution returned by a scaled solve must already be in the
        // original problem's units; certifying it here against the
        // untouched `Problem` pins that the unscaling round-trip is
        // applied before any caller-visible artifact.
        let p = toy();
        let opts = SolveOptions {
            scale: true,
            verify: true,
            ..SolveOptions::default()
        };
        let s = p.solve_with(&opts).unwrap();
        let cert = certify(&p, &s, 1e-6);
        assert!(cert.accepted(), "{cert}");
        assert!((s.objective() - 36.0).abs() < 1e-6);
    }

    #[test]
    fn verify_option_is_exercised_on_the_solve_path() {
        let p = toy();
        let opts = SolveOptions {
            verify: true,
            ..SolveOptions::default()
        };
        let s = p.solve_with(&opts).unwrap();
        assert!((s.objective() - 36.0).abs() < 1e-6);
    }
}
