//! Problem builder: variables, bounds, linear constraints, objective.

use std::fmt;

use crate::matrix::{CscBuilder, CscMatrix};

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Sense {
    /// Minimize the objective (the solver's native direction).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint relation against its right-hand side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// Identifier of a decision variable within one [`Problem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Column index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a constraint row within one [`Problem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub(crate) u32);

impl RowId {
    /// Row index of this constraint.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
pub(crate) struct VarDef {
    pub lower: f64,
    pub upper: f64,
    pub obj: f64,
    pub integer: bool,
}

#[derive(Clone, Debug)]
pub(crate) struct RowDef {
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear (or mixed-integer linear) program under construction.
///
/// Variables carry bounds and an objective coefficient; constraints are
/// linear expressions compared against a right-hand side. Entries are stored
/// row-wise during construction and converted to a column-major matrix when
/// solving.
///
/// # Examples
///
/// ```
/// use metis_lp::{Problem, Relation, Sense};
///
/// // max x + 2y  s.t.  x + y <= 4, x <= 3, 0 <= x, 0 <= y <= 2
/// let mut p = Problem::new(Sense::Maximize);
/// let x = p.add_var(1.0, 0.0, f64::INFINITY);
/// let y = p.add_var(2.0, 0.0, 2.0);
/// p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
/// p.add_constraint([(x, 1.0)], Relation::Le, 3.0);
/// let sol = p.solve()?;
/// assert!((sol.objective() - 6.0).abs() < 1e-6);
/// # Ok::<(), metis_lp::SolveError>(())
/// ```
#[derive(Clone, Default)]
pub struct Problem {
    sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) rows: Vec<RowDef>,
    /// Triplets (row, col, value), grouped by insertion order.
    pub(crate) entries: Vec<(u32, u32, f64)>,
}

impl Problem {
    /// Creates an empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            ..Problem::default()
        }
    }

    /// The optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// The id of the `index`-th variable (ids are dense, in insertion
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_vars()`.
    pub fn var(&self, index: usize) -> VarId {
        assert!(index < self.vars.len(), "variable {index} out of range");
        VarId(index as u32)
    }

    /// Adds a continuous variable with objective coefficient `obj` and
    /// bounds `lower ≤ x ≤ upper`. Either bound may be infinite.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_var(&mut self, obj: f64, lower: f64, upper: f64) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN variable bound");
        assert!(lower <= upper, "inverted bounds: [{lower}, {upper}]");
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDef {
            lower,
            upper,
            obj,
            integer: false,
        });
        id
    }

    /// Adds an integer-constrained variable (for use with
    /// [`crate::IlpSolver`]; the plain LP solver relaxes integrality).
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_int_var(&mut self, obj: f64, lower: f64, upper: f64) -> VarId {
        let id = self.add_var(obj, lower, upper);
        self.vars[id.index()].integer = true;
        id
    }

    /// Marks an existing variable as integer-constrained.
    pub fn set_integer(&mut self, var: VarId, integer: bool) {
        self.vars[var.index()].integer = integer;
    }

    /// Returns whether `var` is integer-constrained.
    pub fn is_integer(&self, var: VarId) -> bool {
        self.vars[var.index()].integer
    }

    /// Overwrites the bounds of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN variable bound");
        assert!(lower <= upper, "inverted bounds: [{lower}, {upper}]");
        let v = &mut self.vars[var.index()];
        v.lower = lower;
        v.upper = upper;
    }

    /// Returns the `(lower, upper)` bounds of `var`.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        let v = &self.vars[var.index()];
        (v.lower, v.upper)
    }

    /// Overwrites the objective coefficient of `var`.
    pub fn set_objective(&mut self, var: VarId, obj: f64) {
        self.vars[var.index()].obj = obj;
    }

    /// Returns the objective coefficient of `var`.
    pub fn objective_coeff(&self, var: VarId) -> f64 {
        self.vars[var.index()].obj
    }

    /// Adds the linear constraint `Σ coeff · var  (relation)  rhs`.
    ///
    /// Duplicate variables in `terms` are summed.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is NaN or any referenced variable does not exist.
    pub fn add_constraint<I>(&mut self, terms: I, relation: Relation, rhs: f64) -> RowId
    where
        I: IntoIterator<Item = (VarId, f64)>,
    {
        assert!(!rhs.is_nan(), "NaN right-hand side");
        let row = self.rows.len() as u32;
        for (v, c) in terms {
            assert!(
                v.index() < self.vars.len(),
                "constraint references unknown variable"
            );
            if c != 0.0 {
                self.entries.push((row, v.0, c));
            }
        }
        self.rows.push(RowDef { relation, rhs });
        RowId(row)
    }

    /// Overwrites the right-hand side of an existing constraint.
    ///
    /// Together with [`Problem::solve_with_basis`], this supports
    /// warm-started re-solves of a fixed-structure program whose
    /// right-hand sides drift between rounds (e.g. per-round capacity
    /// vectors).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is NaN or `row` does not exist.
    pub fn set_rhs(&mut self, row: RowId, rhs: f64) {
        assert!(!rhs.is_nan(), "NaN right-hand side");
        assert!(row.index() < self.rows.len(), "unknown row");
        self.rows[row.index()].rhs = rhs;
    }

    /// Indices of all integer-constrained variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.integer)
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }

    /// The relation of every constraint, in row order.
    pub fn row_relations(&self) -> Vec<Relation> {
        self.rows.iter().map(|r| r.relation).collect()
    }

    /// The right-hand side of every constraint, in row order.
    pub fn row_rhs(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.rhs).collect()
    }

    /// Constraint entries grouped per column: `result[j]` lists the
    /// `(row index, coefficient)` pairs of variable `j`, coalescing
    /// duplicates, rows ascending.
    pub fn entries_by_column(&self) -> Vec<Vec<(usize, f64)>> {
        let mut per_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.vars.len()];
        for &(r, c, v) in &self.entries {
            per_col[c as usize].push((r as usize, v));
        }
        for col in &mut per_col {
            col.sort_unstable_by_key(|&(r, _)| r);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(col.len());
            for &(r, v) in col.iter() {
                match merged.last_mut() {
                    Some((lr, lv)) if *lr == r => *lv += v,
                    _ => merged.push((r, v)),
                }
            }
            *col = merged;
        }
        per_col
    }

    /// Objective value of a given assignment (in the problem's own sense).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn eval_objective(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Maximum constraint violation of an assignment (0 when feasible),
    /// ignoring integrality.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        let mut act = vec![0.0; self.rows.len()];
        for &(r, c, v) in &self.entries {
            act[r as usize] += v * x[c as usize];
        }
        let mut worst: f64 = 0.0;
        for (row, a) in self.rows.iter().zip(&act) {
            let viol = match row.relation {
                Relation::Le => a - row.rhs,
                Relation::Ge => row.rhs - a,
                Relation::Eq => (a - row.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            worst = worst.max(v.lower - xi).max(xi - v.upper);
        }
        worst
    }

    /// Builds the column-major constraint matrix over the structural
    /// variables (no slacks).
    pub(crate) fn to_csc(&self) -> CscMatrix {
        // Bucket entries per column first.
        let n = self.vars.len();
        let mut per_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(r, c, v) in &self.entries {
            per_col[c as usize].push((r as usize, v));
        }
        let mut b = CscBuilder::new(self.rows.len());
        for col in per_col {
            b.add_col(col);
        }
        b.build()
    }
}

impl fmt::Debug for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Problem")
            .field("sense", &self.sense)
            .field("vars", &self.vars.len())
            .field("rows", &self.rows.len())
            .field("nnz", &self.entries.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basics() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, 1.0);
        let y = p.add_int_var(2.0, 0.0, 5.0);
        assert_eq!(p.num_vars(), 2);
        assert!(!p.is_integer(x));
        assert!(p.is_integer(y));
        assert_eq!(p.integer_vars(), vec![y]);
        p.add_constraint([(x, 1.0), (y, 2.0)], Relation::Le, 4.0);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.bounds(y), (0.0, 5.0));
    }

    #[test]
    fn eval_and_violation() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(3.0, 0.0, 10.0);
        let y = p.add_var(-1.0, 0.0, 10.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 2.0);
        p.add_constraint([(x, 1.0)], Relation::Eq, 1.0);
        let x_feas = [1.0, 1.0];
        assert_eq!(p.eval_objective(&x_feas), 2.0);
        assert_eq!(p.max_violation(&x_feas), 0.0);
        let x_bad = [0.0, 0.5];
        assert!((p.max_violation(&x_bad) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bound_violation_detected() {
        let mut p = Problem::new(Sense::Minimize);
        let _x = p.add_var(0.0, 0.0, 1.0);
        assert!((p.max_violation(&[2.0]) - 1.0).abs() < 1e-12);
        assert!((p.max_violation(&[-0.25]) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inverted bounds")]
    fn inverted_bounds_panic() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var(0.0, 1.0, 0.0);
    }

    #[test]
    fn duplicate_terms_are_summed_in_matrix() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(0.0, 0.0, 1.0);
        p.add_constraint([(x, 1.0), (x, 2.0)], Relation::Le, 3.0);
        let m = p.to_csc();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.col(0).values, &[3.0]);
    }
}
