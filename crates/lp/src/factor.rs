//! Sparse LU factorization of the simplex basis, with product-form
//! (eta) updates between refactorizations.
//!
//! The revised simplex only ever needs two linear maps: `B⁻¹ a`
//! (FTRAN — pivot directions, basic values) and `B⁻ᵀ c` (BTRAN — duals,
//! dual-simplex rows). Instead of materializing a dense `m×m` inverse,
//! this module factors the basis once,
//!
//! ```text
//! B[perm_row[k], perm_col[t]] = (L·U)[k, t]
//! ```
//!
//! with **Markowitz pivot ordering** — each elimination step picks the
//! candidate minimizing the fill-in bound `(col_count−1)·(row_count−1)`,
//! subject to a relative threshold (`|pivot| ≥ 0.1 · max|column|`) for
//! numerical stability — and then answers both maps with four sparse
//! triangular substitutions in `O(nnz(L) + nnz(U) + m)`.
//!
//! Pivot selection is **deterministic**: singleton columns are consumed
//! smallest-index-first, and the Markowitz scan breaks merit ties by
//! `(column, row)` index. Identical bases therefore always produce
//! identical factors, bit for bit, independent of thread count or
//! allocation history.
//!
//! Between refactorizations the basis changes one column per pivot.
//! Rather than refactoring, the solver appends an **eta transform** to
//! an [`EtaFile`] (the product form of the inverse): with entering
//! direction `w = B⁻¹ a_q` replacing slot `r`, the new basis is
//! `B' = B·E` where `E` is the identity with column `r` replaced by
//! `w`. FTRAN applies `E⁻¹` oldest-to-newest after the LU solve; BTRAN
//! applies `E⁻ᵀ` newest-to-oldest before it. The file length is
//! bounded by the refactorization cadence
//! ([`SolveOptions::refresh_every`]), which caps both drift and the
//! per-solve eta cost.
//!
//! [`SolveOptions::refresh_every`]: crate::SolveOptions::refresh_every

use std::collections::BTreeSet;

use crate::error::SolveError;
use crate::matrix::{CscMatrix, SparseTriangular};

/// Relative threshold for Markowitz pivot admissibility: a candidate
/// must reach this fraction of its column's largest magnitude. Balances
/// fill-in freedom (small) against growth control (large); 0.1 is the
/// classical compromise.
const MARKOWITZ_THRESHOLD: f64 = 0.1;

/// A sparse LU factorization of one basis matrix.
///
/// Row indices live in the problem's constraint-row space; column
/// indices are basis *slots* (positions in the simplex's `basis`
/// array). [`LuFactors::ftran`] maps row space → slot space,
/// [`LuFactors::btran`] slot space → row space.
#[derive(Clone, Debug)]
pub(crate) struct LuFactors {
    m: usize,
    /// `perm_row[k]` = constraint row eliminated at step `k`.
    perm_row: Vec<u32>,
    /// `perm_col[k]` = basis slot eliminated at step `k`.
    perm_col: Vec<u32>,
    /// Unit lower factor; group `k` is column `k` (positions `> k`).
    l: SparseTriangular,
    /// Strict upper factor; group `k` is row `k` (positions `> k`).
    u: SparseTriangular,
    /// Diagonal of `U` (the pivots), by elimination step.
    u_diag: Vec<f64>,
}

impl LuFactors {
    /// Factors the basis `B` whose slot `i` is column `basis[i]` of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when no admissible pivot exists
    /// for some elimination step (structurally or numerically singular
    /// basis).
    pub(crate) fn factor(a: &CscMatrix, basis: &[u32], abs_tol: f64) -> Result<Self, SolveError> {
        let m = basis.len();
        // Active submatrix: sorted sparse columns, one per basis slot.
        let mut cols: Vec<Vec<(u32, f64)>> = basis
            .iter()
            .map(|&bj| {
                a.col(bj as usize)
                    .iter()
                    .map(|(r, v)| (r as u32, v))
                    .collect()
            })
            .collect();
        // Row → candidate columns (lazy: may hold stale references that
        // are filtered by a membership check before use).
        let mut row_cols: Vec<Vec<u32>> = vec![Vec::new(); m];
        let mut row_count: Vec<usize> = vec![0; m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, _) in col {
                row_cols[r as usize].push(j as u32);
                row_count[r as usize] += 1;
            }
        }
        let mut col_alive = vec![true; m];
        let mut row_alive = vec![true; m];
        // Singleton columns are fill-free pivots; consume them
        // smallest-index-first for determinism.
        let mut singles: BTreeSet<u32> = cols
            .iter()
            .enumerate()
            .filter(|(_, c)| c.len() == 1)
            .map(|(j, _)| j as u32)
            .collect();

        let mut perm_row: Vec<u32> = Vec::with_capacity(m);
        let mut perm_col: Vec<u32> = Vec::with_capacity(m);
        let mut row_pos: Vec<u32> = vec![0; m];
        let mut col_pos: Vec<u32> = vec![0; m];
        let mut l_groups: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        let mut u_groups: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        let mut u_diag: Vec<f64> = Vec::with_capacity(m);
        let mut merged: Vec<(u32, f64)> = Vec::new();

        for k in 0..m {
            // --- Pivot selection ---------------------------------------
            let mut pick: Option<(usize, usize)> = None; // (col, entry index)
            while let Some(j) = singles.pop_first() {
                let j = j as usize;
                if col_alive[j] && cols[j].len() == 1 && cols[j][0].1.abs() >= abs_tol {
                    pick = Some((j, 0));
                    break;
                }
                // Stale or numerically unusable: leave it to the scan.
            }
            if pick.is_none() {
                // Full Markowitz scan, ascending column then row index so
                // merit ties resolve deterministically.
                let mut best_merit = usize::MAX;
                'cols: for (j, col) in cols.iter().enumerate() {
                    if !col_alive[j] {
                        continue;
                    }
                    if col.is_empty() {
                        return Err(SolveError::Singular);
                    }
                    let colmax = col.iter().fold(0.0f64, |mx, &(_, v)| mx.max(v.abs()));
                    if colmax < abs_tol {
                        continue;
                    }
                    let admissible = (MARKOWITZ_THRESHOLD * colmax).max(abs_tol);
                    let cc = col.len();
                    for (e, &(r, v)) in col.iter().enumerate() {
                        if v.abs() < admissible {
                            continue;
                        }
                        let merit = (cc - 1) * (row_count[r as usize] - 1);
                        if merit < best_merit {
                            best_merit = merit;
                            pick = Some((j, e));
                            if merit == 0 {
                                // Global minimum; earlier (col, row) pairs
                                // were already scanned, so ties are settled.
                                break 'cols;
                            }
                        }
                    }
                }
            }
            let Some((pj, pe)) = pick else {
                return Err(SolveError::Singular);
            };

            // --- Elimination -------------------------------------------
            let pivot_col = std::mem::take(&mut cols[pj]);
            let (pr, pv) = pivot_col[pe];
            let pr = pr as usize;
            perm_col.push(pj as u32);
            perm_row.push(pr as u32);
            col_pos[pj] = k as u32;
            row_pos[pr] = k as u32;
            col_alive[pj] = false;
            row_alive[pr] = false;
            u_diag.push(pv);
            for &(r, _) in &pivot_col {
                row_count[r as usize] = row_count[r as usize].saturating_sub(1);
            }
            // Multiplier column: every remaining entry of the pivot column.
            let lower: Vec<(u32, f64)> = pivot_col
                .iter()
                .filter(|&&(r, _)| r as usize != pr)
                .copied()
                .collect();
            l_groups.push(lower.iter().map(|&(r, v)| (r, v / pv)).collect());

            // Columns holding row `pr` receive the rank-1 update; collect
            // candidates in ascending order (determinism) and drop stale
            // references.
            let mut cands = std::mem::take(&mut row_cols[pr]);
            cands.sort_unstable();
            cands.dedup();
            let mut u_row: Vec<(u32, f64)> = Vec::new();
            for &j2 in &cands {
                let j2 = j2 as usize;
                if !col_alive[j2] {
                    continue;
                }
                let Ok(pos) = cols[j2].binary_search_by_key(&(pr as u32), |&(r, _)| r) else {
                    continue; // stale candidate
                };
                let uval = cols[j2][pos].1;
                cols[j2].remove(pos);
                u_row.push((j2 as u32, uval));
                let mult = uval / pv;
                if mult != 0.0 && !lower.is_empty() {
                    // cols[j2] -= mult · lower, by sorted merge.
                    merged.clear();
                    let c = &cols[j2];
                    let (mut x, mut y) = (0usize, 0usize);
                    while x < c.len() && y < lower.len() {
                        let (cr, cv) = c[x];
                        let (lr, lv) = lower[y];
                        if cr == lr {
                            let nv = cv - mult * lv;
                            if nv != 0.0 {
                                merged.push((cr, nv));
                            } else {
                                // Exact cancellation: the entry is gone.
                                row_count[cr as usize] = row_count[cr as usize].saturating_sub(1);
                            }
                            x += 1;
                            y += 1;
                        } else if cr < lr {
                            merged.push((cr, cv));
                            x += 1;
                        } else {
                            let nv = -mult * lv;
                            if nv != 0.0 {
                                merged.push((lr, nv));
                                row_count[lr as usize] += 1;
                                row_cols[lr as usize].push(j2 as u32);
                            }
                            y += 1;
                        }
                    }
                    while x < c.len() {
                        merged.push(c[x]);
                        x += 1;
                    }
                    while y < lower.len() {
                        let (lr, lv) = lower[y];
                        let nv = -mult * lv;
                        if nv != 0.0 {
                            merged.push((lr, nv));
                            row_count[lr as usize] += 1;
                            row_cols[lr as usize].push(j2 as u32);
                        }
                        y += 1;
                    }
                    cols[j2].clear();
                    cols[j2].extend_from_slice(&merged);
                }
                if cols[j2].is_empty() {
                    // An alive column with no alive rows can never pivot.
                    return Err(SolveError::Singular);
                }
                if cols[j2].len() == 1 {
                    singles.insert(j2 as u32);
                }
            }
            u_groups.push(u_row);
        }

        // Remap the factors from original indices into elimination
        // positions, sorted so substitution order (and therefore float
        // summation order) is reproducible.
        for group in &mut l_groups {
            for e in group.iter_mut() {
                e.0 = row_pos[e.0 as usize];
            }
            group.sort_unstable_by_key(|&(p, _)| p);
        }
        for group in &mut u_groups {
            for e in group.iter_mut() {
                e.0 = col_pos[e.0 as usize];
            }
            group.sort_unstable_by_key(|&(p, _)| p);
        }
        let _ = row_alive;
        Ok(LuFactors {
            m,
            perm_row,
            perm_col,
            l: SparseTriangular::from_groups(l_groups),
            u: SparseTriangular::from_groups(u_groups),
            u_diag,
        })
    }

    /// Factors of the `m×m` identity: a placeholder for a solver whose
    /// basis has not been factorized yet.
    pub(crate) fn identity(m: usize) -> Self {
        LuFactors {
            m,
            perm_row: (0..m as u32).collect(),
            perm_col: (0..m as u32).collect(),
            l: SparseTriangular::from_groups(vec![Vec::new(); m]),
            u: SparseTriangular::from_groups(vec![Vec::new(); m]),
            u_diag: vec![1.0; m],
        }
    }

    /// Nonzeros stored in the `L` factor (off-diagonal).
    pub(crate) fn l_nnz(&self) -> usize {
        self.l.nnz()
    }

    /// Nonzeros stored in the `U` factor (including the diagonal).
    pub(crate) fn u_nnz(&self) -> usize {
        self.u.nnz() + self.u_diag.len()
    }

    /// FTRAN: solves `B x = b`, reading `b` in constraint-row space and
    /// writing `x` in basis-slot space. `work` is caller-owned scratch
    /// of length `m`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is shorter than the basis dimension.
    pub(crate) fn ftran(&self, b: &[f64], x: &mut [f64], work: &mut [f64]) {
        for k in 0..self.m {
            work[k] = b[self.perm_row[k] as usize];
        }
        self.l.solve_forward(None, work);
        self.u.solve_backward(Some(&self.u_diag), work);
        for k in 0..self.m {
            x[self.perm_col[k] as usize] = work[k];
        }
    }

    /// BTRAN: solves `Bᵀ y = c`, reading `c` in basis-slot space and
    /// writing `y` in constraint-row space. `work` is caller-owned
    /// scratch of length `m`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is shorter than the basis dimension.
    pub(crate) fn btran(&self, c: &[f64], y: &mut [f64], work: &mut [f64]) {
        for k in 0..self.m {
            work[k] = c[self.perm_col[k] as usize];
        }
        self.u.solve_forward(Some(&self.u_diag), work);
        self.l.solve_backward(None, work);
        for k in 0..self.m {
            y[self.perm_row[k] as usize] = work[k];
        }
    }
}

/// One product-form update: the identity with slot column `slot`
/// replaced by the entering direction `w = B⁻¹ a_q`.
#[derive(Clone, Debug)]
struct Eta {
    slot: u32,
    pivot: f64,
    /// Nonzeros of `w` excluding the pivot slot.
    entries: Vec<(u32, f64)>,
}

/// The eta file: product-form updates appended since the last
/// refactorization, applied around the LU solves.
#[derive(Clone, Debug, Default)]
pub(crate) struct EtaFile {
    etas: Vec<Eta>,
}

impl EtaFile {
    /// Drops all updates (after a refactorization).
    pub(crate) fn clear(&mut self) {
        self.etas.clear();
    }

    /// Records the pivot that replaced basis slot `slot` with the column
    /// whose direction is `w` (dense, slot space, `w[slot]` = pivot).
    pub(crate) fn push(&mut self, slot: usize, w: &[f64]) {
        let entries: Vec<(u32, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != slot && v != 0.0)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        self.etas.push(Eta {
            slot: slot as u32,
            pivot: w[slot],
            entries,
        });
    }

    /// Applies `Eₖ⁻¹ ⋯ E₁⁻¹` in place (FTRAN tail), oldest update first.
    pub(crate) fn ftran(&self, x: &mut [f64]) {
        for eta in &self.etas {
            let slot = eta.slot as usize;
            let t = x[slot] / eta.pivot;
            x[slot] = t;
            if t != 0.0 {
                for &(i, v) in &eta.entries {
                    x[i as usize] -= v * t;
                }
            }
        }
    }

    /// Applies `E₁⁻ᵀ ⋯ Eₖ⁻ᵀ` in place (BTRAN head), newest update first.
    pub(crate) fn btran(&self, x: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let slot = eta.slot as usize;
            let mut acc = 0.0;
            for &(i, v) in &eta.entries {
                acc += v * x[i as usize];
            }
            x[slot] = (x[slot] - acc) / eta.pivot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CscBuilder;

    /// Dense reference multiply `B x` for checking the factors.
    fn mul(a: &CscMatrix, basis: &[u32], x: &[f64]) -> Vec<f64> {
        let m = basis.len();
        let mut out = vec![0.0; m];
        for (slot, &bj) in basis.iter().enumerate() {
            for (r, v) in a.col(bj as usize).iter() {
                out[r] += v * x[slot];
            }
        }
        out
    }

    fn mul_t(a: &CscMatrix, basis: &[u32], y: &[f64]) -> Vec<f64> {
        basis
            .iter()
            .map(|&bj| a.col(bj as usize).iter().map(|(r, v)| v * y[r]).sum())
            .collect()
    }

    fn check_roundtrip(a: &CscMatrix, basis: &[u32]) {
        let m = basis.len();
        let lu = LuFactors::factor(a, basis, 1e-12).expect("nonsingular");
        let mut work = vec![0.0; m];
        // FTRAN: B x = b  →  mul(basis, x) == b.
        let b: Vec<f64> = (0..m).map(|i| (i as f64) * 0.7 - 1.3).collect();
        let mut x = vec![0.0; m];
        lu.ftran(&b, &mut x, &mut work);
        let back = mul(a, basis, &x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8, "FTRAN residual {got} vs {want}");
        }
        // BTRAN: Bᵀ y = c  →  mul_t(basis, y) == c.
        let c: Vec<f64> = (0..m).map(|i| 0.4 * (i as f64) + 0.9).collect();
        let mut y = vec![0.0; m];
        lu.btran(&c, &mut y, &mut work);
        let back = mul_t(a, basis, &y);
        for (got, want) in back.iter().zip(&c) {
            assert!((got - want).abs() < 1e-8, "BTRAN residual {got} vs {want}");
        }
    }

    #[test]
    fn identity_basis() {
        let mut b = CscBuilder::new(3);
        for i in 0..3 {
            b.add_col([(i, 1.0)]);
        }
        let a = b.build();
        check_roundtrip(&a, &[0, 1, 2]);
    }

    #[test]
    fn permuted_scaled_diagonal() {
        let mut b = CscBuilder::new(3);
        b.add_col([(2, -4.0)]);
        b.add_col([(0, 0.5)]);
        b.add_col([(1, 3.0)]);
        let a = b.build();
        check_roundtrip(&a, &[0, 1, 2]);
    }

    #[test]
    fn dense_small_block() {
        // A 3×3 with every entry nonzero; forces genuine elimination.
        let mut b = CscBuilder::new(3);
        b.add_col([(0, 2.0), (1, 1.0), (2, 1.0)]);
        b.add_col([(0, 1.0), (1, 3.0), (2, 2.0)]);
        b.add_col([(0, 1.0), (1, 1.0), (2, 4.0)]);
        let a = b.build();
        check_roundtrip(&a, &[0, 1, 2]);
    }

    #[test]
    fn mixed_slack_and_structural() {
        // Typical simplex basis: a few structural columns, rest slacks.
        let m = 6;
        let mut b = CscBuilder::new(m);
        b.add_col([(0, 1.0), (3, 2.0), (5, -1.0)]);
        b.add_col([(1, 4.0), (2, 1.0)]);
        for i in 0..m {
            b.add_col([(i, 1.0)]);
        }
        let a = b.build();
        // Columns 2..8 are the slacks e₀..e₅; pick bases covering all rows.
        check_roundtrip(&a, &[0, 1, 6, 7, 4, 5]);
        check_roundtrip(&a, &[0, 6, 1, 4, 5, 7]);
    }

    #[test]
    fn singular_detected() {
        let mut b = CscBuilder::new(2);
        b.add_col([(0, 1.0), (1, 1.0)]);
        b.add_col([(0, 2.0), (1, 2.0)]);
        let a = b.build();
        assert_eq!(
            LuFactors::factor(&a, &[0, 1], 1e-12).unwrap_err(),
            SolveError::Singular
        );
    }

    #[test]
    fn structurally_singular_detected() {
        let mut b = CscBuilder::new(2);
        b.add_col([(0, 1.0)]);
        b.add_col([(0, 2.0)]);
        let a = b.build();
        assert_eq!(
            LuFactors::factor(&a, &[0, 1], 1e-12).unwrap_err(),
            SolveError::Singular
        );
    }

    #[test]
    fn empty_basis() {
        let a = CscBuilder::new(0).build();
        let lu = LuFactors::factor(&a, &[], 1e-12).expect("empty is trivially factored");
        let mut x: Vec<f64> = Vec::new();
        let mut work: Vec<f64> = Vec::new();
        lu.ftran(&[], &mut x, &mut work);
        assert_eq!(lu.l_nnz(), 0);
    }

    #[test]
    fn eta_file_matches_refactorization() {
        // Replace one basis column via an eta and compare FTRAN/BTRAN
        // against factoring the updated basis directly.
        let m = 4;
        let mut b = CscBuilder::new(m);
        b.add_col([(0, 2.0), (1, 1.0)]);
        b.add_col([(1, 3.0), (2, -1.0)]);
        b.add_col([(2, 1.5), (3, 0.5)]);
        b.add_col([(0, 1.0), (3, 2.0)]);
        b.add_col([(0, 1.0), (2, 2.0), (3, -1.0)]); // entering column (index 4)
        let a = b.build();
        let basis: Vec<u32> = vec![0, 1, 2, 3];
        let lu = LuFactors::factor(&a, &basis, 1e-12).expect("nonsingular");
        let mut work = vec![0.0; m];

        // Direction w = B⁻¹ a₄, then replace slot 1.
        let mut dense = vec![0.0; m];
        for (r, v) in a.col(4).iter() {
            dense[r] = v;
        }
        let mut w = vec![0.0; m];
        lu.ftran(&dense, &mut w, &mut work);
        let mut etas = EtaFile::default();
        etas.push(1, &w);
        assert_eq!(etas.etas.len(), 1);

        let new_basis: Vec<u32> = vec![0, 4, 2, 3];
        let fresh = LuFactors::factor(&a, &new_basis, 1e-12).expect("nonsingular");

        let rhs: Vec<f64> = vec![1.0, -2.0, 0.5, 3.0];
        let mut via_eta = vec![0.0; m];
        lu.ftran(&rhs, &mut via_eta, &mut work);
        etas.ftran(&mut via_eta);
        let mut direct = vec![0.0; m];
        fresh.ftran(&rhs, &mut direct, &mut work);
        for (e, d) in via_eta.iter().zip(&direct) {
            assert!((e - d).abs() < 1e-9, "eta FTRAN {e} vs fresh {d}");
        }

        let cost: Vec<f64> = vec![0.3, -1.0, 2.0, 0.0];
        let mut c_eta = cost.clone();
        etas.btran(&mut c_eta);
        let mut via_eta_y = vec![0.0; m];
        lu.btran(&c_eta, &mut via_eta_y, &mut work);
        let mut direct_y = vec![0.0; m];
        fresh.btran(&cost, &mut direct_y, &mut work);
        for (e, d) in via_eta_y.iter().zip(&direct_y) {
            assert!((e - d).abs() < 1e-9, "eta BTRAN {e} vs fresh {d}");
        }
    }
}
