//! Sparse LU factorization of the simplex basis, with product-form
//! (eta) updates between refactorizations.
//!
//! The revised simplex only ever needs two linear maps: `B⁻¹ a`
//! (FTRAN — pivot directions, basic values) and `B⁻ᵀ c` (BTRAN — duals,
//! dual-simplex rows). Instead of materializing a dense `m×m` inverse,
//! this module factors the basis once,
//!
//! ```text
//! B[perm_row[k], perm_col[t]] = (L·U)[k, t]
//! ```
//!
//! with **Markowitz pivot ordering** — each elimination step picks the
//! candidate minimizing the fill-in bound `(col_count−1)·(row_count−1)`,
//! subject to a relative threshold (`|pivot| ≥ 0.1 · max|column|`) for
//! numerical stability — and then answers both maps with four sparse
//! triangular substitutions in `O(nnz(L) + nnz(U) + m)`.
//!
//! Pivot selection is **deterministic**: singleton columns are consumed
//! smallest-index-first, and the Markowitz scan breaks merit ties by
//! `(column, row)` index. Identical bases therefore always produce
//! identical factors, bit for bit, independent of thread count or
//! allocation history.
//!
//! Between refactorizations the basis changes one column per pivot.
//! Two update strategies keep the factorization usable without a
//! rebuild:
//!
//! * **Product form** ([`EtaFile`]): each pivot appends an eta
//!   transform — with entering direction `w = B⁻¹ a_q` replacing slot
//!   `r`, the new basis is `B' = B·E` where `E` is the identity with
//!   column `r` replaced by `w`. FTRAN applies `E⁻¹` oldest-to-newest
//!   after the LU solve; BTRAN applies `E⁻ᵀ` newest-to-oldest before
//!   it. The `w` vectors are FTRAN outputs and tend to fill in, so the
//!   file grows by up to `m` nonzeros per pivot until the cadence
//!   refresh clears it.
//! * **Forrest–Tomlin** ([`FtFactors`]): the `U` factor is modified
//!   *in place*. The entering column's partial FTRAN (the *spike*
//!   `L⁻¹ a_q`) replaces the leaving column of `U`, a symmetric cyclic
//!   permutation moves it to the last position, and the displaced row
//!   is eliminated against the (still triangular) rows above it. The
//!   elimination multipliers form one sparse **row eta** per pivot —
//!   storage grows with the eliminated row's nonzeros, not with `m` —
//!   which makes [`SolveOptions::refresh_every`] a numerical-stability
//!   cadence rather than a memory bound.
//!
//! [`SolveOptions::refresh_every`]: crate::SolveOptions::refresh_every

use std::collections::BTreeSet;

use crate::error::SolveError;
use crate::matrix::{CscMatrix, SparseTriangular};

/// Relative threshold for Markowitz pivot admissibility: a candidate
/// must reach this fraction of its column's largest magnitude. Balances
/// fill-in freedom (small) against growth control (large); 0.1 is the
/// classical compromise.
const MARKOWITZ_THRESHOLD: f64 = 0.1;

/// A sparse LU factorization of one basis matrix.
///
/// Row indices live in the problem's constraint-row space; column
/// indices are basis *slots* (positions in the simplex's `basis`
/// array). [`LuFactors::ftran`] maps row space → slot space,
/// [`LuFactors::btran`] slot space → row space.
#[derive(Clone, Debug)]
pub(crate) struct LuFactors {
    m: usize,
    /// `perm_row[k]` = constraint row eliminated at step `k`.
    perm_row: Vec<u32>,
    /// `perm_col[k]` = basis slot eliminated at step `k`.
    perm_col: Vec<u32>,
    /// Unit lower factor; group `k` is column `k` (positions `> k`).
    l: SparseTriangular,
    /// Strict upper factor; group `k` is row `k` (positions `> k`).
    u: SparseTriangular,
    /// Diagonal of `U` (the pivots), by elimination step.
    u_diag: Vec<f64>,
}

impl LuFactors {
    /// Factors the basis `B` whose slot `i` is column `basis[i]` of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when no admissible pivot exists
    /// for some elimination step (structurally or numerically singular
    /// basis).
    pub(crate) fn factor(a: &CscMatrix, basis: &[u32], abs_tol: f64) -> Result<Self, SolveError> {
        let m = basis.len();
        // Active submatrix: sorted sparse columns, one per basis slot.
        let mut cols: Vec<Vec<(u32, f64)>> = basis
            .iter()
            .map(|&bj| {
                a.col(bj as usize)
                    .iter()
                    .map(|(r, v)| (r as u32, v))
                    .collect()
            })
            .collect();
        // Row → candidate columns (lazy: may hold stale references that
        // are filtered by a membership check before use).
        let mut row_cols: Vec<Vec<u32>> = vec![Vec::new(); m];
        let mut row_count: Vec<usize> = vec![0; m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, _) in col {
                row_cols[r as usize].push(j as u32);
                row_count[r as usize] += 1;
            }
        }
        let mut col_alive = vec![true; m];
        let mut row_alive = vec![true; m];
        // Singleton columns are fill-free pivots; consume them
        // smallest-index-first for determinism.
        let mut singles: BTreeSet<u32> = cols
            .iter()
            .enumerate()
            .filter(|(_, c)| c.len() == 1)
            .map(|(j, _)| j as u32)
            .collect();

        let mut perm_row: Vec<u32> = Vec::with_capacity(m);
        let mut perm_col: Vec<u32> = Vec::with_capacity(m);
        let mut row_pos: Vec<u32> = vec![0; m];
        let mut col_pos: Vec<u32> = vec![0; m];
        let mut l_groups: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        let mut u_groups: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        let mut u_diag: Vec<f64> = Vec::with_capacity(m);
        let mut merged: Vec<(u32, f64)> = Vec::new();

        for k in 0..m {
            // --- Pivot selection ---------------------------------------
            let mut pick: Option<(usize, usize)> = None; // (col, entry index)
            while let Some(j) = singles.pop_first() {
                let j = j as usize;
                if col_alive[j] && cols[j].len() == 1 && cols[j][0].1.abs() >= abs_tol {
                    pick = Some((j, 0));
                    break;
                }
                // Stale or numerically unusable: leave it to the scan.
            }
            if pick.is_none() {
                // Full Markowitz scan, ascending column then row index so
                // merit ties resolve deterministically.
                let mut best_merit = usize::MAX;
                'cols: for (j, col) in cols.iter().enumerate() {
                    if !col_alive[j] {
                        continue;
                    }
                    if col.is_empty() {
                        return Err(SolveError::Singular);
                    }
                    let colmax = col.iter().fold(0.0f64, |mx, &(_, v)| mx.max(v.abs()));
                    if colmax < abs_tol {
                        continue;
                    }
                    let admissible = (MARKOWITZ_THRESHOLD * colmax).max(abs_tol);
                    let cc = col.len();
                    for (e, &(r, v)) in col.iter().enumerate() {
                        if v.abs() < admissible {
                            continue;
                        }
                        let merit = (cc - 1) * (row_count[r as usize] - 1);
                        if merit < best_merit {
                            best_merit = merit;
                            pick = Some((j, e));
                            if merit == 0 {
                                // Global minimum; earlier (col, row) pairs
                                // were already scanned, so ties are settled.
                                break 'cols;
                            }
                        }
                    }
                }
            }
            let Some((pj, pe)) = pick else {
                return Err(SolveError::Singular);
            };

            // --- Elimination -------------------------------------------
            let pivot_col = std::mem::take(&mut cols[pj]);
            let (pr, pv) = pivot_col[pe];
            let pr = pr as usize;
            perm_col.push(pj as u32);
            perm_row.push(pr as u32);
            col_pos[pj] = k as u32;
            row_pos[pr] = k as u32;
            col_alive[pj] = false;
            row_alive[pr] = false;
            u_diag.push(pv);
            for &(r, _) in &pivot_col {
                row_count[r as usize] = row_count[r as usize].saturating_sub(1);
            }
            // Multiplier column: every remaining entry of the pivot column.
            let lower: Vec<(u32, f64)> = pivot_col
                .iter()
                .filter(|&&(r, _)| r as usize != pr)
                .copied()
                .collect();
            l_groups.push(lower.iter().map(|&(r, v)| (r, v / pv)).collect());

            // Columns holding row `pr` receive the rank-1 update; collect
            // candidates in ascending order (determinism) and drop stale
            // references.
            let mut cands = std::mem::take(&mut row_cols[pr]);
            cands.sort_unstable();
            cands.dedup();
            let mut u_row: Vec<(u32, f64)> = Vec::new();
            for &j2 in &cands {
                let j2 = j2 as usize;
                if !col_alive[j2] {
                    continue;
                }
                let Ok(pos) = cols[j2].binary_search_by_key(&(pr as u32), |&(r, _)| r) else {
                    continue; // stale candidate
                };
                let uval = cols[j2][pos].1;
                cols[j2].remove(pos);
                u_row.push((j2 as u32, uval));
                let mult = uval / pv;
                if mult != 0.0 && !lower.is_empty() {
                    // cols[j2] -= mult · lower, by sorted merge.
                    merged.clear();
                    let c = &cols[j2];
                    let (mut x, mut y) = (0usize, 0usize);
                    while x < c.len() && y < lower.len() {
                        let (cr, cv) = c[x];
                        let (lr, lv) = lower[y];
                        if cr == lr {
                            let nv = cv - mult * lv;
                            if nv != 0.0 {
                                merged.push((cr, nv));
                            } else {
                                // Exact cancellation: the entry is gone.
                                row_count[cr as usize] = row_count[cr as usize].saturating_sub(1);
                            }
                            x += 1;
                            y += 1;
                        } else if cr < lr {
                            merged.push((cr, cv));
                            x += 1;
                        } else {
                            let nv = -mult * lv;
                            if nv != 0.0 {
                                merged.push((lr, nv));
                                row_count[lr as usize] += 1;
                                row_cols[lr as usize].push(j2 as u32);
                            }
                            y += 1;
                        }
                    }
                    while x < c.len() {
                        merged.push(c[x]);
                        x += 1;
                    }
                    while y < lower.len() {
                        let (lr, lv) = lower[y];
                        let nv = -mult * lv;
                        if nv != 0.0 {
                            merged.push((lr, nv));
                            row_count[lr as usize] += 1;
                            row_cols[lr as usize].push(j2 as u32);
                        }
                        y += 1;
                    }
                    cols[j2].clear();
                    cols[j2].extend_from_slice(&merged);
                }
                if cols[j2].is_empty() {
                    // An alive column with no alive rows can never pivot.
                    return Err(SolveError::Singular);
                }
                if cols[j2].len() == 1 {
                    singles.insert(j2 as u32);
                }
            }
            u_groups.push(u_row);
        }

        // Remap the factors from original indices into elimination
        // positions, sorted so substitution order (and therefore float
        // summation order) is reproducible.
        for group in &mut l_groups {
            for e in group.iter_mut() {
                e.0 = row_pos[e.0 as usize];
            }
            group.sort_unstable_by_key(|&(p, _)| p);
        }
        for group in &mut u_groups {
            for e in group.iter_mut() {
                e.0 = col_pos[e.0 as usize];
            }
            group.sort_unstable_by_key(|&(p, _)| p);
        }
        let _ = row_alive;
        Ok(LuFactors {
            m,
            perm_row,
            perm_col,
            l: SparseTriangular::from_groups(l_groups),
            u: SparseTriangular::from_groups(u_groups),
            u_diag,
        })
    }

    /// Factors of the `m×m` identity: a placeholder for a solver whose
    /// basis has not been factorized yet.
    pub(crate) fn identity(m: usize) -> Self {
        LuFactors {
            m,
            perm_row: (0..m as u32).collect(),
            perm_col: (0..m as u32).collect(),
            l: SparseTriangular::from_groups(vec![Vec::new(); m]),
            u: SparseTriangular::from_groups(vec![Vec::new(); m]),
            u_diag: vec![1.0; m],
        }
    }

    /// Nonzeros stored in the `L` factor (off-diagonal).
    pub(crate) fn l_nnz(&self) -> usize {
        self.l.nnz()
    }

    /// Nonzeros stored in the `U` factor (including the diagonal).
    pub(crate) fn u_nnz(&self) -> usize {
        self.u.nnz() + self.u_diag.len()
    }

    /// FTRAN: solves `B x = b`, reading `b` in constraint-row space and
    /// writing `x` in basis-slot space. `work` is caller-owned scratch
    /// of length `m`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is shorter than the basis dimension.
    pub(crate) fn ftran(&self, b: &[f64], x: &mut [f64], work: &mut [f64]) {
        for k in 0..self.m {
            work[k] = b[self.perm_row[k] as usize];
        }
        self.l.solve_forward(None, work);
        self.u.solve_backward(Some(&self.u_diag), work);
        for k in 0..self.m {
            x[self.perm_col[k] as usize] = work[k];
        }
    }

    /// BTRAN: solves `Bᵀ y = c`, reading `c` in basis-slot space and
    /// writing `y` in constraint-row space. `work` is caller-owned
    /// scratch of length `m`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is shorter than the basis dimension.
    pub(crate) fn btran(&self, c: &[f64], y: &mut [f64], work: &mut [f64]) {
        for k in 0..self.m {
            work[k] = c[self.perm_col[k] as usize];
        }
        self.u.solve_forward(Some(&self.u_diag), work);
        self.l.solve_backward(None, work);
        for k in 0..self.m {
            y[self.perm_row[k] as usize] = work[k];
        }
    }
}

/// One product-form update: the identity with slot column `slot`
/// replaced by the entering direction `w = B⁻¹ a_q`.
#[derive(Clone, Debug)]
struct Eta {
    slot: u32,
    pivot: f64,
    /// Nonzeros of `w` excluding the pivot slot.
    entries: Vec<(u32, f64)>,
}

/// The eta file: product-form updates appended since the last
/// refactorization, applied around the LU solves.
#[derive(Clone, Debug, Default)]
pub(crate) struct EtaFile {
    etas: Vec<Eta>,
}

impl EtaFile {
    /// Drops all updates (after a refactorization).
    pub(crate) fn clear(&mut self) {
        self.etas.clear();
    }

    /// Records the pivot that replaced basis slot `slot` with the column
    /// whose direction is `w` (dense, slot space, `w[slot]` = pivot).
    pub(crate) fn push(&mut self, slot: usize, w: &[f64]) {
        let entries: Vec<(u32, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != slot && v != 0.0)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        self.etas.push(Eta {
            slot: slot as u32,
            pivot: w[slot],
            entries,
        });
    }

    /// Applies `Eₖ⁻¹ ⋯ E₁⁻¹` in place (FTRAN tail), oldest update first.
    pub(crate) fn ftran(&self, x: &mut [f64]) {
        for eta in &self.etas {
            let slot = eta.slot as usize;
            let t = x[slot] / eta.pivot;
            x[slot] = t;
            if t != 0.0 {
                for &(i, v) in &eta.entries {
                    x[i as usize] -= v * t;
                }
            }
        }
    }

    /// Applies `E₁⁻ᵀ ⋯ Eₖ⁻ᵀ` in place (BTRAN head), newest update first.
    pub(crate) fn btran(&self, x: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let slot = eta.slot as usize;
            let mut acc = 0.0;
            for &(i, v) in &eta.entries {
                acc += v * x[i as usize];
            }
            x[slot] = (x[slot] - acc) / eta.pivot;
        }
    }
}

/// One Forrest–Tomlin row eta: the multipliers that eliminated the
/// displaced row `target` against the rows still above it.
#[derive(Clone, Debug)]
struct FtEta {
    /// Constraint-row id of the displaced (eliminated) row.
    target: u32,
    /// `(source row id, multiplier)` pairs in elimination order.
    entries: Vec<(u32, f64)>,
}

/// A sparse LU factorization maintained **in place** across basis
/// changes with Forrest–Tomlin updates.
///
/// The `L` factor and row permutation from the initial factorization
/// stay fixed; each [`FtFactors::update`] rewrites one column of `U`
/// with the entering column's partial FTRAN (the *spike* `L⁻¹ a_q`),
/// cyclically permutes that column's diagonal to the last triangular
/// position, and eliminates the displaced row against the rows above
/// it, appending the multipliers as one sparse row eta. Unlike the
/// product-form [`EtaFile`], storage grows with the eliminated rows'
/// nonzeros rather than with one (dense-ish) FTRAN output per pivot.
///
/// Internally `U` is held row-wise in *stable id space*: rows keyed by
/// constraint-row id, columns by basis slot, with `order` tracking the
/// current triangular position of each `(row, slot)` diagonal pair.
/// The cyclic permutation therefore only splices `order` — it never
/// renumbers stored entries. Invariant: every off-diagonal entry of a
/// row sits in a slot whose position is strictly after the row's own.
#[derive(Clone, Debug)]
pub(crate) struct FtFactors {
    m: usize,
    /// `perm_row[k]` = constraint row at `L` position `k` (static).
    perm_row: Vec<u32>,
    /// Unit lower factor from the initial factorization (static).
    l: SparseTriangular,
    /// Off-diagonal entries of row `rid` of `U`, sorted by slot.
    urows: Vec<Vec<(u32, f64)>>,
    /// Diagonal (pivot) of row `rid`.
    udiag: Vec<f64>,
    /// `(row id, slot)` diagonal pairs in triangular order.
    order: Vec<(u32, u32)>,
    /// Current position of each slot's diagonal within `order`.
    pos_of_slot: Vec<u32>,
    /// Rows holding an off-diagonal entry in each slot (lazy: may hold
    /// stale ids that are filtered by a lookup before use).
    col_rows: Vec<Vec<u32>>,
    /// Row etas appended by updates, applied chronologically in FTRAN.
    etas: Vec<FtEta>,
    /// Scratch, constraint-row-id space.
    wid: Vec<f64>,
    /// Scratch, basis-slot space.
    acc: Vec<f64>,
}

impl FtFactors {
    /// Factors the basis `B` whose slot `i` is column `basis[i]` of `a`
    /// and converts `U` into the row-wise stable-id form that updates
    /// mutate.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] exactly when
    /// [`LuFactors::factor`] does.
    pub(crate) fn factor(a: &CscMatrix, basis: &[u32], abs_tol: f64) -> Result<Self, SolveError> {
        let lu = LuFactors::factor(a, basis, abs_tol)?;
        let m = lu.m;
        let mut urows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
        let mut udiag = vec![0.0; m];
        let mut order: Vec<(u32, u32)> = Vec::with_capacity(m);
        let mut pos_of_slot = vec![0u32; m];
        let mut col_rows: Vec<Vec<u32>> = vec![Vec::new(); m];
        for k in 0..m {
            let rid = lu.perm_row[k];
            let slot = lu.perm_col[k];
            udiag[rid as usize] = lu.u_diag[k];
            order.push((rid, slot));
            pos_of_slot[slot as usize] = k as u32;
            // U group `k` is row `k` in elimination-position space;
            // re-key its entries by basis slot.
            let mut row: Vec<(u32, f64)> =
                lu.u.group(k)
                    .map(|(pos, v)| (lu.perm_col[pos as usize], v))
                    .collect();
            row.sort_unstable_by_key(|&(s, _)| s);
            for &(s, _) in &row {
                col_rows[s as usize].push(rid);
            }
            urows[rid as usize] = row;
        }
        Ok(FtFactors {
            m,
            perm_row: lu.perm_row,
            l: lu.l,
            urows,
            udiag,
            order,
            pos_of_slot,
            col_rows,
            etas: Vec::new(),
            wid: vec![0.0; m],
            acc: vec![0.0; m],
        })
    }

    /// Factors of the `m×m` identity: a placeholder for a solver whose
    /// basis has not been factorized yet.
    pub(crate) fn identity(m: usize) -> Self {
        FtFactors {
            m,
            perm_row: (0..m as u32).collect(),
            l: SparseTriangular::from_groups(vec![Vec::new(); m]),
            urows: vec![Vec::new(); m],
            udiag: vec![1.0; m],
            order: (0..m as u32).map(|k| (k, k)).collect(),
            pos_of_slot: (0..m as u32).collect(),
            col_rows: vec![Vec::new(); m],
            etas: Vec::new(),
            wid: vec![0.0; m],
            acc: vec![0.0; m],
        }
    }

    /// Nonzeros stored in the `L` factor (off-diagonal).
    pub(crate) fn l_nnz(&self) -> usize {
        self.l.nnz()
    }

    /// Nonzeros stored in the `U` factor (including the diagonal).
    pub(crate) fn u_nnz(&self) -> usize {
        self.m + self.urows.iter().map(Vec::len).sum::<usize>()
    }

    /// Forrest–Tomlin updates absorbed since the last factorization.
    #[cfg(test)]
    pub(crate) fn updates(&self) -> usize {
        self.etas.len()
    }

    /// Computes the spike `s = Mₖ ⋯ M₁ L⁻¹ b` into `self.wid`
    /// (constraint-row-id space) — an FTRAN stopped before the `U`
    /// back-substitution. `work` is position-space scratch.
    fn spike(&mut self, b: &[f64], work: &mut [f64]) {
        for (w, &rid) in work.iter_mut().zip(&self.perm_row) {
            *w = b[rid as usize];
        }
        self.l.solve_forward(None, work);
        for (w, &rid) in work.iter().zip(&self.perm_row) {
            self.wid[rid as usize] = *w;
        }
        for eta in &self.etas {
            let mut acc = 0.0;
            for &(src, mu) in &eta.entries {
                acc += mu * self.wid[src as usize];
            }
            self.wid[eta.target as usize] -= acc;
        }
    }

    /// FTRAN: solves `B x = b`, reading `b` in constraint-row space and
    /// writing `x` in basis-slot space. `work` is caller-owned scratch
    /// of length `m`; `&mut self` only touches internal scratch.
    ///
    /// # Panics
    ///
    /// Panics if any argument is shorter than the basis dimension.
    pub(crate) fn ftran(&mut self, b: &[f64], x: &mut [f64], work: &mut [f64]) {
        self.spike(b, work);
        // U back-substitution in triangular order: every off-diagonal
        // entry references a later position, already solved.
        for t in (0..self.m).rev() {
            let (rid, slot) = self.order[t];
            let mut val = self.wid[rid as usize];
            for &(s2, v) in &self.urows[rid as usize] {
                val -= v * x[s2 as usize];
            }
            x[slot as usize] = val / self.udiag[rid as usize];
        }
    }

    /// BTRAN: solves `Bᵀ y = c`, reading `c` in basis-slot space and
    /// writing `y` in constraint-row space. `work` is caller-owned
    /// scratch of length `m`; `&mut self` only touches internal
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics if any argument is shorter than the basis dimension.
    pub(crate) fn btran(&mut self, c: &[f64], y: &mut [f64], work: &mut [f64]) {
        // Uᵀ forward substitution with scatter: when position `t` is
        // reached, `acc[slot]` holds the column-`slot` contributions of
        // every earlier row.
        self.acc[..self.m].fill(0.0);
        for t in 0..self.m {
            let (rid, slot) = self.order[t];
            let val = (c[slot as usize] - self.acc[slot as usize]) / self.udiag[rid as usize];
            self.wid[rid as usize] = val;
            if val != 0.0 {
                for &(s2, v) in &self.urows[rid as usize] {
                    self.acc[s2 as usize] += v * val;
                }
            }
        }
        // Transposed row etas, newest first.
        for eta in self.etas.iter().rev() {
            let t = self.wid[eta.target as usize];
            if t != 0.0 {
                for &(src, mu) in &eta.entries {
                    self.wid[src as usize] -= mu * t;
                }
            }
        }
        for (w, &rid) in work.iter_mut().zip(&self.perm_row) {
            *w = self.wid[rid as usize];
        }
        self.l.solve_backward(None, work);
        for (w, &rid) in work.iter().zip(&self.perm_row) {
            y[rid as usize] = *w;
        }
    }

    /// Replaces basis slot `slot` with the column whose dense
    /// constraint-row-space image is `b`, updating `U` in place.
    /// `work` is caller-owned scratch of length `m`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when the post-elimination pivot
    /// falls below `tol`. The factors are then partially mutated and
    /// must not be used again — the caller refactorizes from scratch,
    /// which rebuilds every field.
    ///
    /// # Panics
    ///
    /// Panics if `slot ≥ m` or any slice is shorter than `m`.
    pub(crate) fn update(
        &mut self,
        slot: usize,
        b: &[f64],
        tol: f64,
        work: &mut [f64],
    ) -> Result<(), SolveError> {
        self.spike(b, work);
        let t = self.pos_of_slot[slot] as usize;
        let rho = self.order[t].0 as usize;

        // Drop the replaced column's stored entries.
        let cands = std::mem::take(&mut self.col_rows[slot]);
        for rid in cands {
            let row = &mut self.urows[rid as usize];
            if let Ok(pos) = row.binary_search_by_key(&(slot as u32), |&(s, _)| s) {
                row.remove(pos);
            }
        }
        // The displaced row's off-diagonals await elimination; its new
        // contents are written after the pivot is known.
        let tail = std::mem::take(&mut self.urows[rho]);
        // The spike becomes the new column `slot`. Once the diagonal
        // pair moves to the last position every other row precedes it,
        // so each insertion respects the triangular invariant.
        for rid in 0..self.m {
            if rid == rho {
                continue;
            }
            let v = self.wid[rid];
            if v != 0.0 {
                let row = &mut self.urows[rid];
                let pos = row.partition_point(|&(s, _)| (s as usize) < slot);
                row.insert(pos, (slot as u32, v));
                self.col_rows[slot].push(rid as u32);
            }
        }
        // Symmetric cyclic permutation: splice the diagonal pair to the
        // end and reindex the shifted positions.
        self.order.remove(t);
        self.order.push((rho as u32, slot as u32));
        for p in t..self.m {
            self.pos_of_slot[self.order[p].1 as usize] = p as u32;
        }
        // Eliminate the displaced row (tail + its spike entry) against
        // the rows at positions t..m-1, ascending so each multiplier is
        // final before its row scatters fill into later columns.
        self.acc[..self.m].fill(0.0);
        self.acc[slot] = self.wid[rho];
        for &(s, v) in &tail {
            self.acc[s as usize] = v;
        }
        let mut entries: Vec<(u32, f64)> = Vec::new();
        for c in t..self.m.saturating_sub(1) {
            let (rid_c, slot_c) = self.order[c];
            let val = self.acc[slot_c as usize];
            if val == 0.0 {
                continue;
            }
            let mu = val / self.udiag[rid_c as usize];
            entries.push((rid_c, mu));
            for &(s2, v2) in &self.urows[rid_c as usize] {
                self.acc[s2 as usize] -= mu * v2;
            }
        }
        let pivot = self.acc[slot];
        if pivot.abs() < tol || pivot.is_nan() {
            // The NaN check catches upstream overflow.
            return Err(SolveError::Singular);
        }
        self.udiag[rho] = pivot;
        if !entries.is_empty() {
            self.etas.push(FtEta {
                target: rho as u32,
                entries,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CscBuilder;

    /// Dense reference multiply `B x` for checking the factors.
    fn mul(a: &CscMatrix, basis: &[u32], x: &[f64]) -> Vec<f64> {
        let m = basis.len();
        let mut out = vec![0.0; m];
        for (slot, &bj) in basis.iter().enumerate() {
            for (r, v) in a.col(bj as usize).iter() {
                out[r] += v * x[slot];
            }
        }
        out
    }

    fn mul_t(a: &CscMatrix, basis: &[u32], y: &[f64]) -> Vec<f64> {
        basis
            .iter()
            .map(|&bj| a.col(bj as usize).iter().map(|(r, v)| v * y[r]).sum())
            .collect()
    }

    fn check_roundtrip(a: &CscMatrix, basis: &[u32]) {
        let m = basis.len();
        let lu = LuFactors::factor(a, basis, 1e-12).expect("nonsingular");
        let mut work = vec![0.0; m];
        // FTRAN: B x = b  →  mul(basis, x) == b.
        let b: Vec<f64> = (0..m).map(|i| (i as f64) * 0.7 - 1.3).collect();
        let mut x = vec![0.0; m];
        lu.ftran(&b, &mut x, &mut work);
        let back = mul(a, basis, &x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8, "FTRAN residual {got} vs {want}");
        }
        // BTRAN: Bᵀ y = c  →  mul_t(basis, y) == c.
        let c: Vec<f64> = (0..m).map(|i| 0.4 * (i as f64) + 0.9).collect();
        let mut y = vec![0.0; m];
        lu.btran(&c, &mut y, &mut work);
        let back = mul_t(a, basis, &y);
        for (got, want) in back.iter().zip(&c) {
            assert!((got - want).abs() < 1e-8, "BTRAN residual {got} vs {want}");
        }
    }

    #[test]
    fn identity_basis() {
        let mut b = CscBuilder::new(3);
        for i in 0..3 {
            b.add_col([(i, 1.0)]);
        }
        let a = b.build();
        check_roundtrip(&a, &[0, 1, 2]);
    }

    #[test]
    fn permuted_scaled_diagonal() {
        let mut b = CscBuilder::new(3);
        b.add_col([(2, -4.0)]);
        b.add_col([(0, 0.5)]);
        b.add_col([(1, 3.0)]);
        let a = b.build();
        check_roundtrip(&a, &[0, 1, 2]);
    }

    #[test]
    fn dense_small_block() {
        // A 3×3 with every entry nonzero; forces genuine elimination.
        let mut b = CscBuilder::new(3);
        b.add_col([(0, 2.0), (1, 1.0), (2, 1.0)]);
        b.add_col([(0, 1.0), (1, 3.0), (2, 2.0)]);
        b.add_col([(0, 1.0), (1, 1.0), (2, 4.0)]);
        let a = b.build();
        check_roundtrip(&a, &[0, 1, 2]);
    }

    #[test]
    fn mixed_slack_and_structural() {
        // Typical simplex basis: a few structural columns, rest slacks.
        let m = 6;
        let mut b = CscBuilder::new(m);
        b.add_col([(0, 1.0), (3, 2.0), (5, -1.0)]);
        b.add_col([(1, 4.0), (2, 1.0)]);
        for i in 0..m {
            b.add_col([(i, 1.0)]);
        }
        let a = b.build();
        // Columns 2..8 are the slacks e₀..e₅; pick bases covering all rows.
        check_roundtrip(&a, &[0, 1, 6, 7, 4, 5]);
        check_roundtrip(&a, &[0, 6, 1, 4, 5, 7]);
    }

    #[test]
    fn singular_detected() {
        let mut b = CscBuilder::new(2);
        b.add_col([(0, 1.0), (1, 1.0)]);
        b.add_col([(0, 2.0), (1, 2.0)]);
        let a = b.build();
        assert_eq!(
            LuFactors::factor(&a, &[0, 1], 1e-12).unwrap_err(),
            SolveError::Singular
        );
    }

    #[test]
    fn structurally_singular_detected() {
        let mut b = CscBuilder::new(2);
        b.add_col([(0, 1.0)]);
        b.add_col([(0, 2.0)]);
        let a = b.build();
        assert_eq!(
            LuFactors::factor(&a, &[0, 1], 1e-12).unwrap_err(),
            SolveError::Singular
        );
    }

    #[test]
    fn empty_basis() {
        let a = CscBuilder::new(0).build();
        let lu = LuFactors::factor(&a, &[], 1e-12).expect("empty is trivially factored");
        let mut x: Vec<f64> = Vec::new();
        let mut work: Vec<f64> = Vec::new();
        lu.ftran(&[], &mut x, &mut work);
        assert_eq!(lu.l_nnz(), 0);
    }

    #[test]
    fn eta_file_matches_refactorization() {
        // Replace one basis column via an eta and compare FTRAN/BTRAN
        // against factoring the updated basis directly.
        let m = 4;
        let mut b = CscBuilder::new(m);
        b.add_col([(0, 2.0), (1, 1.0)]);
        b.add_col([(1, 3.0), (2, -1.0)]);
        b.add_col([(2, 1.5), (3, 0.5)]);
        b.add_col([(0, 1.0), (3, 2.0)]);
        b.add_col([(0, 1.0), (2, 2.0), (3, -1.0)]); // entering column (index 4)
        let a = b.build();
        let basis: Vec<u32> = vec![0, 1, 2, 3];
        let lu = LuFactors::factor(&a, &basis, 1e-12).expect("nonsingular");
        let mut work = vec![0.0; m];

        // Direction w = B⁻¹ a₄, then replace slot 1.
        let mut dense = vec![0.0; m];
        for (r, v) in a.col(4).iter() {
            dense[r] = v;
        }
        let mut w = vec![0.0; m];
        lu.ftran(&dense, &mut w, &mut work);
        let mut etas = EtaFile::default();
        etas.push(1, &w);
        assert_eq!(etas.etas.len(), 1);

        let new_basis: Vec<u32> = vec![0, 4, 2, 3];
        let fresh = LuFactors::factor(&a, &new_basis, 1e-12).expect("nonsingular");

        let rhs: Vec<f64> = vec![1.0, -2.0, 0.5, 3.0];
        let mut via_eta = vec![0.0; m];
        lu.ftran(&rhs, &mut via_eta, &mut work);
        etas.ftran(&mut via_eta);
        let mut direct = vec![0.0; m];
        fresh.ftran(&rhs, &mut direct, &mut work);
        for (e, d) in via_eta.iter().zip(&direct) {
            assert!((e - d).abs() < 1e-9, "eta FTRAN {e} vs fresh {d}");
        }

        let cost: Vec<f64> = vec![0.3, -1.0, 2.0, 0.0];
        let mut c_eta = cost.clone();
        etas.btran(&mut c_eta);
        let mut via_eta_y = vec![0.0; m];
        lu.btran(&c_eta, &mut via_eta_y, &mut work);
        let mut direct_y = vec![0.0; m];
        fresh.btran(&cost, &mut direct_y, &mut work);
        for (e, d) in via_eta_y.iter().zip(&direct_y) {
            assert!((e - d).abs() < 1e-9, "eta BTRAN {e} vs fresh {d}");
        }
    }

    /// Asserts FT FTRAN/BTRAN agree with a fresh factorization of the
    /// same basis on a couple of dense probes.
    fn check_ft_against_fresh(a: &CscMatrix, ft: &mut FtFactors, basis: &[u32]) {
        let m = basis.len();
        let fresh = LuFactors::factor(a, basis, 1e-12).expect("nonsingular");
        let mut work = vec![0.0; m];
        let rhs: Vec<f64> = (0..m).map(|i| (i as f64) * 0.9 - 1.7).collect();
        let mut via_ft = vec![0.0; m];
        ft.ftran(&rhs, &mut via_ft, &mut work);
        let mut direct = vec![0.0; m];
        fresh.ftran(&rhs, &mut direct, &mut work);
        for (e, d) in via_ft.iter().zip(&direct) {
            assert!((e - d).abs() < 1e-8, "FT FTRAN {e} vs fresh {d}");
        }
        let cost: Vec<f64> = (0..m).map(|i| 0.6 * (i as f64) + 0.4).collect();
        let mut via_ft_y = vec![0.0; m];
        ft.btran(&cost, &mut via_ft_y, &mut work);
        let mut direct_y = vec![0.0; m];
        fresh.btran(&cost, &mut direct_y, &mut work);
        for (e, d) in via_ft_y.iter().zip(&direct_y) {
            assert!((e - d).abs() < 1e-8, "FT BTRAN {e} vs fresh {d}");
        }
    }

    /// Dense image of column `j` in constraint-row space.
    fn dense_col(a: &CscMatrix, j: usize, m: usize) -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (r, v) in a.col(j).iter() {
            out[r] = v;
        }
        out
    }

    #[test]
    fn ft_update_matches_refactorization() {
        // Same setup as the eta-file test: replace slot 1 with column 4.
        let m = 4;
        let mut b = CscBuilder::new(m);
        b.add_col([(0, 2.0), (1, 1.0)]);
        b.add_col([(1, 3.0), (2, -1.0)]);
        b.add_col([(2, 1.5), (3, 0.5)]);
        b.add_col([(0, 1.0), (3, 2.0)]);
        b.add_col([(0, 1.0), (2, 2.0), (3, -1.0)]);
        let a = b.build();
        let mut ft = FtFactors::factor(&a, &[0, 1, 2, 3], 1e-12).expect("nonsingular");
        assert_eq!(ft.updates(), 0);
        let mut work = vec![0.0; m];
        ft.update(1, &dense_col(&a, 4, m), 1e-12, &mut work)
            .expect("update accepted");
        check_ft_against_fresh(&a, &mut ft, &[0, 4, 2, 3]);
    }

    #[test]
    fn ft_sequential_updates_match_refactorization() {
        // Start from the all-slack basis and pivot structural columns
        // in one at a time, checking against a fresh factorization
        // after every update.
        let m = 6;
        let mut b = CscBuilder::new(m);
        b.add_col([(0, 1.0), (3, 2.0), (5, -1.0)]);
        b.add_col([(1, 4.0), (2, 1.0)]);
        b.add_col([(0, 3.0), (1, -2.0), (4, 1.0)]);
        for i in 0..m {
            b.add_col([(i, 1.0)]);
        }
        let a = b.build();
        let mut basis: Vec<u32> = (3..3 + m as u32).collect(); // slacks e₀..e₅
        let mut ft = FtFactors::factor(&a, &basis, 1e-12).expect("nonsingular");
        let mut work = vec![0.0; m];
        for (slot, col) in [(0usize, 0u32), (1, 1), (2, 2)] {
            ft.update(slot, &dense_col(&a, col as usize, m), 1e-12, &mut work)
                .expect("update accepted");
            basis[slot] = col;
            check_ft_against_fresh(&a, &mut ft, &basis);
        }
        assert!(ft.u_nnz() >= m);
    }

    #[test]
    fn ft_update_rejects_singular_replacement() {
        // Replacing slot 1 with a copy of slot 0's column makes the
        // basis singular; the post-elimination pivot is exactly zero.
        let mut b = CscBuilder::new(2);
        b.add_col([(0, 1.0)]);
        b.add_col([(1, 1.0)]);
        b.add_col([(0, 1.0)]);
        let a = b.build();
        let mut ft = FtFactors::factor(&a, &[0, 1], 1e-12).expect("nonsingular");
        let mut work = vec![0.0; 2];
        assert_eq!(
            ft.update(1, &dense_col(&a, 2, 2), 1e-12, &mut work)
                .unwrap_err(),
            SolveError::Singular
        );
    }
}
