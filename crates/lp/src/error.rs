//! Error types for the LP and MILP solvers.

use std::error::Error;
use std::fmt;

/// Failure modes of [`crate::Problem::solve`] and the MILP solver.
///
/// "No optimal solution exists" outcomes (infeasible / unbounded) are
/// reported as errors so that a returned [`crate::Solution`] always carries
/// a usable point.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The pivot limit was exhausted before reaching optimality.
    IterationLimit,
    /// The basis became numerically singular and could not be recovered.
    Singular,
    /// Branch-and-bound exhausted its node budget with no feasible incumbent.
    NodeLimit,
    /// The solver returned, but independent recomputation
    /// ([`crate::verify`]) found the reported solution infeasible or its
    /// objective misreported.
    CertificateRejected,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            SolveError::Infeasible => "problem is infeasible",
            SolveError::Unbounded => "objective is unbounded",
            SolveError::IterationLimit => "simplex iteration limit reached",
            SolveError::Singular => "basis matrix is numerically singular",
            SolveError::NodeLimit => "branch-and-bound node limit reached without incumbent",
            SolveError::CertificateRejected => "solution failed independent certification",
        };
        f.write_str(msg)
    }
}

impl SolveError {
    /// Whether a different starting point or budget could plausibly make
    /// the same solve succeed: numerical breakage ([`Self::Singular`])
    /// and exhausted budgets ([`Self::IterationLimit`],
    /// [`Self::NodeLimit`]) are worth retrying — e.g. from a cold basis
    /// after a failed warm start — while [`Self::Infeasible`] and
    /// [`Self::Unbounded`] are verdicts about the problem itself.
    /// A rejected certificate ([`Self::CertificateRejected`]) is treated
    /// like numerical breakage: the point came out wrong, but a cold
    /// restart may produce a clean one.
    pub fn is_retryable(&self) -> bool {
        match self {
            SolveError::Singular
            | SolveError::IterationLimit
            | SolveError::NodeLimit
            | SolveError::CertificateRejected => true,
            SolveError::Infeasible | SolveError::Unbounded => false,
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        for e in [
            SolveError::Infeasible,
            SolveError::Unbounded,
            SolveError::IterationLimit,
            SolveError::Singular,
            SolveError::NodeLimit,
            SolveError::CertificateRejected,
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn is_std_error_send_sync() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<SolveError>();
    }

    #[test]
    fn retryability_splits_budget_from_verdict_errors() {
        assert!(SolveError::Singular.is_retryable());
        assert!(SolveError::IterationLimit.is_retryable());
        assert!(SolveError::NodeLimit.is_retryable());
        assert!(SolveError::CertificateRejected.is_retryable());
        assert!(!SolveError::Infeasible.is_retryable());
        assert!(!SolveError::Unbounded.is_retryable());
    }
}
