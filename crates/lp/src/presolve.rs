//! Presolve: problem reductions applied before the simplex.
//!
//! Large generated models (like the RL-SPM/BL-SPM LPs in this workspace)
//! carry easy structure — fixed variables, empty rows, singleton rows
//! that are really bounds. Removing it shrinks the basis the simplex has
//! to factor. The reductions implemented, iterated to a fixed point:
//!
//! 1. **Empty rows** — consistency-checked and dropped.
//! 2. **Singleton rows** — `a·x (rel) b` over one variable becomes a
//!    tightened bound on that variable.
//! 3. **Fixed variables** (`lower == upper`) — substituted into every row
//!    and into the objective constant.
//! 4. **Empty columns** — moved to whichever finite bound the objective
//!    prefers (detecting unboundedness when there is none).
//!
//! [`presolve`] returns the reduced problem plus a [`Restoration`] that
//! maps reduced solutions back to the original variable space.
//!
//! Separately, [`equilibrate`] rescales rows and columns toward unit
//! magnitude (geometric-mean scaling rounded to powers of two) — a
//! conditioning transform rather than a reduction — returning a
//! [`Scaling`] that maps solutions and duals back exactly.

use crate::error::SolveError;
use crate::model::{Problem, Relation, Sense, VarId};
use crate::solution::{Solution, SolveStats};

/// Counts of what presolve removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PresolveReport {
    /// Rows dropped (empty or converted to bounds).
    pub removed_rows: usize,
    /// Variables eliminated (fixed or empty columns).
    pub removed_vars: usize,
    /// Fixed-point iterations performed.
    pub passes: usize,
}

/// Maps a reduced solution back onto the original variables.
#[derive(Clone, Debug)]
pub struct Restoration {
    /// For each original variable: either its fixed value or its index in
    /// the reduced problem.
    mapping: Vec<VarFate>,
    /// Objective contribution of the eliminated variables.
    objective_offset: f64,
    sense: Sense,
}

#[derive(Clone, Copy, Debug)]
enum VarFate {
    Fixed(f64),
    Kept(usize),
}

impl Restoration {
    /// Number of original variables.
    pub fn num_original_vars(&self) -> usize {
        self.mapping.len()
    }

    /// Lifts a reduced-space solution into the original space.
    ///
    /// # Panics
    ///
    /// Panics if `reduced` does not match the reduced problem's width.
    pub fn restore(&self, reduced: &Solution) -> Solution {
        let values: Vec<f64> = self
            .mapping
            .iter()
            .map(|fate| match fate {
                VarFate::Fixed(v) => *v,
                VarFate::Kept(j) => reduced.values()[*j],
            })
            .collect();
        let obj = reduced.objective() + self.objective_offset;
        let _ = self.sense;
        Solution::new(obj, values, reduced.iterations())
            .with_stats(*reduced.stats())
            .with_trace(reduced.trace().clone())
    }
}

/// Applies the reductions and returns `(reduced problem, restoration,
/// report)`.
///
/// # Errors
///
/// * [`SolveError::Infeasible`] when a reduction proves the constraints
///   empty (e.g. an empty row with an unsatisfiable right-hand side).
/// * [`SolveError::Unbounded`] when an empty column can improve the
///   objective forever.
///
/// # Examples
///
/// ```
/// use metis_lp::{presolve, Problem, Relation, Sense};
///
/// let mut p = Problem::new(Sense::Minimize);
/// let x = p.add_var(1.0, 0.0, 10.0);
/// let y = p.add_var(2.0, 3.0, 3.0);            // fixed
/// p.add_constraint([(x, 1.0)], Relation::Ge, 4.0); // singleton → bound
/// p.add_constraint([(x, 0.0)], Relation::Le, 1.0); // empty row
/// let _ = y;
///
/// let (reduced, restoration, report) = presolve(&p)?;
/// // The singleton row becomes the bound x ≥ 4, after which x is an
/// // empty column: everything presolves away.
/// assert_eq!(reduced.num_constraints(), 0);
/// assert_eq!(reduced.num_vars(), 0);
/// assert_eq!(report.removed_vars, 2);
///
/// let sol = restoration.restore(&reduced.solve()?);
/// assert!((sol.objective() - (4.0 + 6.0)).abs() < 1e-9);
/// # Ok::<(), metis_lp::SolveError>(())
/// ```
pub fn presolve(problem: &Problem) -> Result<(Problem, Restoration, PresolveReport), SolveError> {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let tol = 1e-9;

    // Working copies.
    let mut lower: Vec<f64> = (0..n).map(|j| problem.bounds(problem.var(j)).0).collect();
    let mut upper: Vec<f64> = (0..n).map(|j| problem.bounds(problem.var(j)).1).collect();
    let obj: Vec<f64> = (0..n)
        .map(|j| problem.objective_coeff(problem.var(j)))
        .collect();
    let relations = problem.row_relations();
    let mut rhs = problem.row_rhs();
    let by_col = problem.entries_by_column();
    // Row-wise view.
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
    for (j, col) in by_col.iter().enumerate() {
        for &(r, v) in col {
            rows[r].push((j, v));
        }
    }

    let mut var_alive = vec![true; n];
    let mut var_fixed_at = vec![f64::NAN; n];
    let mut row_alive = vec![true; m];
    let mut report = PresolveReport::default();

    loop {
        report.passes += 1;
        let mut changed = false;

        // Fixed variables: substitute into rows.
        for j in 0..n {
            if var_alive[j] && upper[j] - lower[j] <= tol {
                let v = lower[j];
                var_alive[j] = false;
                var_fixed_at[j] = v;
                report.removed_vars += 1;
                changed = true;
                if v != 0.0 {
                    for &(r, coef) in &by_col[j] {
                        rhs[r] -= coef * v;
                    }
                }
            }
        }

        for r in 0..m {
            if !row_alive[r] {
                continue;
            }
            let live: Vec<(usize, f64)> = rows[r]
                .iter()
                .copied()
                .filter(|&(j, _)| var_alive[j])
                .collect();
            match live.len() {
                0 => {
                    // Empty row: must be consistent on its own.
                    let ok = match relations[r] {
                        Relation::Le => 0.0 <= rhs[r] + tol,
                        Relation::Ge => 0.0 >= rhs[r] - tol,
                        Relation::Eq => rhs[r].abs() <= tol,
                    };
                    if !ok {
                        return Err(SolveError::Infeasible);
                    }
                    row_alive[r] = false;
                    report.removed_rows += 1;
                    changed = true;
                }
                1 => {
                    // Singleton row → bound.
                    let (j, a) = live[0];
                    if a.abs() <= tol {
                        continue; // effectively empty; next pass handles it
                    }
                    let b = rhs[r] / a;
                    let (mut nlo, mut nup) = (lower[j], upper[j]);
                    match (relations[r], a > 0.0) {
                        (Relation::Le, true) | (Relation::Ge, false) => nup = nup.min(b),
                        (Relation::Ge, true) | (Relation::Le, false) => nlo = nlo.max(b),
                        (Relation::Eq, _) => {
                            nlo = nlo.max(b);
                            nup = nup.min(b);
                        }
                    }
                    if problem.is_integer(problem.var(j)) {
                        // Integer variables can round their bounds inward.
                        if nlo.is_finite() {
                            nlo = (nlo - tol).ceil();
                        }
                        if nup.is_finite() {
                            nup = (nup + tol).floor();
                        }
                    }
                    if nlo > nup + tol {
                        return Err(SolveError::Infeasible);
                    }
                    lower[j] = nlo;
                    upper[j] = nup.max(nlo);
                    row_alive[r] = false;
                    report.removed_rows += 1;
                    changed = true;
                }
                _ => {}
            }
        }

        // Empty columns: push to the objective-preferred bound.
        for j in 0..n {
            if !var_alive[j] {
                continue;
            }
            let appears = by_col[j].iter().any(|&(r, _)| row_alive[r]);
            if appears {
                continue;
            }
            let minimize = problem.sense() == Sense::Minimize;
            let prefer_low = (obj[j] > 0.0) == minimize;
            let is_int = problem.is_integer(problem.var(j));
            // Integer variables must rest on an integral point inside
            // their (possibly fractional) bounds.
            let low_rest = if is_int {
                (lower[j] - tol).ceil()
            } else {
                lower[j]
            };
            let up_rest = if is_int {
                (upper[j] + tol).floor()
            } else {
                upper[j]
            };
            if is_int && low_rest > up_rest + tol {
                return Err(SolveError::Infeasible);
            }
            let target = if obj[j] == 0.0 {
                // Indifferent: any finite resting point will do.
                if low_rest.is_finite() {
                    low_rest
                } else if up_rest.is_finite() {
                    up_rest
                } else {
                    0.0
                }
            } else if prefer_low {
                if low_rest.is_finite() {
                    low_rest
                } else {
                    return Err(SolveError::Unbounded);
                }
            } else if up_rest.is_finite() {
                up_rest
            } else {
                return Err(SolveError::Unbounded);
            };
            var_alive[j] = false;
            var_fixed_at[j] = target;
            report.removed_vars += 1;
            changed = true;
        }

        if !changed {
            break;
        }
    }

    // Assemble the reduced problem.
    let mut reduced = Problem::new(problem.sense());
    let mut mapping = Vec::with_capacity(n);
    let mut objective_offset = 0.0;
    let mut new_index = vec![usize::MAX; n];
    for j in 0..n {
        if var_alive[j] {
            let id = reduced.add_var(obj[j], lower[j], upper[j]);
            reduced.set_integer(id, problem.is_integer(problem.var(j)));
            new_index[j] = id.index();
            mapping.push(VarFate::Kept(id.index()));
        } else {
            objective_offset += obj[j] * var_fixed_at[j];
            mapping.push(VarFate::Fixed(var_fixed_at[j]));
        }
    }
    for r in 0..m {
        if !row_alive[r] {
            continue;
        }
        let terms: Vec<(VarId, f64)> = rows[r]
            .iter()
            .filter(|&&(j, _)| var_alive[j])
            .map(|&(j, v)| (reduced.var(new_index[j]), v))
            .collect();
        reduced.add_constraint(terms, relations[r], rhs[r]);
    }

    Ok((
        reduced,
        Restoration {
            mapping,
            objective_offset,
            sense: problem.sense(),
        },
        report,
    ))
}

/// Convenience: presolve, solve the reduction, and lift the solution.
///
/// # Errors
///
/// Propagates presolve detections and simplex failures.
pub fn presolve_and_solve(problem: &Problem) -> Result<Solution, SolveError> {
    let (reduced, restoration, report) = presolve(problem)?;
    let sol = reduced.solve()?;
    let restored = restoration.restore(&sol);
    // The restoration step is the error-prone half of presolve: certify
    // the *restored* point against the *original* problem in debug
    // builds, not just the reduced solve against the reduced problem.
    if cfg!(debug_assertions) {
        crate::verify::verify(problem, &restored, 1e-6)?;
    }
    let stats = crate::solution::SolveStats {
        presolve_removed_rows: report.removed_rows,
        presolve_removed_vars: report.removed_vars,
        ..*restored.stats()
    };
    Ok(restored.with_stats(stats))
}

/// Upper bound on equilibration sweeps; geometric-mean scaling with
/// power-of-two rounding converges in a handful of passes in practice.
const MAX_SCALING_PASSES: usize = 8;

/// Row/column scale factors produced by [`equilibrate`], mapping
/// solutions of the scaled problem back to the original space.
///
/// Every factor is a power of two, so the unscaling in
/// [`Scaling::restore`] is exact (an exponent shift, no rounding).
#[derive(Clone, Debug)]
pub struct Scaling {
    /// Multiplier applied to each row (constraint and rhs).
    row: Vec<f64>,
    /// Multiplier applied to each column (coefficients and objective);
    /// the scaled variable is `x'_j = x_j / col[j]`.
    col: Vec<f64>,
    /// Sweeps performed before reaching a fixed point (or the cap).
    passes: usize,
}

impl Scaling {
    /// Equilibration sweeps performed (each sweep scales all rows, then
    /// all columns).
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Scale factor of one row (a power of two).
    pub fn row_factor(&self, i: usize) -> f64 {
        self.row[i]
    }

    /// Scale factor of one column (a power of two; 1 for integer
    /// variables, which are never scaled).
    pub fn col_factor(&self, j: usize) -> f64 {
        self.col[j]
    }

    /// Maps a solution of the scaled problem back to the original:
    /// `x_j = col_j · x'_j`, `y_i = row_i · y'_i`. The objective value
    /// is identical by construction (`c'·x' = c·x`), so it passes
    /// through untouched. Records [`SolveStats::scaling_passes`].
    ///
    /// # Panics
    ///
    /// Panics if `scaled` does not match the scaled problem's width.
    pub fn restore(&self, scaled: &Solution) -> Solution {
        let values: Vec<f64> = scaled
            .values()
            .iter()
            .zip(&self.col)
            .map(|(x, c)| x * c)
            .collect();
        let stats = SolveStats {
            scaling_passes: self.passes,
            ..*scaled.stats()
        };
        let out = Solution::new(scaled.objective(), values, scaled.iterations())
            .with_stats(stats)
            .with_trace(scaled.trace().clone());
        match scaled.duals() {
            Some(d) => {
                let duals: Vec<f64> = d.iter().zip(&self.row).map(|(y, r)| y * r).collect();
                out.with_duals(duals)
            }
            None => out,
        }
    }
}

/// Geometric-mean equilibration: iteratively rescales rows and columns
/// so the (log-space) mean magnitude of each row's and column's nonzeros
/// approaches 1, with every factor rounded to the nearest power of two.
///
/// Power-of-two factors keep the transform exact in floating point: the
/// scaled problem's simplex trajectory may differ, but unscaling a
/// solution reintroduces no rounding error. Integer columns are never
/// scaled (their scale stays 1) so integrality of `x_j = col_j · x'_j`
/// is preserved trivially.
///
/// Returns the scaled problem and the [`Scaling`] that maps its
/// solutions back. Used by the solver when
/// [`crate::SolveOptions::scale`] is set; callable directly for
/// inspection or custom pipelines.
pub fn equilibrate(problem: &Problem) -> (Problem, Scaling) {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let by_col = problem.entries_by_column();
    let is_int: Vec<bool> = (0..n).map(|j| problem.is_integer(problem.var(j))).collect();

    let mut row_scale = vec![1.0f64; m];
    let mut col_scale = vec![1.0f64; n];
    let mut passes = 0;
    for _ in 0..MAX_SCALING_PASSES {
        passes += 1;
        let mut changed = false;

        // Rows: geometric mean of the currently-scaled magnitudes,
        // accumulated in log2 space (deterministic fixed-order sums).
        let mut logsum = vec![0.0f64; m];
        let mut count = vec![0usize; m];
        for (j, col) in by_col.iter().enumerate() {
            for &(r, v) in col {
                if v != 0.0 {
                    logsum[r] += (v * row_scale[r] * col_scale[j]).abs().log2();
                    count[r] += 1;
                }
            }
        }
        for i in 0..m {
            if count[i] == 0 {
                continue;
            }
            let adj = (-(logsum[i] / count[i] as f64)).round();
            if adj != 0.0 {
                row_scale[i] *= adj.exp2();
                changed = true;
            }
        }

        // Columns, against the just-updated row scales.
        for (j, col) in by_col.iter().enumerate() {
            if is_int[j] {
                continue;
            }
            let mut ls = 0.0f64;
            let mut c = 0usize;
            for &(r, v) in col {
                if v != 0.0 {
                    ls += (v * row_scale[r] * col_scale[j]).abs().log2();
                    c += 1;
                }
            }
            if c == 0 {
                continue;
            }
            let adj = (-(ls / c as f64)).round();
            if adj != 0.0 {
                col_scale[j] *= adj.exp2();
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    // Assemble the scaled problem: column j carries objective c_j·col_j
    // and bounds divided by col_j (col_j > 0, so no bound flips); row i
    // carries coefficients a_ij·row_i·col_j and rhs b_i·row_i.
    let mut scaled = Problem::new(problem.sense());
    for j in 0..n {
        let (lo, up) = problem.bounds(problem.var(j));
        let c = col_scale[j];
        let id = scaled.add_var(problem.objective_coeff(problem.var(j)) * c, lo / c, up / c);
        scaled.set_integer(id, is_int[j]);
    }
    let relations = problem.row_relations();
    let rhs = problem.row_rhs();
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
    for (j, col) in by_col.iter().enumerate() {
        for &(r, v) in col {
            rows[r].push((j, v));
        }
    }
    for r in 0..m {
        let terms: Vec<(VarId, f64)> = rows[r]
            .iter()
            .map(|&(j, v)| (scaled.var(j), v * row_scale[r] * col_scale[j]))
            .collect();
        scaled.add_constraint(terms, relations[r], rhs[r] * row_scale[r]);
    }

    (
        scaled,
        Scaling {
            row: row_scale,
            col: col_scale,
            passes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, Relation, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn removes_empty_rows() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, 0.0, 5.0);
        p.add_constraint([(x, 0.0)], Relation::Le, 3.0);
        let (r, _, report) = presolve(&p).unwrap();
        assert_eq!(r.num_constraints(), 0);
        assert_eq!(report.removed_rows, 1);
    }

    #[test]
    fn inconsistent_empty_row_is_infeasible() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, 0.0, 5.0);
        p.add_constraint([(x, 0.0)], Relation::Ge, 3.0);
        assert_eq!(presolve(&p).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn singleton_rows_become_bounds() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, 0.0, 100.0);
        let y = p.add_var(1.0, 0.0, 100.0);
        p.add_constraint([(x, 2.0)], Relation::Ge, 10.0); // x ≥ 5
        p.add_constraint([(y, -1.0)], Relation::Ge, -7.0); // y ≤ 7
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 50.0);
        let (r, _, report) = presolve(&p).unwrap();
        assert_eq!(r.num_constraints(), 1);
        assert_eq!(report.removed_rows, 2);
        assert_eq!(r.bounds(r.var(0)), (5.0, 100.0));
        assert_eq!(r.bounds(r.var(1)), (0.0, 7.0));
    }

    #[test]
    fn conflicting_singletons_detected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, 0.0, 100.0);
        p.add_constraint([(x, 1.0)], Relation::Ge, 10.0);
        p.add_constraint([(x, 1.0)], Relation::Le, 5.0);
        assert_eq!(presolve(&p).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn fixed_vars_substituted() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, 0.0, 10.0);
        let f = p.add_var(5.0, 2.0, 2.0);
        p.add_constraint([(x, 1.0), (f, 3.0)], Relation::Ge, 10.0); // x ≥ 4
        let (r, restoration, report) = presolve(&p).unwrap();
        // Fixing f turns the row into a singleton bound on x, which then
        // leaves x as an empty column — both variables get eliminated.
        assert_eq!(report.removed_vars, 2);
        assert_eq!(r.num_vars(), 0);
        let sol = restoration.restore(&r.solve().unwrap());
        // x = 4, f = 2 → obj 4 + 10 = 14.
        assert_close(sol.objective(), 14.0);
        assert_close(sol.values()[0], 4.0);
        assert_close(sol.values()[1], 2.0);
    }

    #[test]
    fn empty_columns_rest_at_preferred_bound() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(2.0, 0.0, 3.0); // empty, wants upper
        let y = p.add_var(-1.0, -1.0, 5.0); // empty, wants lower
        let _ = (x, y);
        let (r, restoration, _) = presolve(&p).unwrap();
        assert_eq!(r.num_vars(), 0);
        let sol = restoration.restore(&r.solve().unwrap());
        assert_close(sol.values()[0], 3.0);
        assert_close(sol.values()[1], -1.0);
        assert_close(sol.objective(), 7.0);
    }

    #[test]
    fn unbounded_empty_column_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_var(1.0, 0.0, f64::INFINITY);
        assert_eq!(presolve(&p).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn presolve_then_solve_matches_direct_solve() {
        // A problem exercising every reduction at once.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(3.0, 0.0, 10.0);
        let y = p.add_var(1.0, 0.0, 10.0);
        let f = p.add_var(2.0, 1.5, 1.5);
        let z = p.add_var(-1.0, 0.0, 4.0); // becomes empty after reductions
        p.add_constraint([(x, 1.0)], Relation::Ge, 2.0);
        p.add_constraint([(x, 1.0), (y, 1.0), (f, 1.0)], Relation::Ge, 6.0);
        p.add_constraint([(z, 0.0)], Relation::Le, 1.0);
        let direct = p.solve().unwrap();
        let via = presolve_and_solve(&p).unwrap();
        assert_close(via.objective(), direct.objective());
        assert!(p.max_violation(via.values()) < 1e-6);
    }

    #[test]
    fn integrality_markers_survive() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_int_var(1.0, 0.0, 9.0);
        let f = p.add_var(0.0, 1.0, 1.0);
        p.add_constraint([(x, 1.0), (f, 1.0)], Relation::Ge, 3.5);
        // f = 1 fixes, leaving the singleton x ≥ 2.5 which rounds up to
        // x ≥ 3 for the integer variable; x then rests at 3.
        let (r, restoration, _) = presolve(&p).unwrap();
        assert_eq!(r.num_vars(), 0);
        let sol = restoration.restore(&r.solve().unwrap());
        assert_close(sol.values()[0], 3.0);
    }

    #[test]
    fn integer_var_kept_in_rows_stays_integer() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_int_var(1.0, 0.0, 9.0);
        let y = p.add_var(1.0, 0.0, 9.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        let (r, _, _) = presolve(&p).unwrap();
        assert_eq!(r.num_vars(), 2);
        assert!(r.is_integer(r.var(0)));
        assert!(!r.is_integer(r.var(1)));
    }

    /// A deliberately ill-scaled LP: coefficients spanning ~9 orders of
    /// magnitude across rows and columns.
    fn ill_scaled_problem() -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1e4, 0.0, 1e6);
        let y = p.add_var(3e-3, 0.0, 1e6);
        let z = p.add_var(7.0, 0.0, 1e6);
        p.add_constraint([(x, 2e5), (y, 4e-4), (z, 1.0)], Relation::Ge, 3e2);
        p.add_constraint([(x, 5e4), (y, 8e-5)], Relation::Ge, 1e1);
        p.add_constraint([(y, 1e-3), (z, 6e3)], Relation::Ge, 2.0);
        p
    }

    #[test]
    fn equilibrate_factors_are_powers_of_two() {
        let p = ill_scaled_problem();
        let (_, scaling) = equilibrate(&p);
        for i in 0..p.num_constraints() {
            let f = scaling.row_factor(i);
            assert!(f > 0.0 && f.log2().fract() == 0.0, "row factor {f}");
        }
        for j in 0..p.num_vars() {
            let f = scaling.col_factor(j);
            assert!(f > 0.0 && f.log2().fract() == 0.0, "col factor {f}");
        }
        assert!(scaling.passes() >= 1);
    }

    #[test]
    fn equilibrate_shrinks_coefficient_range() {
        let p = ill_scaled_problem();
        let (scaled, _) = equilibrate(&p);
        let spread = |q: &Problem| {
            let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
            for col in q.entries_by_column() {
                for &(_, v) in &col {
                    if v != 0.0 {
                        lo = lo.min(v.abs());
                        hi = hi.max(v.abs());
                    }
                }
            }
            hi / lo
        };
        assert!(
            spread(&scaled) < spread(&p) / 100.0,
            "scaled spread {} vs original {}",
            spread(&scaled),
            spread(&p)
        );
    }

    #[test]
    fn equilibrate_restore_matches_direct_solve() {
        let p = ill_scaled_problem();
        let direct = p.solve().unwrap();
        let (scaled, scaling) = equilibrate(&p);
        let restored = scaling.restore(&scaled.solve().unwrap());
        assert!(
            (restored.objective() - direct.objective()).abs()
                < 1e-6 * (1.0 + direct.objective().abs())
        );
        assert!(p.max_violation(restored.values()) < 1e-5);
        assert_eq!(restored.stats().scaling_passes, scaling.passes());
    }

    #[test]
    fn equilibrate_keeps_integer_columns_unscaled() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_int_var(1e4, 0.0, 9.0);
        let y = p.add_var(1.0, 0.0, 1e6);
        p.add_constraint([(x, 3e4), (y, 2e-3)], Relation::Ge, 6e4);
        let (scaled, scaling) = equilibrate(&p);
        assert_eq!(scaling.col_factor(0), 1.0);
        assert!(scaled.is_integer(scaled.var(0)));
    }

    #[test]
    fn cascading_reductions_reach_fixpoint() {
        // Fixing x empties a row, which frees y into an empty column.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, 4.0, 4.0);
        let y = p.add_var(2.0, 0.0, 8.0);
        p.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        let _ = y;
        let (r, restoration, report) = presolve(&p).unwrap();
        assert_eq!(r.num_vars(), 0);
        assert_eq!(r.num_constraints(), 0);
        assert!(report.passes >= 2);
        let sol = restoration.restore(&r.solve().unwrap());
        assert_close(sol.objective(), 4.0);
    }
}
