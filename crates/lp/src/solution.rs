//! Solver output types.

use crate::model::{RowId, VarId};

/// Work counters from one solve, attached to every [`Solution`].
///
/// These feed the workspace's telemetry layer (simplex iteration and
/// pivot accounting, warm-start effectiveness, presolve reductions)
/// without the solver depending on it: the solver only counts, the
/// caller decides where the counts go.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Simplex pivots across all phases (primal + dual; for MILP,
    /// summed over all branch-and-bound nodes).
    pub iterations: usize,
    /// Pivots spent in phase 1 (restoring feasibility).
    pub phase1_iterations: usize,
    /// Pivots performed by the dual simplex (warm-start reoptimization).
    pub dual_iterations: usize,
    /// Ratio tests that ended in a bound flip instead of a pivot.
    pub bound_flips: usize,
    /// Basis refactorizations (periodic refresh plus warm-start setup).
    pub refreshes: usize,
    /// Whether this solve reoptimized from a supplied basis rather than
    /// starting cold.
    pub warm_started: bool,
    /// Product-form eta updates appended between refactorizations
    /// (0 on the dense backend, which updates `B⁻¹` in place).
    pub eta_updates: usize,
    /// Nonzeros in the `L` factor of the last sparse refactorization
    /// (0 on the dense backend).
    pub lu_l_nnz: usize,
    /// Nonzeros in the `U` factor (diagonal included) of the last sparse
    /// refactorization (0 on the dense backend).
    pub lu_u_nnz: usize,
    /// Candidate blocks examined by partial pricing. Strictly a
    /// partial-pricing counter: full sweeps — Dantzig, devex, or
    /// Bland — contribute zero, so this reads 0 whenever partial
    /// pricing is inactive.
    pub pricing_block_scans: usize,
    /// Devex reference-framework resets (weights grew past the guard
    /// and restarted at 1; 0 unless devex pricing ran).
    pub devex_resets: usize,
    /// Forrest–Tomlin column updates applied in place to the `U` factor
    /// (0 unless [`crate::FactorUpdate::ForrestTomlin`] is selected).
    pub ft_spikes: usize,
    /// Harris ratio tests whose chosen exact ratio was negative and
    /// clamped to a zero-length step (0 under the textbook rule).
    pub harris_expansions: usize,
    /// Rows removed by presolve (0 unless the presolve path ran).
    pub presolve_removed_rows: usize,
    /// Variables removed by presolve (0 unless the presolve path ran).
    pub presolve_removed_vars: usize,
    /// Equilibration passes performed before the solve (0 unless
    /// [`crate::SolveOptions::scale`] is set).
    pub scaling_passes: usize,
}

/// Which rule chose the entering column of a traced pivot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePricing {
    /// Full Dantzig sweep over all reduced costs.
    Dantzig,
    /// Partial pricing (rotating candidate blocks).
    Partial,
    /// Devex reference-framework pricing.
    Devex,
    /// Bland's anti-cycling rule (degeneracy fallback).
    Bland,
    /// Dual simplex (the *row* was priced; the column came from the
    /// dual ratio test).
    Dual,
}

impl TracePricing {
    /// Stable lowercase label for reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            TracePricing::Dantzig => "dantzig",
            TracePricing::Partial => "partial",
            TracePricing::Devex => "devex",
            TracePricing::Bland => "bland",
            TracePricing::Dual => "dual",
        }
    }
}

/// One recorded simplex step (opt-in via
/// [`crate::SolveOptions::trace`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// 1-based pivot index within this solve, counted across phases
    /// (phase 1, primal, and dual share the counter).
    pub iteration: usize,
    /// Entering column, standard-form index.
    pub entering: usize,
    /// Leaving column, standard-form index; `None` for a bound flip
    /// (the entering variable moved to its opposite bound without a
    /// basis change).
    pub leaving: Option<usize>,
    /// Objective value after the step, in the problem's own sense.
    pub objective: f64,
    /// Magnitude of the pivot element (0 for a bound flip).
    pub pivot: f64,
    /// Rule that selected the step.
    pub pricing: TracePricing,
}

/// Bounded per-iteration trace of one solve: the last
/// [`LpTrace::CAPACITY`] steps, with earlier ones counted as dropped.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LpTrace {
    /// Retained steps, oldest first.
    pub records: Vec<TraceRecord>,
    /// Steps evicted once the ring filled (these were the earliest).
    pub dropped: u64,
}

impl LpTrace {
    /// Ring capacity: enough for every pivot of the workspace's LPs,
    /// while bounding memory for adversarial instances.
    pub const CAPACITY: usize = 4_096;

    /// Total steps the solve performed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.records.len() as u64 + self.dropped
    }
}

/// An optimal (or, for MILP with limits, best-found) solution.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    objective: f64,
    values: Vec<f64>,
    duals: Option<Vec<f64>>,
    stats: SolveStats,
    trace: LpTrace,
}

impl Solution {
    pub(crate) fn new(objective: f64, values: Vec<f64>, iterations: usize) -> Self {
        Solution {
            objective,
            values,
            duals: None,
            stats: SolveStats {
                iterations,
                ..SolveStats::default()
            },
            trace: LpTrace::default(),
        }
    }

    pub(crate) fn with_duals(mut self, duals: Vec<f64>) -> Self {
        self.duals = Some(duals);
        self
    }

    pub(crate) fn with_stats(mut self, stats: SolveStats) -> Self {
        self.stats = stats;
        self
    }

    pub(crate) fn with_trace(mut self, trace: LpTrace) -> Self {
        self.trace = trace;
        self
    }

    /// The dual value (shadow price) of one constraint: the marginal
    /// change of the objective, in the problem's own sense, per unit
    /// increase of that row's right-hand side.
    ///
    /// `None` for MILP solutions (duals are an LP concept).
    ///
    /// # Panics
    ///
    /// Panics if `row` does not belong to the solved problem.
    pub fn dual(&self, row: RowId) -> Option<f64> {
        self.duals.as_ref().map(|d| d[row.index()])
    }

    /// All row duals (see [`Solution::dual`]); `None` for MILP solutions.
    pub fn duals(&self) -> Option<&[f64]> {
        self.duals.as_deref()
    }

    /// Objective value in the problem's own sense (already un-negated for
    /// maximization problems).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of one variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of simplex pivots performed (summed over phases; for MILP,
    /// over all nodes).
    pub fn iterations(&self) -> usize {
        self.stats.iterations
    }

    /// Detailed work counters for this solve.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Per-iteration trace (empty unless
    /// [`crate::SolveOptions::trace`] was set).
    pub fn trace(&self) -> &LpTrace {
        &self.trace
    }

    /// Consumes the solution, returning the raw value vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}
