//! Solver output types.

use crate::model::{RowId, VarId};

/// An optimal (or, for MILP with limits, best-found) solution.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    objective: f64,
    values: Vec<f64>,
    duals: Option<Vec<f64>>,
    iterations: usize,
}

impl Solution {
    pub(crate) fn new(objective: f64, values: Vec<f64>, iterations: usize) -> Self {
        Solution {
            objective,
            values,
            duals: None,
            iterations,
        }
    }

    pub(crate) fn with_duals(mut self, duals: Vec<f64>) -> Self {
        self.duals = Some(duals);
        self
    }

    /// The dual value (shadow price) of one constraint: the marginal
    /// change of the objective, in the problem's own sense, per unit
    /// increase of that row's right-hand side.
    ///
    /// `None` for MILP solutions (duals are an LP concept).
    ///
    /// # Panics
    ///
    /// Panics if `row` does not belong to the solved problem.
    pub fn dual(&self, row: RowId) -> Option<f64> {
        self.duals.as_ref().map(|d| d[row.index()])
    }

    /// All row duals (see [`Solution::dual`]); `None` for MILP solutions.
    pub fn duals(&self) -> Option<&[f64]> {
        self.duals.as_deref()
    }

    /// Objective value in the problem's own sense (already un-negated for
    /// maximization problems).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of one variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of simplex pivots performed (summed over phases; for MILP,
    /// over all nodes).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Consumes the solution, returning the raw value vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}
