//! Branch-and-bound solver for mixed-integer linear programs.
//!
//! Uses the crate's own simplex for node relaxations, best-bound node
//! selection with depth-first plunging (so integral incumbents appear
//! early), binary-first most-fractional branching, optional warm-start
//! incumbents and per-node basis reuse, and node/time limits with proven
//! bounds. The paper's `OPT(SPM)` / `OPT(RL-SPM)` baselines and the
//! Fig. 4b optimal-cost reference are solved through this module (the
//! authors used Gurobi 7.5.2).
//!
//! Setting the `METIS_ILP_DEBUG` environment variable traces every node
//! (depth, bound, fractional count) to stderr.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use std::rc::Rc;

use crate::error::SolveError;
use crate::model::{Problem, Sense};
use crate::simplex::{Basis, SolveOptions};
use crate::solution::Solution;

/// Tuning knobs for branch-and-bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IlpOptions {
    /// A value within this distance of an integer counts as integral.
    pub int_tol: f64,
    /// Stop when `(incumbent − bound) / max(1, |incumbent|)` drops below
    /// this relative gap.
    pub gap_tol: f64,
    /// Maximum number of explored nodes; `0` means unlimited.
    pub max_nodes: usize,
    /// Wall-clock budget; `None` means unlimited.
    pub time_limit: Option<Duration>,
    /// Reuse each parent's optimal basis to dual-simplex-reoptimize the
    /// children. With the dense basis factorization used here the
    /// refactorization dominates node cost, so this mainly changes tie
    /// breaking; off by default.
    pub warm_start_nodes: bool,
    /// Options forwarded to the per-node LP solves.
    pub lp: SolveOptions,
}

impl Default for IlpOptions {
    fn default() -> Self {
        IlpOptions {
            int_tol: 1e-6,
            gap_tol: 1e-6,
            max_nodes: 0,
            time_limit: None,
            warm_start_nodes: false,
            lp: SolveOptions::default(),
        }
    }
}

/// Why branch-and-bound stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IlpStatus {
    /// Proven optimal within the gap tolerance.
    Optimal,
    /// A feasible incumbent exists but the node budget ran out first.
    NodeLimitFeasible,
    /// A feasible incumbent exists but the time budget ran out first.
    TimeLimitFeasible,
}

/// Result of a branch-and-bound run.
#[derive(Clone, Debug, PartialEq)]
pub struct IlpSolution {
    solution: Solution,
    status: IlpStatus,
    bound: f64,
    nodes: usize,
}

impl IlpSolution {
    /// The incumbent solution (integral within `int_tol`).
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// Objective of the incumbent, in the problem's own sense.
    pub fn objective(&self) -> f64 {
        self.solution.objective()
    }

    /// Value of one variable in the incumbent.
    pub fn value(&self, var: crate::VarId) -> f64 {
        self.solution.value(var)
    }

    /// Termination status.
    pub fn status(&self) -> IlpStatus {
        self.status
    }

    /// Best proven bound on the optimum, in the problem's own sense
    /// (equals the incumbent objective when [`IlpStatus::Optimal`]).
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Relative optimality gap `|incumbent − bound| / max(1, |incumbent|)`.
    pub fn gap(&self) -> f64 {
        (self.objective() - self.bound).abs() / self.objective().abs().max(1.0)
    }

    /// Number of branch-and-bound nodes explored.
    pub fn nodes(&self) -> usize {
        self.nodes
    }
}

/// A node: bound overrides for the integer variables touched on the path
/// from the root, plus the parent's LP bound (minimization sense).
#[derive(Clone, Debug)]
struct Node {
    bound: f64,
    overrides: Vec<(usize, f64, f64)>,
    /// The parent's optimal basis: children differ by one bound, so the
    /// dual simplex reoptimizes from here in a few pivots.
    warm: Option<Rc<Basis>>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest bound first.
        other.bound.total_cmp(&self.bound)
    }
}

/// Solves `problem` to integer optimality (or the configured limits).
///
/// # Errors
///
/// * [`SolveError::Infeasible`] — no integer-feasible point exists.
/// * [`SolveError::Unbounded`] — the LP relaxation is unbounded.
/// * [`SolveError::NodeLimit`] — a limit was hit before any incumbent.
/// * Numerical errors from the underlying simplex.
///
/// # Examples
///
/// ```
/// use metis_lp::{solve_ilp, IlpOptions, Problem, Relation, Sense};
///
/// // Knapsack: max 10a + 13b, 3a + 4b <= 6, binary.
/// let mut p = Problem::new(Sense::Maximize);
/// let a = p.add_int_var(10.0, 0.0, 1.0);
/// let b = p.add_int_var(13.0, 0.0, 1.0);
/// p.add_constraint([(a, 3.0), (b, 4.0)], Relation::Le, 6.0);
/// let sol = solve_ilp(&p, &IlpOptions::default())?;
/// assert_eq!(sol.objective(), 13.0);
/// assert_eq!(sol.value(b), 1.0);
/// # Ok::<(), metis_lp::SolveError>(())
/// ```
pub fn solve_ilp(problem: &Problem, options: &IlpOptions) -> Result<IlpSolution, SolveError> {
    solve_ilp_with_start(problem, options, None)
}

/// Like [`solve_ilp`], but seeds branch-and-bound with a known feasible
/// point (a warm start), which prunes the search immediately.
///
/// `start` must assign a value to every variable; it is used only if it
/// is feasible and integral within the configured tolerances, otherwise
/// it is silently ignored.
///
/// # Errors
///
/// Same as [`solve_ilp`].
pub fn solve_ilp_with_start(
    problem: &Problem,
    options: &IlpOptions,
    start: Option<&[f64]>,
) -> Result<IlpSolution, SolveError> {
    // metis-lint: allow(DET-02): feeds SolveStats timing only; node/iteration limits bound the search
    let started = Instant::now();
    let maximize = problem.sense() == Sense::Maximize;
    // Internal bookkeeping is in minimization sense.
    let to_internal = |obj: f64| if maximize { -obj } else { obj };
    let to_external = |obj: f64| if maximize { -obj } else { obj };

    let int_vars: Vec<usize> = problem.integer_vars().iter().map(|v| v.index()).collect();
    let mut work = problem.clone();
    let base_bounds: Vec<(f64, f64)> = int_vars
        .iter()
        .map(|&j| problem.bounds(crate::VarId(j as u32)))
        .collect();

    let mut incumbent: Option<(f64, Solution)> = None; // (internal obj, sol)
    let mut total_iters = 0usize;
    let mut nodes_explored = 0usize;

    // Warm start: adopt the provided point if feasible and integral.
    if let Some(vals) = start {
        if vals.len() == problem.num_vars()
            && problem.max_violation(vals) <= options.int_tol.max(1e-7)
            && int_vars
                .iter()
                .all(|&j| (vals[j] - vals[j].round()).abs() <= options.int_tol)
        {
            let mut vals = vals.to_vec();
            for &j in &int_vars {
                vals[j] = vals[j].round();
            }
            let obj_ext = problem.eval_objective(&vals);
            incumbent = Some((to_internal(obj_ext), Solution::new(obj_ext, vals, 0)));
        }
    }

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: f64::NEG_INFINITY,
        overrides: Vec::new(),
        warm: None,
    });

    let mut best_open_bound = f64::NEG_INFINITY;
    let mut limit_status: Option<IlpStatus> = None;

    'search: while let Some(node) = heap.pop() {
        best_open_bound = node.bound;
        if let Some((inc, _)) = &incumbent {
            // Best-bound order: once the best open bound can't improve on
            // the incumbent by more than the gap, we are done.
            if node.bound >= *inc - options.gap_tol * inc.abs().max(1.0) {
                break;
            }
        }

        // Plunge: follow one child chain depth-first from this node so
        // integral leaves (incumbents) appear early; siblings go to the
        // heap for the best-bound phase.
        let mut current = Some(node);
        while let Some(node) = current.take() {
            if options.max_nodes > 0 && nodes_explored >= options.max_nodes {
                limit_status = Some(IlpStatus::NodeLimitFeasible);
                break 'search;
            }
            if let Some(tl) = options.time_limit {
                if started.elapsed() >= tl {
                    limit_status = Some(IlpStatus::TimeLimitFeasible);
                    break 'search;
                }
            }
            nodes_explored += 1;

            // Apply this node's bounds.
            for (k, &j) in int_vars.iter().enumerate() {
                let (lo, up) = base_bounds[k];
                work.set_bounds(crate::VarId(j as u32), lo, up);
            }
            let mut conflict = false;
            for &(j, lo, up) in &node.overrides {
                let v = crate::VarId(j as u32);
                let (clo, cup) = work.bounds(v);
                let nlo = clo.max(lo);
                let nup = cup.min(up);
                if nlo > nup {
                    conflict = true;
                    break;
                }
                work.set_bounds(v, nlo, nup);
            }
            if conflict {
                continue;
            }

            let debug = std::env::var_os("METIS_ILP_DEBUG").is_some();
            let warm = if options.warm_start_nodes {
                node.warm.as_deref()
            } else {
                None
            };
            let (lp, node_basis) = match work.solve_with_basis(&options.lp, warm) {
                Ok((sol, basis)) => (sol, Rc::new(basis)),
                Err(SolveError::Infeasible) => {
                    if debug {
                        eprintln!(
                            "node {nodes_explored}: depth {} INFEASIBLE",
                            node.overrides.len()
                        );
                    }
                    continue;
                }
                Err(SolveError::Unbounded) => {
                    // Unbounded relaxation at the root means the MILP is
                    // unbounded (or infeasible; we report unbounded).
                    if node.overrides.is_empty() {
                        return Err(SolveError::Unbounded);
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            total_iters += lp.iterations();
            let node_obj = to_internal(lp.objective());
            if debug {
                let nfrac = int_vars
                    .iter()
                    .filter(|&&j| (lp.values()[j] - lp.values()[j].round()).abs() > options.int_tol)
                    .count();
                eprintln!(
                    "node {nodes_explored}: depth {} obj {node_obj:.6} frac {nfrac}",
                    node.overrides.len()
                );
            }

            if let Some((inc, _)) = &incumbent {
                if node_obj >= *inc - options.gap_tol * inc.abs().max(1.0) {
                    continue; // cannot beat the incumbent
                }
            }

            // Find the most fractional integer variable. Binary variables
            // are branched before general integers: fixing the structural
            // 0/1 decisions usually settles the integer capacities.
            let mut branch: Option<(usize, f64, f64)> = None; // (var, value, score)
            for &j in &int_vars {
                let v = lp.values()[j];
                let frac = (v - v.round()).abs();
                if frac > options.int_tol {
                    let (blo, bup) = problem.bounds(crate::VarId(j as u32));
                    let is_binary = blo >= -options.int_tol && bup <= 1.0 + options.int_tol;
                    // Lower score = better candidate.
                    let score = (v.fract().abs() - 0.5).abs() + if is_binary { 0.0 } else { 1.0 };
                    match branch {
                        Some((_, _, s)) if s <= score => {}
                        _ => branch = Some((j, v, score)),
                    }
                }
            }

            match branch {
                None => {
                    // Integral: new incumbent (round off the tolerance fuzz).
                    let mut vals = lp.values().to_vec();
                    for &j in &int_vars {
                        vals[j] = vals[j].round();
                    }
                    let obj_ext = problem.eval_objective(&vals);
                    let obj_int = to_internal(obj_ext);
                    let better = incumbent
                        .as_ref()
                        .map(|(inc, _)| obj_int < *inc)
                        .unwrap_or(true);
                    if better {
                        incumbent = Some((obj_int, Solution::new(obj_ext, vals, total_iters)));
                    }
                }
                Some((j, v, _)) => {
                    let mut down = node.overrides.clone();
                    down.push((j, f64::NEG_INFINITY, v.floor()));
                    let mut up = node.overrides.clone();
                    up.push((j, v.ceil(), f64::INFINITY));
                    // Plunge toward the rounding of the fractional value;
                    // the other child waits in the heap.
                    let (dive, defer) = if v - v.floor() >= 0.5 {
                        (up, down)
                    } else {
                        (down, up)
                    };
                    let keep = options.warm_start_nodes;
                    heap.push(Node {
                        bound: node_obj,
                        overrides: defer,
                        warm: keep.then(|| Rc::clone(&node_basis)),
                    });
                    current = Some(Node {
                        bound: node_obj,
                        overrides: dive,
                        warm: keep.then_some(node_basis),
                    });
                }
            }
        }
    }

    let (inc_obj, solution) = incumbent.ok_or(if limit_status.is_some() {
        SolveError::NodeLimit
    } else {
        SolveError::Infeasible
    })?;

    let status = match limit_status {
        Some(s) => s,
        None => IlpStatus::Optimal,
    };
    // Bound: the best open bound if the search was cut short, else the
    // incumbent itself.
    let bound_internal = match status {
        IlpStatus::Optimal => inc_obj,
        _ => heap
            .peek()
            .map(|n| n.bound)
            .unwrap_or(best_open_bound)
            .min(inc_obj),
    };

    Ok(IlpSolution {
        solution,
        status,
        bound: to_external(bound_internal),
        nodes: nodes_explored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, Relation, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn knapsack_small() {
        // max 60x1 + 100x2 + 120x3, 10x1 + 20x2 + 30x3 <= 50, binary.
        // Optimal: x2 + x3 = 220.
        let mut p = Problem::new(Sense::Maximize);
        let x1 = p.add_int_var(60.0, 0.0, 1.0);
        let x2 = p.add_int_var(100.0, 0.0, 1.0);
        let x3 = p.add_int_var(120.0, 0.0, 1.0);
        p.add_constraint([(x1, 10.0), (x2, 20.0), (x3, 30.0)], Relation::Le, 50.0);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective(), 220.0);
        assert_close(s.value(x1), 0.0);
        assert_close(s.value(x2), 1.0);
        assert_close(s.value(x3), 1.0);
        assert_eq!(s.status(), IlpStatus::Optimal);
        assert!(s.gap() < 1e-9);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y, 2x + 2y <= 5, integer → LP gives 2.5, ILP gives 2.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_int_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_int_var(1.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 2.0), (y, 2.0)], Relation::Le, 5.0);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective(), 2.0);
    }

    #[test]
    fn mixed_integer() {
        // max 3x + 2y, x integer, y continuous; x + y <= 4.5; x <= 3.2.
        // x = 3, y = 1.5 → 12.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_int_var(3.0, 0.0, 3.2);
        let y = p.add_var(2.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 4.5);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective(), 12.0);
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 1.5);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 <= x <= 0.6, x integer → infeasible.
        let mut p = Problem::new(Sense::Minimize);
        let _x = p.add_int_var(1.0, 0.4, 0.6);
        assert_eq!(
            solve_ilp(&p, &IlpOptions::default()).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer vars: B&B returns the LP optimum in one node.
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_var(1.0, 0.0, 2.5);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective(), 2.5);
        assert_eq!(s.nodes(), 1);
    }

    #[test]
    fn equality_constrained_ilp() {
        // min 5x + 4y s.t. x + y = 7, 2x + y >= 10, integer → x=3,y=4: 31.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_int_var(5.0, 0.0, f64::INFINITY);
        let y = p.add_int_var(4.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 7.0);
        p.add_constraint([(x, 2.0), (y, 1.0)], Relation::Ge, 10.0);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective(), 31.0);
    }

    #[test]
    fn subset_sum_style() {
        // The paper's NP-hardness gadget: pick a subset of {3,5,7,11}
        // summing to as much as possible without exceeding 15 → 3+5+7=15.
        let weights = [3.0, 5.0, 7.0, 11.0];
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = weights
            .iter()
            .map(|&w| p.add_int_var(w, 0.0, 1.0))
            .collect();
        p.add_constraint(
            vars.iter().zip(&weights).map(|(&v, &w)| (v, w)),
            Relation::Le,
            15.0,
        );
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective(), 15.0);
    }

    #[test]
    fn warm_started_nodes_agree_with_cold() {
        // Same optimum with and without per-node basis reuse.
        let mut p = Problem::new(Sense::Maximize);
        let n = 8;
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_int_var(4.0 + (i as f64) * 1.1, 0.0, 1.0))
            .collect();
        p.add_constraint(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 2.0 + (i % 3) as f64)),
            Relation::Le,
            9.0,
        );
        let cold = solve_ilp(&p, &IlpOptions::default()).unwrap();
        let warm = solve_ilp(
            &p,
            &IlpOptions {
                warm_start_nodes: true,
                ..IlpOptions::default()
            },
        )
        .unwrap();
        assert!((cold.objective() - warm.objective()).abs() < 1e-6);
        assert_eq!(warm.status(), IlpStatus::Optimal);
    }

    #[test]
    fn respects_node_limit() {
        // A 12-item knapsack with correlated weights forces branching.
        let mut p = Problem::new(Sense::Maximize);
        let n = 12;
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_int_var(10.0 + (i as f64), 0.0, 1.0))
            .collect();
        p.add_constraint(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 7.0 + (i as f64 % 3.0))),
            Relation::Le,
            31.0,
        );
        let opts = IlpOptions {
            max_nodes: 1,
            ..IlpOptions::default()
        };
        match solve_ilp(&p, &opts) {
            Ok(sol) => assert!(matches!(
                sol.status(),
                IlpStatus::NodeLimitFeasible | IlpStatus::Optimal
            )),
            Err(SolveError::NodeLimit) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn bound_brackets_optimum_under_limits() {
        let mut p = Problem::new(Sense::Maximize);
        let n = 10;
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_int_var(5.0 + (i as f64) * 1.3, 0.0, 1.0))
            .collect();
        p.add_constraint(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 3.0 + (i as f64 * 0.7) % 2.0)),
            Relation::Le,
            11.0,
        );
        let full = solve_ilp(&p, &IlpOptions::default()).unwrap();
        let limited = solve_ilp(
            &p,
            &IlpOptions {
                max_nodes: 3,
                ..IlpOptions::default()
            },
        );
        if let Ok(sol) = limited {
            // For maximization: incumbent <= optimum <= reported bound.
            assert!(sol.objective() <= full.objective() + 1e-6);
            assert!(sol.bound() >= full.objective() - 1e-6);
        }
    }
}
