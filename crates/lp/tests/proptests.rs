//! Property tests for the simplex and branch-and-bound solvers.
//!
//! The generator builds LPs around a known feasible point `x0` (every
//! constraint's right-hand side is derived from `x0` plus slack), so
//! feasibility is guaranteed and `c·x0` is a certified bound on the
//! optimum. That turns "is the solver right?" into checkable inequalities
//! without needing an external reference solver.

use proptest::prelude::*;

use metis_lp::{solve_ilp, IlpOptions, Problem, Relation, Sense, SolveError};

#[derive(Clone, Debug)]
struct LpCase {
    problem: Problem,
    /// A certified feasible point.
    x0: Vec<f64>,
}

fn arb_lp(integer: bool) -> impl Strategy<Value = LpCase> {
    let n_vars = 2usize..6;
    let n_rows = 1usize..6;
    (n_vars, n_rows, any::<u64>()).prop_map(move |(n, m, seed)| {
        // Simple deterministic pseudo-random stream from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // in [-1, 1)
        };
        let mut p = Problem::new(Sense::Minimize);
        let mut x0 = Vec::with_capacity(n);
        let mut vars = Vec::with_capacity(n);
        for _ in 0..n {
            let lo = (next() * 3.0).round();
            let hi = lo + (next().abs() * 5.0).round() + 1.0;
            let obj = (next() * 4.0 * 2.0).round() / 2.0;
            let v = if integer {
                p.add_int_var(obj, lo, hi)
            } else {
                p.add_var(obj, lo, hi)
            };
            vars.push(v);
            // Feasible point at an integral spot inside the box.
            let mid = ((lo + hi) / 2.0).round().clamp(lo, hi);
            x0.push(mid);
        }
        for _ in 0..m {
            let coeffs: Vec<f64> = (0..n).map(|_| (next() * 3.0).round()).collect();
            let activity: f64 = coeffs.iter().zip(&x0).map(|(c, x)| c * x).sum();
            let slack = next().abs() * 4.0;
            // Alternate row senses; rhs always keeps x0 feasible.
            let which = (next() * 3.0).abs() as u32;
            match which {
                0 => p.add_constraint(
                    vars.iter().copied().zip(coeffs.iter().copied()),
                    Relation::Le,
                    activity + slack,
                ),
                1 => p.add_constraint(
                    vars.iter().copied().zip(coeffs.iter().copied()),
                    Relation::Ge,
                    activity - slack,
                ),
                _ => p.add_constraint(
                    vars.iter().copied().zip(coeffs.iter().copied()),
                    Relation::Eq,
                    activity,
                ),
            };
        }
        LpCase { problem: p, x0 }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lp_solution_is_feasible_and_not_worse_than_x0(case in arb_lp(false)) {
        let sol = case.problem.solve().expect("x0 certifies feasibility");
        prop_assert!(
            case.problem.max_violation(sol.values()) < 1e-5,
            "solution violates constraints by {}",
            case.problem.max_violation(sol.values())
        );
        let obj_x0 = case.problem.eval_objective(&case.x0);
        prop_assert!(
            sol.objective() <= obj_x0 + 1e-6,
            "optimum {} beats certified point {}",
            sol.objective(),
            obj_x0
        );
    }

    #[test]
    fn lp_optimum_invariant_under_resolve(case in arb_lp(false)) {
        let a = case.problem.solve().unwrap();
        let b = case.problem.solve().unwrap();
        prop_assert!((a.objective() - b.objective()).abs() < 1e-9);
    }

    #[test]
    fn ilp_bracketed_by_lp_and_x0(case in arb_lp(true)) {
        let lp = case.problem.solve().expect("relaxation feasible");
        let ilp = solve_ilp(&case.problem, &IlpOptions::default())
            .expect("x0 is integral and feasible");
        // LP relaxation ≤ ILP ≤ certified integral point (minimization).
        prop_assert!(ilp.objective() >= lp.objective() - 1e-6);
        let obj_x0 = case.problem.eval_objective(&case.x0);
        prop_assert!(ilp.objective() <= obj_x0 + 1e-6);
        // The incumbent really is integral.
        for v in case.problem.integer_vars() {
            let x = ilp.value(v);
            prop_assert!((x - x.round()).abs() < 1e-6);
        }
        prop_assert!(case.problem.max_violation(ilp.solution().values()) < 1e-5);
    }

    #[test]
    fn tightening_bounds_never_improves(case in arb_lp(false)) {
        let base = case.problem.solve().unwrap();
        // Pin the first variable to the certified point: the problem
        // stays feasible (x0 satisfies it) and can only get worse.
        let mut tightened = case.problem.clone();
        tightened.add_constraint([(tightened.var(0), 1.0)], Relation::Eq, case.x0[0]);
        let t = tightened.solve().expect("x0 still feasible");
        prop_assert!(t.objective() >= base.objective() - 1e-6);
    }

    #[test]
    fn warm_start_equals_cold_after_tightening(case in arb_lp(false)) {
        let opts = metis_lp::SolveOptions::default();
        let Ok((_, basis)) = case.problem.solve_with_basis(&opts, None) else {
            return Ok(());
        };
        // Tighten the first variable toward the certified point.
        let mut tightened = case.problem.clone();
        let v = tightened.var(0);
        let (lo, up) = tightened.bounds(v);
        tightened.set_bounds(v, lo.max(case.x0[0] - 0.5), up.min(case.x0[0] + 0.5));
        let warm = tightened.solve_with_basis(&opts, Some(&basis));
        let cold = tightened.solve();
        match (warm, cold) {
            (Ok((w, _)), Ok(c)) => {
                prop_assert!((w.objective() - c.objective()).abs() < 1e-6,
                    "warm {} vs cold {}", w.objective(), c.objective());
                prop_assert!(tightened.max_violation(w.values()) < 1e-5);
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (w, c) => prop_assert!(false, "warm {w:?} vs cold {c:?}"),
        }
    }

    #[test]
    fn shrinking_a_box_to_infeasibility_is_detected(case in arb_lp(false)) {
        // Force an empty region through contradictory rows on var 0.
        let mut p = case.problem.clone();
        let v = p.var(0);
        p.add_constraint([(v, 1.0)], Relation::Ge, case.x0[0] + 1.0);
        p.add_constraint([(v, 1.0)], Relation::Le, case.x0[0] - 1.0);
        prop_assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }
}
