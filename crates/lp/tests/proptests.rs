//! Property tests for the simplex and branch-and-bound solvers.
//!
//! The generator builds LPs around a known feasible point `x0` (every
//! constraint's right-hand side is derived from `x0` plus slack), so
//! feasibility is guaranteed and `c·x0` is a certified bound on the
//! optimum. That turns "is the solver right?" into checkable inequalities
//! without needing an external reference solver.

use proptest::prelude::*;

use metis_lp::{
    certify, solve_ilp, BasisBackend, IlpOptions, Problem, Relation, Sense, SolveError,
    SolveOptions,
};

#[derive(Clone, Debug)]
struct LpCase {
    problem: Problem,
    /// A certified feasible point.
    x0: Vec<f64>,
}

fn arb_lp(integer: bool) -> impl Strategy<Value = LpCase> {
    let n_vars = 2usize..6;
    let n_rows = 1usize..6;
    (n_vars, n_rows, any::<u64>()).prop_map(move |(n, m, seed)| {
        // Simple deterministic pseudo-random stream from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // in [-1, 1)
        };
        let mut p = Problem::new(Sense::Minimize);
        let mut x0 = Vec::with_capacity(n);
        let mut vars = Vec::with_capacity(n);
        for _ in 0..n {
            let lo = (next() * 3.0).round();
            let hi = lo + (next().abs() * 5.0).round() + 1.0;
            let obj = (next() * 4.0 * 2.0).round() / 2.0;
            let v = if integer {
                p.add_int_var(obj, lo, hi)
            } else {
                p.add_var(obj, lo, hi)
            };
            vars.push(v);
            // Feasible point at an integral spot inside the box.
            let mid = ((lo + hi) / 2.0).round().clamp(lo, hi);
            x0.push(mid);
        }
        for _ in 0..m {
            let coeffs: Vec<f64> = (0..n).map(|_| (next() * 3.0).round()).collect();
            let activity: f64 = coeffs.iter().zip(&x0).map(|(c, x)| c * x).sum();
            let slack = next().abs() * 4.0;
            // Alternate row senses; rhs always keeps x0 feasible.
            let which = (next() * 3.0).abs() as u32;
            match which {
                0 => p.add_constraint(
                    vars.iter().copied().zip(coeffs.iter().copied()),
                    Relation::Le,
                    activity + slack,
                ),
                1 => p.add_constraint(
                    vars.iter().copied().zip(coeffs.iter().copied()),
                    Relation::Ge,
                    activity - slack,
                ),
                _ => p.add_constraint(
                    vars.iter().copied().zip(coeffs.iter().copied()),
                    Relation::Eq,
                    activity,
                ),
            };
        }
        LpCase { problem: p, x0 }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lp_solution_is_feasible_and_not_worse_than_x0(case in arb_lp(false)) {
        let sol = case.problem.solve().expect("x0 certifies feasibility");
        prop_assert!(
            case.problem.max_violation(sol.values()) < 1e-5,
            "solution violates constraints by {}",
            case.problem.max_violation(sol.values())
        );
        let obj_x0 = case.problem.eval_objective(&case.x0);
        prop_assert!(
            sol.objective() <= obj_x0 + 1e-6,
            "optimum {} beats certified point {}",
            sol.objective(),
            obj_x0
        );
    }

    #[test]
    fn lp_optimum_invariant_under_resolve(case in arb_lp(false)) {
        let a = case.problem.solve().unwrap();
        let b = case.problem.solve().unwrap();
        prop_assert!((a.objective() - b.objective()).abs() < 1e-9);
    }

    #[test]
    fn ilp_bracketed_by_lp_and_x0(case in arb_lp(true)) {
        let lp = case.problem.solve().expect("relaxation feasible");
        let ilp = solve_ilp(&case.problem, &IlpOptions::default())
            .expect("x0 is integral and feasible");
        // LP relaxation ≤ ILP ≤ certified integral point (minimization).
        prop_assert!(ilp.objective() >= lp.objective() - 1e-6);
        let obj_x0 = case.problem.eval_objective(&case.x0);
        prop_assert!(ilp.objective() <= obj_x0 + 1e-6);
        // The incumbent really is integral.
        for v in case.problem.integer_vars() {
            let x = ilp.value(v);
            prop_assert!((x - x.round()).abs() < 1e-6);
        }
        prop_assert!(case.problem.max_violation(ilp.solution().values()) < 1e-5);
    }

    #[test]
    fn tightening_bounds_never_improves(case in arb_lp(false)) {
        let base = case.problem.solve().unwrap();
        // Pin the first variable to the certified point: the problem
        // stays feasible (x0 satisfies it) and can only get worse.
        let mut tightened = case.problem.clone();
        tightened.add_constraint([(tightened.var(0), 1.0)], Relation::Eq, case.x0[0]);
        let t = tightened.solve().expect("x0 still feasible");
        prop_assert!(t.objective() >= base.objective() - 1e-6);
    }

    #[test]
    fn warm_start_equals_cold_after_tightening(case in arb_lp(false)) {
        let opts = metis_lp::SolveOptions::default();
        let Ok((_, basis)) = case.problem.solve_with_basis(&opts, None) else {
            return Ok(());
        };
        // Tighten the first variable toward the certified point.
        let mut tightened = case.problem.clone();
        let v = tightened.var(0);
        let (lo, up) = tightened.bounds(v);
        tightened.set_bounds(v, lo.max(case.x0[0] - 0.5), up.min(case.x0[0] + 0.5));
        let warm = tightened.solve_with_basis(&opts, Some(&basis));
        let cold = tightened.solve();
        match (warm, cold) {
            (Ok((w, _)), Ok(c)) => {
                prop_assert!((w.objective() - c.objective()).abs() < 1e-6,
                    "warm {} vs cold {}", w.objective(), c.objective());
                prop_assert!(tightened.max_violation(w.values()) < 1e-5);
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (w, c) => prop_assert!(false, "warm {w:?} vs cold {c:?}"),
        }
    }

    #[test]
    fn shrinking_a_box_to_infeasibility_is_detected(case in arb_lp(false)) {
        // Force an empty region through contradictory rows on var 0.
        let mut p = case.problem.clone();
        let v = p.var(0);
        p.add_constraint([(v, 1.0)], Relation::Ge, case.x0[0] + 1.0);
        p.add_constraint([(v, 1.0)], Relation::Le, case.x0[0] - 1.0);
        prop_assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn dense_and_sparse_backends_agree(case in arb_lp(false)) {
        let dense = SolveOptions { basis: BasisBackend::Dense, ..SolveOptions::default() };
        let sparse = SolveOptions { basis: BasisBackend::SparseLu, ..SolveOptions::default() };
        let d = case.problem.solve_with(&dense).expect("x0 certifies feasibility");
        let s = case.problem.solve_with(&sparse).expect("x0 certifies feasibility");
        prop_assert!(
            (d.objective() - s.objective()).abs() <= 1e-6 * (1.0 + d.objective().abs()),
            "dense {} vs sparse {}", d.objective(), s.objective()
        );
        prop_assert!(certify(&case.problem, &d, 1e-6).accepted());
        prop_assert!(certify(&case.problem, &s, 1e-6).accepted());
    }
}

/// Deterministic seeded generator for *sparse* LPs, larger than the
/// proptest cases: most coefficients are structural zeros, mixed row
/// senses, rhs derived from a known feasible point so every instance is
/// feasible by construction.
fn seeded_sparse_lp(seed: u64) -> (Problem, Vec<f64>) {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // in [-1, 1)
    };
    let n = 8 + (seed % 23) as usize; // 8..=30 variables
    let m = 4 + (seed % 17) as usize; // 4..=20 rows
    let mut p = Problem::new(if seed.is_multiple_of(2) {
        Sense::Minimize
    } else {
        Sense::Maximize
    });
    let mut x0 = Vec::with_capacity(n);
    let mut vars = Vec::with_capacity(n);
    for _ in 0..n {
        let lo = (next() * 4.0).round();
        let hi = lo + (next().abs() * 6.0).round() + 1.0;
        let obj = (next() * 5.0 * 2.0).round() / 2.0;
        vars.push(p.add_var(obj, lo, hi));
        x0.push(((lo + hi) / 2.0).round().clamp(lo, hi));
    }
    for _ in 0..m {
        // ~3 nonzeros per row regardless of n: genuinely sparse rows.
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for _ in 0..3 {
            let j = (next().abs() * n as f64) as usize % n;
            let c = (next() * 3.0).round();
            if c != 0.0 && !terms.iter().any(|&(tj, _)| tj == j) {
                terms.push((j, c));
            }
        }
        if terms.is_empty() {
            terms.push((0, 1.0));
        }
        let activity: f64 = terms.iter().map(|&(j, c)| c * x0[j]).sum();
        let slack = next().abs() * 4.0;
        let which = (next().abs() * 3.0) as u32;
        let rows = terms.iter().map(|&(j, c)| (vars[j], c));
        match which {
            0 => p.add_constraint(rows, Relation::Le, activity + slack),
            1 => p.add_constraint(rows, Relation::Ge, activity - slack),
            _ => p.add_constraint(rows, Relation::Eq, activity),
        };
    }
    (p, x0)
}

/// The tentpole A/B guarantee: on 200 seeded random sparse LPs the
/// dense-inverse and sparse-LU backends reach the same optimum, and
/// both solutions pass independent certification.
#[test]
fn backends_agree_on_200_seeded_sparse_lps() {
    let dense = SolveOptions {
        basis: BasisBackend::Dense,
        ..SolveOptions::default()
    };
    let sparse = SolveOptions {
        basis: BasisBackend::SparseLu,
        ..SolveOptions::default()
    };
    for seed in 0..200u64 {
        let (p, x0) = seeded_sparse_lp(seed);
        let d = p
            .solve_with(&dense)
            .unwrap_or_else(|e| panic!("seed {seed}: dense backend failed: {e:?}"));
        let s = p
            .solve_with(&sparse)
            .unwrap_or_else(|e| panic!("seed {seed}: sparse backend failed: {e:?}"));
        assert!(
            (d.objective() - s.objective()).abs() <= 1e-6 * (1.0 + d.objective().abs()),
            "seed {seed}: dense {} vs sparse {}",
            d.objective(),
            s.objective()
        );
        assert!(
            certify(&p, &d, 1e-6).accepted(),
            "seed {seed}: dense solution rejected by certification"
        );
        assert!(
            certify(&p, &s, 1e-6).accepted(),
            "seed {seed}: sparse solution rejected by certification"
        );
        // Both optima must not be worse than the certified feasible point
        // (in the problem's own sense).
        let obj_x0 = p.eval_objective(&x0);
        let ok = match p.sense() {
            Sense::Minimize => s.objective() <= obj_x0 + 1e-6,
            Sense::Maximize => s.objective() >= obj_x0 - 1e-6,
        };
        assert!(
            ok,
            "seed {seed}: optimum {} worse than certified point {obj_x0}",
            s.objective()
        );
    }
}

/// Engine-knob A/B guarantee: on 200 seeded random sparse LPs, every
/// pricing rule (full Dantzig, partial, devex) and both ratio tests
/// (textbook, Harris) — plus the Forrest–Tomlin update strategy —
/// reach the same certified optimum as the baseline configuration.
/// Pivot *sequences* legitimately differ; objectives may not.
#[test]
fn pricing_and_ratio_rules_agree_on_200_seeded_sparse_lps() {
    use metis_lp::{FactorUpdate, Pricing, RatioTest};
    let baseline = SolveOptions::default();
    let variants = [
        (
            "full",
            SolveOptions {
                pricing: Pricing::Full,
                ..baseline
            },
        ),
        (
            "partial",
            SolveOptions {
                pricing: Pricing::Partial(4),
                ..baseline
            },
        ),
        (
            "devex",
            SolveOptions {
                pricing: Pricing::Devex,
                ..baseline
            },
        ),
        (
            "harris",
            SolveOptions {
                ratio: RatioTest::Harris,
                ..baseline
            },
        ),
        (
            "devex+harris+ft",
            SolveOptions {
                pricing: Pricing::Devex,
                ratio: RatioTest::Harris,
                factor_update: FactorUpdate::ForrestTomlin,
                ..baseline
            },
        ),
    ];
    for seed in 0..200u64 {
        let (p, _) = seeded_sparse_lp(seed);
        let reference = p
            .solve_with(&baseline)
            .unwrap_or_else(|e| panic!("seed {seed}: baseline solve failed: {e:?}"));
        for (name, opts) in &variants {
            let s = p
                .solve_with(opts)
                .unwrap_or_else(|e| panic!("seed {seed}: {name} solve failed: {e:?}"));
            assert!(
                (s.objective() - reference.objective()).abs()
                    <= 1e-6 * (1.0 + reference.objective().abs()),
                "seed {seed}: {name} objective {} vs baseline {}",
                s.objective(),
                reference.objective()
            );
            assert!(
                certify(&p, &s, 1e-6).accepted(),
                "seed {seed}: {name} solution rejected by certification"
            );
            // The block-scan counter is strictly a partial-pricing
            // counter: every non-partial configuration must report 0.
            if *name != "partial" {
                assert_eq!(
                    s.stats().pricing_block_scans,
                    0,
                    "seed {seed}: {name} counted pricing block scans"
                );
            }
        }
    }
}

/// Warm starts must work identically on both backends: a basis
/// snapshotted by one backend reoptimizes correctly under the other.
#[test]
fn warm_start_bases_are_backend_portable() {
    let dense = SolveOptions {
        basis: BasisBackend::Dense,
        ..SolveOptions::default()
    };
    let sparse = SolveOptions {
        basis: BasisBackend::SparseLu,
        ..SolveOptions::default()
    };
    let mut cross_checked = 0;
    for seed in 0..40u64 {
        let (p, x0) = seeded_sparse_lp(seed);
        let Ok((base_sol, basis_d)) = p.solve_with_basis(&dense, None) else {
            continue;
        };
        let (_, basis_s) = p
            .solve_with_basis(&sparse, None)
            .expect("sparse cold solve of a feasible LP");
        // Tighten a variable toward the certified point, then reoptimize
        // the new problem from the *other* backend's basis.
        let mut tightened = p.clone();
        let v = tightened.var(0);
        let (lo, up) = tightened.bounds(v);
        tightened.set_bounds(v, lo.max(x0[0] - 0.5), up.min(x0[0] + 0.5));
        let warm_d = tightened.solve_with_basis(&dense, Some(&basis_s));
        let warm_s = tightened.solve_with_basis(&sparse, Some(&basis_d));
        match (warm_d, warm_s) {
            (Ok((wd, _)), Ok((ws, _))) => {
                assert!(
                    (wd.objective() - ws.objective()).abs() <= 1e-6 * (1.0 + wd.objective().abs()),
                    "seed {seed}: cross-backend warm objectives diverged: {} vs {}",
                    wd.objective(),
                    ws.objective()
                );
                cross_checked += 1;
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (wd, ws) => panic!("seed {seed}: warm dense {wd:?} vs warm sparse {ws:?}"),
        }
        let _ = base_sol;
    }
    assert!(
        cross_checked >= 10,
        "too few cross-backend warm starts exercised ({cross_checked})"
    );
}
