//! The service-profit-maximization (SPM) problem instance.

use serde::{Deserialize, Serialize};

use metis_netsim::{Path, PathCatalog, PathMetric, Topology};
use metis_workload::{Request, RequestId};

use crate::error::InstanceError;

/// Default number of candidate paths enumerated per DC pair.
pub const DEFAULT_PATHS_PER_PAIR: usize = 3;

/// A complete SPM instance: the WAN, the billing cycle, the requests, and
/// each request's candidate path set `P_i`.
///
/// # Examples
///
/// ```
/// use metis_core::SpmInstance;
/// use metis_netsim::topologies;
/// use metis_workload::{generate, WorkloadConfig};
///
/// let topo = topologies::sub_b4();
/// let requests = generate(&topo, &WorkloadConfig::paper(20, 1));
/// let instance = SpmInstance::new(topo, requests, 12, 3);
/// assert_eq!(instance.num_requests(), 20);
/// assert!(instance.paths(metis_workload::RequestId(0)).len() >= 1);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpmInstance {
    topo: Topology,
    requests: Vec<Request>,
    /// Candidate paths per request, cheapest first.
    paths: Vec<Vec<Path>>,
    num_slots: usize,
}

impl SpmInstance {
    /// Builds an instance, enumerating up to `paths_per_pair` cheapest
    /// loopless paths for every request.
    ///
    /// # Panics
    ///
    /// Panics on the [`SpmInstance::try_new`] error conditions: a request
    /// fails validation against the topology and cycle length, a
    /// request's endpoints are disconnected, or the cycle has no slots.
    pub fn new(
        topo: Topology,
        requests: Vec<Request>,
        num_slots: usize,
        paths_per_pair: usize,
    ) -> Self {
        // metis-lint: allow(PANIC-01): documented panicking convenience wrapper over try_new
        Self::try_new(topo, requests, num_slots, paths_per_pair).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SpmInstance::new`]: returns the first problem found
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// [`InstanceError::InvalidRequest`] for a request whose fields fail
    /// [`Request::validate`] (including `src == dst` and non-finite or
    /// non-positive rates/values), [`InstanceError::DisconnectedEndpoints`]
    /// when the topology offers no path, [`InstanceError::NoSlots`] for an
    /// empty billing cycle.
    pub fn try_new(
        topo: Topology,
        requests: Vec<Request>,
        num_slots: usize,
        paths_per_pair: usize,
    ) -> Result<Self, InstanceError> {
        let catalog = PathCatalog::build(&topo, paths_per_pair, PathMetric::Price);
        Self::try_with_catalog(topo, requests, num_slots, &catalog)
    }

    /// Builds an instance reusing a prebuilt [`PathCatalog`] (useful when
    /// many instances share a topology).
    ///
    /// # Panics
    ///
    /// Same conditions as [`SpmInstance::new`].
    pub fn with_catalog(
        topo: Topology,
        requests: Vec<Request>,
        num_slots: usize,
        catalog: &PathCatalog,
    ) -> Self {
        // metis-lint: allow(PANIC-01): documented panicking convenience wrapper over try_with_catalog
        Self::try_with_catalog(topo, requests, num_slots, catalog).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SpmInstance::with_catalog`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`SpmInstance::try_new`].
    pub fn try_with_catalog(
        topo: Topology,
        requests: Vec<Request>,
        num_slots: usize,
        catalog: &PathCatalog,
    ) -> Result<Self, InstanceError> {
        if num_slots < 1 {
            return Err(InstanceError::NoSlots);
        }
        let mut paths = Vec::with_capacity(requests.len());
        for r in &requests {
            r.validate(topo.num_nodes(), num_slots)
                .map_err(|e| InstanceError::InvalidRequest {
                    id: r.id,
                    reason: e,
                })?;
            let ps = catalog.paths(r.src, r.dst);
            if ps.is_empty() {
                return Err(InstanceError::DisconnectedEndpoints {
                    id: r.id,
                    src: r.src,
                    dst: r.dst,
                });
            }
            paths.push(ps.to_vec());
        }
        Ok(SpmInstance {
            topo,
            requests,
            paths,
            num_slots,
        })
    }

    /// The WAN.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// All requests, indexed by [`RequestId::index`].
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// One request.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn request(&self, id: RequestId) -> &Request {
        &self.requests[id.index()]
    }

    /// Number of requests `K`.
    pub fn num_requests(&self) -> usize {
        self.requests.len()
    }

    /// Number of slots `T` in the billing cycle.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Candidate paths `P_i` for a request, cheapest first.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn paths(&self, id: RequestId) -> &[Path] {
        &self.paths[id.index()]
    }

    /// Iterates `(request, candidate paths)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Request, &[Path])> {
        self.requests
            .iter()
            .zip(self.paths.iter().map(|p| p.as_slice()))
    }

    /// Sum of all bids: the revenue ceiling `Σ v_i`.
    pub fn total_value(&self) -> f64 {
        self.requests.iter().map(|r| r.value).sum()
    }

    /// A new instance over a subset of this one's requests (re-indexed
    /// densely in the given order), sharing the topology and path sets.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or repeated.
    pub fn subset(&self, indices: &[usize]) -> SpmInstance {
        // metis-lint: allow(PANIC-01): documented panicking convenience wrapper over try_subset
        self.try_subset(indices).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SpmInstance::subset`].
    ///
    /// # Errors
    ///
    /// [`InstanceError::IndexOutOfRange`] or
    /// [`InstanceError::DuplicateIndex`] for bad subset indices.
    pub fn try_subset(&self, indices: &[usize]) -> Result<SpmInstance, InstanceError> {
        let mut seen = vec![false; self.requests.len()];
        let mut requests = Vec::with_capacity(indices.len());
        let mut paths = Vec::with_capacity(indices.len());
        for (new_id, &i) in indices.iter().enumerate() {
            if i >= self.requests.len() {
                return Err(InstanceError::IndexOutOfRange {
                    index: i,
                    len: self.requests.len(),
                });
            }
            if seen[i] {
                return Err(InstanceError::DuplicateIndex { index: i });
            }
            seen[i] = true;
            let mut r = self.requests[i].clone();
            r.id = RequestId(new_id as u32);
            requests.push(r);
            paths.push(self.paths[i].clone());
        }
        Ok(SpmInstance {
            topo: self.topo.clone(),
            requests,
            paths,
            num_slots: self.num_slots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::topologies;
    use metis_workload::{generate, WorkloadConfig};

    fn instance(k: usize) -> SpmInstance {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(k, 1));
        SpmInstance::new(topo, reqs, 12, 3)
    }

    #[test]
    fn paths_connect_request_endpoints() {
        let inst = instance(30);
        for (r, ps) in inst.iter() {
            assert!(!ps.is_empty());
            for p in ps {
                assert_eq!(p.source(), r.src);
                assert_eq!(p.dest(), r.dst);
            }
        }
    }

    #[test]
    fn accessors() {
        let inst = instance(5);
        assert_eq!(inst.num_requests(), 5);
        assert_eq!(inst.num_slots(), 12);
        assert_eq!(inst.request(RequestId(2)).id, RequestId(2));
        assert!(inst.total_value() > 0.0);
        assert_eq!(inst.topology().num_nodes(), 6);
    }

    #[test]
    fn with_catalog_matches_new() {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(10, 4));
        let cat = PathCatalog::build(&topo, 3, PathMetric::Price);
        let a = SpmInstance::new(topo.clone(), reqs.clone(), 12, 3);
        let b = SpmInstance::with_catalog(topo, reqs, 12, &cat);
        for id in 0..10 {
            let id = RequestId(id);
            assert_eq!(a.paths(id), b.paths(id));
        }
    }

    #[test]
    #[should_panic(expected = "invalid request")]
    fn invalid_request_rejected() {
        let topo = topologies::sub_b4();
        let mut reqs = generate(&topo, &WorkloadConfig::paper(3, 1));
        reqs[1].end = 99;
        SpmInstance::new(topo, reqs, 12, 3);
    }

    #[test]
    fn try_new_rejects_loop_requests() {
        // src == dst must surface as a validation error, not the
        // "endpoints are disconnected" panic it used to hit.
        let topo = topologies::sub_b4();
        let mut reqs = generate(&topo, &WorkloadConfig::paper(3, 1));
        reqs[2].dst = reqs[2].src;
        let err = SpmInstance::try_new(topo, reqs, 12, 3).unwrap_err();
        match err {
            InstanceError::InvalidRequest { id, ref reason } => {
                assert_eq!(id, RequestId(2));
                assert!(reason.contains("source equals destination"), "{reason}");
            }
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
    }

    #[test]
    fn try_new_rejects_degenerate_numbers() {
        let topo = topologies::sub_b4();

        let mut reqs = generate(&topo, &WorkloadConfig::paper(3, 1));
        reqs[0].rate = f64::NAN;
        let err = SpmInstance::try_new(topo.clone(), reqs, 12, 3).unwrap_err();
        assert!(err.to_string().contains("rate"), "{err}");

        let mut reqs = generate(&topo, &WorkloadConfig::paper(3, 1));
        reqs[1].value = -2.0;
        let err = SpmInstance::try_new(topo.clone(), reqs, 12, 3).unwrap_err();
        assert!(err.to_string().contains("value"), "{err}");

        let mut reqs = generate(&topo, &WorkloadConfig::paper(3, 1));
        reqs[1].rate = -1.0;
        let err = SpmInstance::try_new(topo, reqs, 12, 3).unwrap_err();
        assert!(matches!(err, InstanceError::InvalidRequest { .. }));
    }

    #[test]
    fn try_new_rejects_zero_slots() {
        let topo = topologies::sub_b4();
        let err = SpmInstance::try_new(topo, Vec::new(), 0, 3).unwrap_err();
        assert_eq!(err, InstanceError::NoSlots);
    }

    #[test]
    fn try_subset_rejects_bad_indices() {
        let inst = instance(4);
        assert_eq!(
            inst.try_subset(&[0, 9]).unwrap_err(),
            InstanceError::IndexOutOfRange { index: 9, len: 4 }
        );
        assert_eq!(
            inst.try_subset(&[1, 2, 1]).unwrap_err(),
            InstanceError::DuplicateIndex { index: 1 }
        );
        let sub = inst.try_subset(&[3, 0]).unwrap();
        assert_eq!(sub.num_requests(), 2);
        assert_eq!(sub.request(RequestId(0)).id, RequestId(0));
    }
}
