//! The service-profit-maximization (SPM) problem instance.

use serde::{Deserialize, Serialize};

use metis_netsim::{Path, PathCatalog, PathMetric, Topology};
use metis_workload::{Request, RequestId};

/// Default number of candidate paths enumerated per DC pair.
pub const DEFAULT_PATHS_PER_PAIR: usize = 3;

/// A complete SPM instance: the WAN, the billing cycle, the requests, and
/// each request's candidate path set `P_i`.
///
/// # Examples
///
/// ```
/// use metis_core::SpmInstance;
/// use metis_netsim::topologies;
/// use metis_workload::{generate, WorkloadConfig};
///
/// let topo = topologies::sub_b4();
/// let requests = generate(&topo, &WorkloadConfig::paper(20, 1));
/// let instance = SpmInstance::new(topo, requests, 12, 3);
/// assert_eq!(instance.num_requests(), 20);
/// assert!(instance.paths(metis_workload::RequestId(0)).len() >= 1);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpmInstance {
    topo: Topology,
    requests: Vec<Request>,
    /// Candidate paths per request, cheapest first.
    paths: Vec<Vec<Path>>,
    num_slots: usize,
}

impl SpmInstance {
    /// Builds an instance, enumerating up to `paths_per_pair` cheapest
    /// loopless paths for every request.
    ///
    /// # Panics
    ///
    /// Panics if any request fails validation against the topology and
    /// cycle length, or if a request's endpoints are disconnected.
    pub fn new(
        topo: Topology,
        requests: Vec<Request>,
        num_slots: usize,
        paths_per_pair: usize,
    ) -> Self {
        let catalog = PathCatalog::build(&topo, paths_per_pair, PathMetric::Price);
        Self::with_catalog(topo, requests, num_slots, &catalog)
    }

    /// Builds an instance reusing a prebuilt [`PathCatalog`] (useful when
    /// many instances share a topology).
    ///
    /// # Panics
    ///
    /// Same conditions as [`SpmInstance::new`].
    pub fn with_catalog(
        topo: Topology,
        requests: Vec<Request>,
        num_slots: usize,
        catalog: &PathCatalog,
    ) -> Self {
        assert!(num_slots >= 1, "need at least one slot");
        let mut paths = Vec::with_capacity(requests.len());
        for r in &requests {
            r.validate(topo.num_nodes(), num_slots)
                .unwrap_or_else(|e| panic!("invalid request: {e}"));
            let ps = catalog.paths(r.src, r.dst);
            assert!(
                !ps.is_empty(),
                "request {} endpoints are disconnected ({} → {})",
                r.id,
                r.src,
                r.dst
            );
            paths.push(ps.to_vec());
        }
        SpmInstance {
            topo,
            requests,
            paths,
            num_slots,
        }
    }

    /// The WAN.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// All requests, indexed by [`RequestId::index`].
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// One request.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn request(&self, id: RequestId) -> &Request {
        &self.requests[id.index()]
    }

    /// Number of requests `K`.
    pub fn num_requests(&self) -> usize {
        self.requests.len()
    }

    /// Number of slots `T` in the billing cycle.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Candidate paths `P_i` for a request, cheapest first.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn paths(&self, id: RequestId) -> &[Path] {
        &self.paths[id.index()]
    }

    /// Iterates `(request, candidate paths)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Request, &[Path])> {
        self.requests
            .iter()
            .zip(self.paths.iter().map(|p| p.as_slice()))
    }

    /// Sum of all bids: the revenue ceiling `Σ v_i`.
    pub fn total_value(&self) -> f64 {
        self.requests.iter().map(|r| r.value).sum()
    }

    /// A new instance over a subset of this one's requests (re-indexed
    /// densely in the given order), sharing the topology and path sets.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or repeated.
    pub fn subset(&self, indices: &[usize]) -> SpmInstance {
        let mut seen = vec![false; self.requests.len()];
        let mut requests = Vec::with_capacity(indices.len());
        let mut paths = Vec::with_capacity(indices.len());
        for (new_id, &i) in indices.iter().enumerate() {
            assert!(i < self.requests.len(), "request index {i} out of range");
            assert!(!seen[i], "request index {i} repeated");
            seen[i] = true;
            let mut r = self.requests[i].clone();
            r.id = RequestId(new_id as u32);
            requests.push(r);
            paths.push(self.paths[i].clone());
        }
        SpmInstance {
            topo: self.topo.clone(),
            requests,
            paths,
            num_slots: self.num_slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::topologies;
    use metis_workload::{generate, WorkloadConfig};

    fn instance(k: usize) -> SpmInstance {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(k, 1));
        SpmInstance::new(topo, reqs, 12, 3)
    }

    #[test]
    fn paths_connect_request_endpoints() {
        let inst = instance(30);
        for (r, ps) in inst.iter() {
            assert!(!ps.is_empty());
            for p in ps {
                assert_eq!(p.source(), r.src);
                assert_eq!(p.dest(), r.dst);
            }
        }
    }

    #[test]
    fn accessors() {
        let inst = instance(5);
        assert_eq!(inst.num_requests(), 5);
        assert_eq!(inst.num_slots(), 12);
        assert_eq!(inst.request(RequestId(2)).id, RequestId(2));
        assert!(inst.total_value() > 0.0);
        assert_eq!(inst.topology().num_nodes(), 6);
    }

    #[test]
    fn with_catalog_matches_new() {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(10, 4));
        let cat = PathCatalog::build(&topo, 3, PathMetric::Price);
        let a = SpmInstance::new(topo.clone(), reqs.clone(), 12, 3);
        let b = SpmInstance::with_catalog(topo, reqs, 12, &cat);
        for id in 0..10 {
            let id = RequestId(id);
            assert_eq!(a.paths(id), b.paths(id));
        }
    }

    #[test]
    #[should_panic(expected = "invalid request")]
    fn invalid_request_rejected() {
        let topo = topologies::sub_b4();
        let mut reqs = generate(&topo, &WorkloadConfig::paper(3, 1));
        reqs[1].end = 99;
        SpmInstance::new(topo, reqs, 12, 3);
    }
}
