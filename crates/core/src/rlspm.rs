//! RL-SPM (request-limited SPM) and the Multistage Approximation
//! Algorithm (MAA, §III of the paper).
//!
//! Given the set of accepted requests, RL-SPM minimizes the bandwidth cost
//! of serving *all* of them. MAA follows the paper's three stages:
//!
//! 1. **Relaxation** — solve the LP with fractional path variables
//!    `x_{i,j} ∈ [0,1]` and fractional charged bandwidth `ĉ_e ≥ 0`.
//! 2. **Randomized rounding** — route each request on path `P_{i,j}` with
//!    probability `x̂_{i,j}` (`O(log|E| / log log|E|)`-approximation for
//!    the unsplittable-flow subproblem w.h.p.).
//! 3. **Ceiling** — charge `c_e = ⌈max_t load_e(t)⌉` integer units
//!    (`(α+1)/α`-approximation of the relaxed integral charging, where
//!    `α = min_{e ∈ E'} ĉ_e`).

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use metis_lp::{Basis, LpTrace, Problem, Relation, Sense, SolveError, SolveOptions, SolveStats};
use metis_telemetry::{names, Telemetry};
use metis_workload::RequestId;

use crate::instance::SpmInstance;
use crate::parallel::{self, ParallelConfig};
use crate::schedule::{Evaluation, Schedule};

/// Options for [`maa`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaaOptions {
    /// Number of independent rounding repetitions; the cheapest outcome is
    /// kept. The paper's algorithm rounds once; its Fig. 4b experiment
    /// repeats the rounding to study the cost distribution.
    pub rounding_repeats: usize,
    /// Base RNG seed for the rounding stage. Trial `t` draws from its own
    /// `ChaCha12` stream seeded with `seed + t`, so the set of trials — and
    /// hence the kept schedule — does not depend on how many worker
    /// threads execute them.
    pub seed: u64,
    /// Post-improve the rounded schedule by single-request path moves
    /// until no move lowers the billed cost (an extension beyond the
    /// paper's Algorithm 1; off by default).
    pub local_search: bool,
    /// Worker threads and optional trial-count override for the rounding
    /// stage.
    pub parallel: ParallelConfig,
    /// LP solver options.
    pub lp: SolveOptions,
}

impl Default for MaaOptions {
    fn default() -> Self {
        MaaOptions {
            rounding_repeats: 1,
            seed: 0,
            local_search: false,
            parallel: ParallelConfig::default(),
            lp: SolveOptions::default(),
        }
    }
}

/// Fractional optimum of the relaxed RL-SPM.
#[derive(Clone, Debug, PartialEq)]
pub struct RlspmRelaxation {
    /// `x̂_{i,j}` per request (empty row for requests outside the accepted
    /// set).
    pub x: Vec<Vec<f64>>,
    /// Fractional charged bandwidth `ĉ_e` per edge.
    pub c: Vec<f64>,
    /// Fractional cost `Σ u_e ĉ_e` — a lower bound on any integral cost.
    pub cost: f64,
    /// Work counters from the LP solve that produced this relaxation.
    pub stats: SolveStats,
    /// Per-iteration simplex trace (empty unless
    /// [`SolveOptions::trace`] was set on the LP options).
    pub lp_trace: LpTrace,
}

impl RlspmRelaxation {
    /// `α = min_{e ∈ E'} ĉ_e`: the smallest positive fractional charge,
    /// controlling the ceiling stage's `(α+1)/α` ratio. `None` when no
    /// edge carries load.
    pub fn alpha(&self) -> Option<f64> {
        self.c
            .iter()
            .copied()
            .filter(|&c| c > 1e-9)
            .fold(None, |acc: Option<f64>, c| {
                Some(acc.map_or(c, |a| a.min(c)))
            })
    }
}

/// Result of one MAA run.
#[derive(Clone, Debug)]
pub struct MaaResult {
    /// The rounded schedule: every accepted request routed, others
    /// declined.
    pub schedule: Schedule,
    /// Economic evaluation (integer peak charging).
    pub evaluation: Evaluation,
    /// The LP relaxation behind the rounding.
    pub relaxation: RlspmRelaxation,
}

/// Builds and solves the relaxed RL-SPM linear program over the requests
/// with `accepted[i] == true`.
///
/// # Errors
///
/// Propagates LP solver failures. The LP is feasible by construction
/// whenever every accepted request has at least one candidate path (an
/// [`SpmInstance`] invariant), so `Infeasible` indicates numerical
/// breakdown.
///
/// # Panics
///
/// Panics if `accepted.len() != instance.num_requests()`.
pub fn solve_rlspm_relaxation(
    instance: &SpmInstance,
    accepted: &[bool],
    lp_options: &SolveOptions,
) -> Result<RlspmRelaxation, SolveError> {
    assert_eq!(accepted.len(), instance.num_requests(), "mask length");
    let topo = instance.topology();
    let num_edges = topo.num_edges();
    let slots = instance.num_slots();

    let mut p = Problem::new(Sense::Minimize);

    // Path variables.
    let mut xvars: Vec<Vec<metis_lp::VarId>> = Vec::with_capacity(instance.num_requests());
    for (i, (r, paths)) in instance.iter().enumerate() {
        if accepted[i] {
            xvars.push(paths.iter().map(|_| p.add_var(0.0, 0.0, 1.0)).collect());
            let _ = r;
        } else {
            xvars.push(Vec::new());
        }
    }
    // Charged-bandwidth variables (fractional in the relaxation).
    let cvars: Vec<metis_lp::VarId> = topo
        .edge_ids()
        .map(|e| p.add_var(topo.price(e), 0.0, f64::INFINITY))
        .collect();

    // Σ_j x_{i,j} = 1 for accepted requests.
    for (i, vars) in xvars.iter().enumerate() {
        if accepted[i] {
            p.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Eq, 1.0);
        }
    }

    // Load rows: for each (edge, slot) that any candidate path can touch,
    // Σ r_i x_{i,j} − c_e ≤ 0.
    let mut cell_terms: Vec<Vec<(metis_lp::VarId, f64)>> = vec![Vec::new(); num_edges * slots];
    for (i, (r, paths)) in instance.iter().enumerate() {
        if !accepted[i] {
            continue;
        }
        for (j, path) in paths.iter().enumerate() {
            for &e in path.edges() {
                for t in r.start..=r.end {
                    // INDEX: e < num_edges and t ≤ r.end < slots by instance validation; flat edge×slot layout.
                    cell_terms[e.index() * slots + t].push((xvars[i][j], r.rate));
                }
            }
        }
    }
    for e in 0..num_edges {
        for t in 0..slots {
            // INDEX: e < num_edges and t ≤ r.end < slots by instance validation; flat edge×slot layout.
            let terms = &cell_terms[e * slots + t];
            if terms.is_empty() {
                continue;
            }
            let row = terms
                .iter()
                .copied()
                .chain(std::iter::once((cvars[e], -1.0)));
            p.add_constraint(row, Relation::Le, 0.0);
        }
    }

    let sol = p.solve_with(lp_options)?;
    let x: Vec<Vec<f64>> = xvars
        .iter()
        .map(|vars| vars.iter().map(|&v| sol.value(v)).collect())
        .collect();
    let c: Vec<f64> = cvars.iter().map(|&v| sol.value(v)).collect();
    Ok(RlspmRelaxation {
        x,
        c,
        cost: sol.objective(),
        stats: *sol.stats(),
        lp_trace: sol.trace().clone(),
    })
}

/// Re-solvable RL-SPM relaxation with simplex warm starts.
///
/// [`solve_rlspm_relaxation`] rebuilds its LP from scratch for every
/// acceptance mask, so the structure (which variables and rows exist)
/// depends on the mask and no simplex basis can carry over. This solver
/// instead builds one **fixed-structure** program over *all* requests
/// once:
///
/// * `x_{i,j} ∈ [0,1]` for every request and candidate path,
/// * `ĉ_e ≥ 0` per edge with objective `u_e`,
/// * an indicator `y_i` per request with the demand row
///   `Σ_j x_{i,j} − y_i = 0`, and
/// * load rows `Σ r_i x_{i,j} − ĉ_e ≤ 0` over every reachable
///   (edge, slot) cell.
///
/// Changing the mask only toggles the `y_i` bounds between `[0, 0]`
/// (declined: all of `i`'s path variables are forced to zero) and `[1, 1]`
/// (accepted: exactly one unit of flow), which keeps the previous round's
/// [`Basis`] structurally valid — each re-solve starts from it and
/// typically finishes in a handful of pivots. The optimum **value** always
/// equals the per-mask LP's; the optimal **vertex** may be a different one
/// of the tied optima than the cold rebuild finds.
///
/// # Examples
///
/// ```
/// use metis_core::{solve_rlspm_relaxation, RlspmWarmSolver, SpmInstance};
/// use metis_lp::SolveOptions;
/// use metis_netsim::topologies;
/// use metis_workload::{generate, WorkloadConfig};
///
/// let topo = topologies::sub_b4();
/// let requests = generate(&topo, &WorkloadConfig::paper(10, 5));
/// let instance = SpmInstance::new(topo, requests, 12, 3);
///
/// let mut solver = RlspmWarmSolver::new(&instance);
/// let opts = SolveOptions::default();
/// let all = vec![true; 10];
/// let warm = solver.solve(&all, &opts)?;
/// let cold = solve_rlspm_relaxation(&instance, &all, &opts)?;
/// assert!((warm.cost - cold.cost).abs() < 1e-6);
/// # Ok::<(), metis_lp::SolveError>(())
/// ```
#[derive(Clone)]
pub struct RlspmWarmSolver {
    problem: Problem,
    xvars: Vec<Vec<metis_lp::VarId>>,
    cvars: Vec<metis_lp::VarId>,
    yvars: Vec<metis_lp::VarId>,
    basis: Option<Basis>,
    warm_solves: usize,
    cold_solves: usize,
}

impl RlspmWarmSolver {
    /// Builds the fixed-structure program for `instance`. All requests
    /// start declined; [`RlspmWarmSolver::solve`] sets the actual mask.
    pub fn new(instance: &SpmInstance) -> Self {
        let topo = instance.topology();
        let num_edges = topo.num_edges();
        let slots = instance.num_slots();

        let mut p = Problem::new(Sense::Minimize);
        let xvars: Vec<Vec<metis_lp::VarId>> = instance
            .iter()
            .map(|(_, paths)| paths.iter().map(|_| p.add_var(0.0, 0.0, 1.0)).collect())
            .collect();
        let cvars: Vec<metis_lp::VarId> = topo
            .edge_ids()
            .map(|e| p.add_var(topo.price(e), 0.0, f64::INFINITY))
            .collect();
        let yvars: Vec<metis_lp::VarId> = (0..instance.num_requests())
            .map(|_| p.add_var(0.0, 0.0, 0.0))
            .collect();

        // Σ_j x_{i,j} − y_i = 0 for every request.
        for (i, vars) in xvars.iter().enumerate() {
            p.add_constraint(
                vars.iter()
                    .map(|&v| (v, 1.0))
                    .chain(std::iter::once((yvars[i], -1.0))),
                Relation::Eq,
                0.0,
            );
        }

        // Load rows over every cell any candidate path can touch.
        let mut cell_terms: Vec<Vec<(metis_lp::VarId, f64)>> = vec![Vec::new(); num_edges * slots];
        for (i, (r, paths)) in instance.iter().enumerate() {
            for (j, path) in paths.iter().enumerate() {
                for &e in path.edges() {
                    for t in r.start..=r.end {
                        // INDEX: e < num_edges and t ≤ r.end < slots by instance validation; flat edge×slot layout.
                        cell_terms[e.index() * slots + t].push((xvars[i][j], r.rate));
                    }
                }
            }
        }
        for e in 0..num_edges {
            for t in 0..slots {
                // INDEX: e < num_edges and t ≤ r.end < slots by instance validation; flat edge×slot layout.
                let terms = &cell_terms[e * slots + t];
                if terms.is_empty() {
                    continue;
                }
                let row = terms
                    .iter()
                    .copied()
                    .chain(std::iter::once((cvars[e], -1.0)));
                p.add_constraint(row, Relation::Le, 0.0);
            }
        }

        RlspmWarmSolver {
            problem: p,
            xvars,
            cvars,
            yvars,
            basis: None,
            warm_solves: 0,
            cold_solves: 0,
        }
    }

    /// Solves the relaxation for `accepted`, warm-starting from the last
    /// solve's basis when one exists. If the warm restart fails for any
    /// reason (e.g. a singular restored factorization reported as
    /// infeasibility), the basis is discarded and the solve retried cold.
    ///
    /// # Errors
    ///
    /// Propagates LP failures from the cold path.
    ///
    /// # Panics
    ///
    /// Panics if `accepted.len() != instance.num_requests()` for the
    /// instance this solver was built from.
    pub fn solve(
        &mut self,
        accepted: &[bool],
        lp_options: &SolveOptions,
    ) -> Result<RlspmRelaxation, SolveError> {
        assert_eq!(accepted.len(), self.yvars.len(), "mask length");
        for (i, &on) in accepted.iter().enumerate() {
            let b = if on { 1.0 } else { 0.0 };
            self.problem.set_bounds(self.yvars[i], b, b);
        }
        let had_basis = self.basis.is_some();
        let attempt = self
            .problem
            .solve_with_basis(lp_options, self.basis.as_ref());
        let (sol, basis) = match attempt {
            Ok(pair) => {
                if had_basis {
                    self.warm_solves += 1;
                } else {
                    self.cold_solves += 1;
                }
                pair
            }
            Err(_) if had_basis => {
                self.basis = None;
                self.cold_solves += 1;
                self.problem.solve_with_basis(lp_options, None)?
            }
            Err(e) => return Err(e),
        };
        self.basis = Some(basis);

        let x: Vec<Vec<f64>> = self
            .xvars
            .iter()
            .enumerate()
            .map(|(i, vars)| {
                if accepted[i] {
                    vars.iter().map(|&v| sol.value(v)).collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let c: Vec<f64> = self.cvars.iter().map(|&v| sol.value(v)).collect();
        Ok(RlspmRelaxation {
            x,
            c,
            cost: sol.objective(),
            stats: *sol.stats(),
            lp_trace: sol.trace().clone(),
        })
    }

    /// Solves that started from a previous basis (including ones the
    /// simplex internally restarted cold after a numerical failure).
    pub fn warm_solves(&self) -> usize {
        self.warm_solves
    }

    /// Solves that built a basis from scratch.
    pub fn cold_solves(&self) -> usize {
        self.cold_solves
    }

    /// Drops the stored basis, forcing the next solve to start cold.
    pub fn reset_basis(&mut self) {
        self.basis = None;
    }
}

/// Runs MAA like [`maa`], but solves the relaxation through a reusable
/// [`RlspmWarmSolver`] so consecutive calls (e.g. the Metis alternation
/// rounds) warm-start the simplex from the previous acceptance mask's
/// basis.
///
/// # Errors
///
/// Propagates LP failures from the relaxation stage.
///
/// # Panics
///
/// Panics as [`maa`] does, or if `solver` was built from a different
/// instance.
pub fn maa_with_solver(
    instance: &SpmInstance,
    accepted: &[bool],
    options: &MaaOptions,
    solver: &mut RlspmWarmSolver,
) -> Result<MaaResult, SolveError> {
    maa_instrumented(
        instance,
        accepted,
        options,
        Some(solver),
        &Telemetry::disabled(),
    )
}

/// Runs MAA with optional warm starts, recording telemetry into `tele`.
///
/// This is the instrumented superset of [`maa`] (pass `None` for
/// `solver`) and [`maa_with_solver`] (pass `Some`): the relaxation solve
/// runs under the `maa.relax` span, the rounding trials under
/// `maa.rounding`, LP work counters land in the `lp.*` metrics, and each
/// trial's profit is observed into the `maa.trials.profit` histogram.
/// Recording is write-only — passing [`Telemetry::disabled`] (what the
/// plain entry points do) yields bit-identical results.
///
/// # Errors
///
/// Propagates LP failures from the relaxation stage.
///
/// # Panics
///
/// Panics as [`maa`] does, or if `solver` was built from a different
/// instance.
pub fn maa_instrumented(
    instance: &SpmInstance,
    accepted: &[bool],
    options: &MaaOptions,
    solver: Option<&mut RlspmWarmSolver>,
    tele: &Telemetry,
) -> Result<MaaResult, SolveError> {
    let relaxation = {
        let mut relax = tele.span(names::SPAN_MAA_RELAX);
        let relaxation = match solver {
            Some(s) => s.solve(accepted, &options.lp)?,
            None => solve_rlspm_relaxation(instance, accepted, &options.lp)?,
        };
        relax.arg(names::ARG_LP_ITERATIONS, relaxation.stats.iterations as f64);
        relaxation
    };
    crate::obs::record_lp_stats(tele, &relaxation.stats);
    crate::obs::record_lp_trace(tele, &relaxation.lp_trace);
    Ok(maa_from_relaxation(
        instance, accepted, options, relaxation, tele,
    ))
}

/// Runs MAA over the accepted requests: relax → round → ceil.
///
/// Every request with `accepted[i] == true` is routed on exactly one of
/// its candidate paths; the others are declined in the returned schedule.
///
/// # Errors
///
/// Propagates LP failures from the relaxation stage.
///
/// # Panics
///
/// Panics if `accepted.len() != instance.num_requests()` or
/// `options.rounding_repeats == 0`.
///
/// # Examples
///
/// ```
/// use metis_core::{maa, MaaOptions, SpmInstance};
/// use metis_netsim::topologies;
/// use metis_workload::{generate, WorkloadConfig};
///
/// let topo = topologies::sub_b4();
/// let requests = generate(&topo, &WorkloadConfig::paper(15, 3));
/// let instance = SpmInstance::new(topo, requests, 12, 3);
/// let accepted = vec![true; instance.num_requests()];
/// let result = maa(&instance, &accepted, &MaaOptions::default())?;
/// assert_eq!(result.schedule.num_accepted(), 15);
/// assert!(result.evaluation.cost >= result.relaxation.cost - 1e-6);
/// # Ok::<(), metis_lp::SolveError>(())
/// ```
pub fn maa(
    instance: &SpmInstance,
    accepted: &[bool],
    options: &MaaOptions,
) -> Result<MaaResult, SolveError> {
    maa_instrumented(instance, accepted, options, None, &Telemetry::disabled())
}

/// Rounding + ceiling stages of MAA, given an already-solved relaxation.
///
/// Trials run fanned across `options.parallel` worker threads; trial `t`
/// rounds with its own `ChaCha12` stream seeded `seed + t`, and the
/// cheapest schedule wins (first trial wins ties), so the result is
/// bit-identical for any thread count.
fn maa_from_relaxation(
    instance: &SpmInstance,
    accepted: &[bool],
    options: &MaaOptions,
    relaxation: RlspmRelaxation,
    tele: &Telemetry,
) -> MaaResult {
    let _rounding = tele.span(names::SPAN_MAA_ROUNDING);
    let trials = options.parallel.effective_trials(options.rounding_repeats);
    assert!(trials >= 1, "need at least one rounding");
    let threads = options.parallel.effective_threads();
    let rounded = parallel::run_indexed(trials, threads, |trial| {
        let mut rng = ChaCha12Rng::seed_from_u64(options.seed.wrapping_add(trial as u64));
        let schedule = round_schedule(instance, accepted, &relaxation.x, &mut rng);
        let cost = schedule.load(instance).total_cost(instance.topology());
        (cost, schedule)
    });
    // Observed after the index-ordered reduction, on the caller's thread,
    // so recording never races and never perturbs the parallel region.
    if tele.is_enabled() {
        let revenue: f64 = instance
            .requests()
            .iter()
            .zip(accepted)
            .filter(|(_, &a)| a)
            .map(|(r, _)| r.value)
            .sum();
        for (cost, _) in &rounded {
            tele.observe(names::MAA_TRIALS_PROFIT, revenue - cost);
        }
    }
    let mut best: Option<(f64, Schedule)> = None;
    for (cost, schedule) in rounded {
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, schedule));
        }
    }
    // metis-lint: allow(PANIC-01): ParallelConfig::trials is clamped to ≥ 1, so one rounding always runs
    let (_, mut schedule) = best.expect("at least one rounding ran");
    if options.local_search {
        improve_by_path_moves(instance, &mut schedule);
    }
    let evaluation = schedule.evaluate(instance);
    MaaResult {
        schedule,
        evaluation,
        relaxation,
    }
}

/// First-improvement local search: move one accepted request to another
/// candidate path whenever that lowers the total billed cost; repeat
/// until a fixed point. Each accepted move strictly lowers the cost, and
/// the cost lives on a finite grid of integer unit charges, so this
/// terminates.
fn improve_by_path_moves(instance: &SpmInstance, schedule: &mut Schedule) {
    let topo = instance.topology();
    let mut load = schedule.load(instance);
    let mut cost = load.total_cost(topo);
    loop {
        let mut improved = false;
        for i in 0..instance.num_requests() {
            let id = RequestId(i as u32);
            let Some(current) = schedule.path_choice(id) else {
                continue;
            };
            let r = instance.request(id);
            let paths = instance.paths(id);
            for j in 0..paths.len() {
                if j == current {
                    continue;
                }
                for &e in paths[current].edges() {
                    load.remove(e, r.start, r.end, r.rate);
                }
                for &e in paths[j].edges() {
                    load.add(e, r.start, r.end, r.rate);
                }
                let new_cost = load.total_cost(topo);
                if new_cost < cost - 1e-9 {
                    cost = new_cost;
                    schedule.set(id, Some(j));
                    improved = true;
                    break; // re-fetch `current` for this request
                }
                // Revert.
                for &e in paths[j].edges() {
                    load.remove(e, r.start, r.end, r.rate);
                }
                for &e in paths[current].edges() {
                    load.add(e, r.start, r.end, r.rate);
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// One randomized-rounding pass: pick path `j` with probability `x̂_{i,j}`
/// for every accepted request (declined requests stay out).
///
/// Exposed so the Fig. 4b experiment can redraw many roundings from a
/// single solved relaxation.
///
/// # Panics
///
/// Panics if `accepted` or `x` don't match the instance.
pub fn round_schedule(
    instance: &SpmInstance,
    accepted: &[bool],
    x: &[Vec<f64>],
    rng: &mut impl Rng,
) -> Schedule {
    let mut schedule = Schedule::decline_all(instance.num_requests());
    for i in 0..instance.num_requests() {
        if !accepted[i] {
            continue;
        }
        let probs = &x[i];
        let total: f64 = probs.iter().map(|&p| p.max(0.0)).sum();
        let id = RequestId(i as u32);
        if total <= 1e-12 {
            // Degenerate LP output; fall back to the cheapest path.
            schedule.set(id, Some(0));
            continue;
        }
        let mut draw = rng.gen_range(0.0..total);
        let mut chosen = probs.len() - 1;
        for (j, &pj) in probs.iter().enumerate() {
            let pj = pj.max(0.0);
            if draw < pj {
                chosen = j;
                break;
            }
            draw -= pj;
        }
        schedule.set(id, Some(chosen));
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::topologies;
    use metis_workload::{generate, WorkloadConfig};

    fn instance(k: usize, seed: u64) -> SpmInstance {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(k, seed));
        SpmInstance::new(topo, reqs, 12, 3)
    }

    #[test]
    fn relaxation_satisfies_demands() {
        let inst = instance(20, 1);
        let accepted = vec![true; 20];
        let rel = solve_rlspm_relaxation(&inst, &accepted, &SolveOptions::default()).unwrap();
        for i in 0..20 {
            let sum: f64 = rel.x[i].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "request {i} fractional sum {sum}");
        }
        assert!(rel.cost > 0.0);
        assert!(rel.alpha().unwrap() > 0.0);
    }

    #[test]
    fn relaxation_covers_peak_load() {
        // ĉ_e must dominate the fractional load at every slot.
        let inst = instance(25, 7);
        let accepted = vec![true; 25];
        let rel = solve_rlspm_relaxation(&inst, &accepted, &SolveOptions::default()).unwrap();
        let slots = inst.num_slots();
        let mut load = vec![0.0; inst.topology().num_edges() * slots];
        for (i, (r, paths)) in inst.iter().enumerate() {
            for (j, path) in paths.iter().enumerate() {
                for &e in path.edges() {
                    for t in r.start..=r.end {
                        load[e.index() * slots + t] += r.rate * rel.x[i][j];
                    }
                }
            }
        }
        for e in 0..inst.topology().num_edges() {
            for t in 0..slots {
                assert!(
                    load[e * slots + t] <= rel.c[e] + 1e-6,
                    "edge {e} slot {t}: load {} > ĉ {}",
                    load[e * slots + t],
                    rel.c[e]
                );
            }
        }
    }

    #[test]
    fn skipped_requests_stay_out() {
        let inst = instance(10, 2);
        let mut accepted = vec![true; 10];
        accepted[3] = false;
        accepted[7] = false;
        let res = maa(&inst, &accepted, &MaaOptions::default()).unwrap();
        assert_eq!(res.schedule.num_accepted(), 8);
        assert!(!res.schedule.is_accepted(RequestId(3)));
        assert!(!res.schedule.is_accepted(RequestId(7)));
        assert!(res.relaxation.x[3].is_empty());
    }

    #[test]
    fn maa_cost_at_least_lp_bound() {
        let inst = instance(30, 3);
        let accepted = vec![true; 30];
        let res = maa(&inst, &accepted, &MaaOptions::default()).unwrap();
        assert!(res.evaluation.cost >= res.relaxation.cost - 1e-6);
        assert_eq!(res.evaluation.accepted, 30);
        // All charged units are integral.
        for &c in &res.evaluation.charged {
            assert_eq!(c.fract(), 0.0);
        }
    }

    #[test]
    fn rounding_deterministic_per_seed() {
        let inst = instance(25, 4);
        let accepted = vec![true; 25];
        let opts = MaaOptions {
            seed: 99,
            ..MaaOptions::default()
        };
        let a = maa(&inst, &accepted, &opts).unwrap();
        let b = maa(&inst, &accepted, &opts).unwrap();
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn more_repeats_never_costlier() {
        let inst = instance(25, 5);
        let accepted = vec![true; 25];
        let one = maa(
            &inst,
            &accepted,
            &MaaOptions {
                rounding_repeats: 1,
                seed: 11,
                ..MaaOptions::default()
            },
        )
        .unwrap();
        let many = maa(
            &inst,
            &accepted,
            &MaaOptions {
                rounding_repeats: 16,
                seed: 11,
                ..MaaOptions::default()
            },
        )
        .unwrap();
        assert!(many.evaluation.cost <= one.evaluation.cost + 1e-9);
    }

    #[test]
    fn trials_bit_identical_across_thread_counts() {
        let inst = instance(25, 9);
        let accepted = vec![true; 25];
        let base = MaaOptions {
            rounding_repeats: 8,
            seed: 42,
            ..MaaOptions::default()
        };
        let serial = maa(&inst, &accepted, &base).unwrap();
        for threads in [2, 8] {
            let opts = MaaOptions {
                parallel: ParallelConfig {
                    threads,
                    ..ParallelConfig::default()
                },
                ..base
            };
            let par = maa(&inst, &accepted, &opts).unwrap();
            assert_eq!(par.schedule, serial.schedule, "threads = {threads}");
            assert_eq!(par.evaluation, serial.evaluation, "threads = {threads}");
        }
    }

    #[test]
    fn trials_override_inherits_and_wins() {
        let inst = instance(20, 10);
        let accepted = vec![true; 20];
        // trials = 16 via the override must equal rounding_repeats = 16.
        let by_repeats = maa(
            &inst,
            &accepted,
            &MaaOptions {
                rounding_repeats: 16,
                seed: 3,
                ..MaaOptions::default()
            },
        )
        .unwrap();
        let by_override = maa(
            &inst,
            &accepted,
            &MaaOptions {
                rounding_repeats: 1,
                seed: 3,
                parallel: ParallelConfig {
                    threads: 2,
                    trials: 16,
                },
                ..MaaOptions::default()
            },
        )
        .unwrap();
        assert_eq!(by_override.schedule, by_repeats.schedule);
    }

    #[test]
    fn single_request_takes_cheapest_path() {
        // With one request, the LP routes it fully on the cheapest path and
        // rounding must follow.
        let inst = instance(1, 6);
        let res = maa(&inst, &[true], &MaaOptions::default()).unwrap();
        let id = RequestId(0);
        let j = res.schedule.path_choice(id).unwrap();
        let paths = inst.paths(id);
        let chosen_price = paths[j].price(inst.topology());
        let min_price = paths
            .iter()
            .map(|p| p.price(inst.topology()))
            .fold(f64::INFINITY, f64::min);
        assert!(chosen_price <= min_price + 1e-9);
    }

    #[test]
    fn local_search_never_hurts_and_keeps_demands() {
        for seed in 0..3 {
            let inst = instance(40, seed);
            let accepted = vec![true; 40];
            let plain = maa(
                &inst,
                &accepted,
                &MaaOptions {
                    seed,
                    ..MaaOptions::default()
                },
            )
            .unwrap();
            let improved = maa(
                &inst,
                &accepted,
                &MaaOptions {
                    seed,
                    local_search: true,
                    ..MaaOptions::default()
                },
            )
            .unwrap();
            assert!(improved.evaluation.cost <= plain.evaluation.cost + 1e-9);
            assert_eq!(improved.schedule.num_accepted(), 40);
        }
    }

    #[test]
    fn warm_solver_matches_cold_relaxation_cost() {
        let inst = instance(20, 12);
        let opts = SolveOptions::default();
        let mut solver = RlspmWarmSolver::new(&inst);

        let mut masks = vec![vec![true; 20]];
        let mut partial = vec![true; 20];
        for i in [1, 4, 9, 16] {
            partial[i] = false;
        }
        masks.push(partial);
        masks.push(vec![true; 20]); // back to full: basis reuse again
        masks.push(vec![false; 20]);

        for mask in &masks {
            let warm = solver.solve(mask, &opts).unwrap();
            let cold = solve_rlspm_relaxation(&inst, mask, &opts).unwrap();
            assert!(
                (warm.cost - cold.cost).abs() < 1e-6,
                "warm {} vs cold {}",
                warm.cost,
                cold.cost
            );
            for (i, &on) in mask.iter().enumerate() {
                if on {
                    let sum: f64 = warm.x[i].iter().sum();
                    assert!((sum - 1.0).abs() < 1e-6, "request {i} sum {sum}");
                } else {
                    assert!(warm.x[i].is_empty(), "declined request {i} has x row");
                }
            }
        }
        assert_eq!(solver.cold_solves(), 1, "only the first solve is cold");
        assert_eq!(solver.warm_solves(), masks.len() - 1);
    }

    #[test]
    fn maa_with_solver_matches_maa_economics() {
        let inst = instance(15, 13);
        let accepted = vec![true; 15];
        let options = MaaOptions {
            seed: 7,
            rounding_repeats: 4,
            ..MaaOptions::default()
        };
        let mut solver = RlspmWarmSolver::new(&inst);
        let warm = maa_with_solver(&inst, &accepted, &options, &mut solver).unwrap();
        let cold = maa(&inst, &accepted, &options).unwrap();
        // Degenerate LP optima may differ vertex-wise, but the relaxation
        // value is unique and both pipelines must respect the LP bound.
        assert!((warm.relaxation.cost - cold.relaxation.cost).abs() < 1e-6);
        assert!(warm.evaluation.cost >= warm.relaxation.cost - 1e-6);
        assert_eq!(warm.schedule.num_accepted(), 15);
    }

    #[test]
    fn warm_solver_reset_forces_cold() {
        let inst = instance(8, 14);
        let opts = SolveOptions::default();
        let mut solver = RlspmWarmSolver::new(&inst);
        solver.solve(&[true; 8], &opts).unwrap();
        solver.reset_basis();
        solver.solve(&[true; 8], &opts).unwrap();
        assert_eq!(solver.cold_solves(), 2);
        assert_eq!(solver.warm_solves(), 0);
    }

    #[test]
    fn empty_acceptance_is_free() {
        let inst = instance(5, 8);
        let res = maa(&inst, &[false; 5], &MaaOptions::default()).unwrap();
        assert_eq!(res.evaluation.cost, 0.0);
        assert_eq!(res.schedule.num_accepted(), 0);
        assert_eq!(res.relaxation.alpha(), None);
    }
}
