//! The Metis alternation framework (§II-C, Fig. 1 of the paper).
//!
//! Metis alternates the two SPM variants: the **RL-SPM Solver** (MAA)
//! minimizes cost for the currently-accepted requests; the **BW Limiter**
//! tightens capacities by rule `τ`; the **BL-SPM Solver** (TAA) re-selects
//! the revenue-maximizing subset under those capacities; the **SP
//! Updater** keeps the most profitable schedule seen. The loop runs `θ`
//! rounds or until the accepted set drains.

use std::fmt;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use metis_lp::SolveError;
use metis_telemetry::{names, Telemetry};

use crate::blspm::{taa_instrumented, BlspmWarmSolver, TaaOptions};
use crate::error::MetisError;
use crate::faults::FaultPlan;
use crate::instance::SpmInstance;
use crate::limiter::LimiterRule;
use crate::parallel::ParallelConfig;
use crate::rlspm::{maa_instrumented, MaaOptions, RlspmWarmSolver};
use crate::schedule::{Evaluation, Schedule};

/// Configuration of one Metis run.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct MetisConfig {
    /// Number of alternation rounds `θ`; each round is one
    /// limit → TAA → MAA pass. `0` runs only the initial MAA.
    pub theta: usize,
    /// The bandwidth-reduction rule `τ`.
    pub limiter: LimiterRule,
    /// Worker threads and rounding-trial override, propagated to both
    /// phases (this field wins over `maa.parallel` / `taa.parallel` inside
    /// [`metis`]). Thread count never changes results: trials and
    /// candidate scores come from per-index RNG streams / read-only state
    /// and are always reduced in index order.
    pub parallel: ParallelConfig,
    /// Reuse each phase's simplex basis across alternation rounds
    /// ([`RlspmWarmSolver`] / [`BlspmWarmSolver`]) instead of solving
    /// every round's LP from scratch. Off by default: warm and cold runs
    /// reach the same LP optima, but may pick different tied vertices and
    /// therefore different (equally valid) schedules.
    pub warm_start: bool,
    /// RL-SPM solver (MAA) options.
    pub maa: MaaOptions,
    /// BL-SPM solver (TAA) options.
    pub taa: TaaOptions,
    /// Audit every solve: certify each LP solution independently
    /// ([`metis_lp::SolveOptions::verify`]) and re-derive each recorded
    /// schedule's load, peaks, and accounting from scratch
    /// ([`crate::audit`]), collecting the outcome in
    /// [`MetisResult::audit`]. Always on under `debug_assertions`;
    /// this flag forces it in release builds too.
    pub audit: bool,
}

impl MetisConfig {
    /// A sensible default: `θ = 8` rounds with the paper's
    /// min-utilization rule.
    pub fn with_theta(theta: usize) -> Self {
        MetisConfig {
            theta,
            ..MetisConfig::default()
        }
    }
}

/// Which solver produced an iteration's schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// RL-SPM Solver (MAA).
    Maa,
    /// BL-SPM Solver (TAA).
    Taa,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Maa => "MAA",
            Phase::Taa => "TAA",
        })
    }
}

/// One entry of the profit trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Which solver ran.
    pub phase: Phase,
    /// Profit of the schedule it produced.
    pub profit: f64,
    /// Number of accepted requests in that schedule.
    pub accepted: usize,
}

/// One entry of the solver convergence trace: an *attempted* solver
/// invocation, whether it produced a schedule or failed.
///
/// Unlike [`IterationRecord`] (which only exists for successful solves),
/// the convergence trace records one entry per attempt, so a run's shape
/// — which rounds converged, which degraded, how hard the LP worked —
/// can be reconstructed after the fact. Captured unconditionally (it is
/// pure bookkeeping on values the framework already computes), so
/// results stay bit-identical with telemetry on or off.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// Alternation round: 0 for the initialization MAA, `1..=θ` after.
    pub round: usize,
    /// Which solver was invoked.
    pub phase: Phase,
    /// Whether the solve produced a schedule. `false` means the attempt
    /// failed even after any cold retry and the round's update was
    /// skipped; the profit/effort fields below are then zero.
    pub completed: bool,
    /// Profit of the schedule this invocation produced (0 if it failed).
    pub profit: f64,
    /// The SP Updater's record *after* this invocation was folded in.
    pub best_profit: f64,
    /// Accepted requests in the produced schedule (0 if it failed).
    pub accepted: usize,
    /// TAA's scaling factor `μ` — `None` for MAA entries and for TAA
    /// rounds that declined everything rather than scale without a
    /// guarantee.
    pub mu: Option<f64>,
    /// Simplex pivots spent on this invocation's LP relaxation.
    pub lp_iterations: usize,
    /// Whether that LP reoptimized from a prior basis.
    pub warm_started: bool,
    /// Contained failures attributed to this invocation (warm retries
    /// and final failures); the sum over all entries equals
    /// [`MetisResult::incidents`]`.len()` for offline runs.
    pub incidents: usize,
}

impl RoundTrace {
    /// Trace length bound: entries past this are dropped (and counted in
    /// the `alternation.trace.dropped` metric) so adversarially large
    /// `θ` cannot balloon the result.
    pub const CAPACITY: usize = 4_096;
}

/// Appends a convergence-trace entry, enforcing [`RoundTrace::CAPACITY`].
fn push_round_trace(tele: &Telemetry, trace: &mut Vec<RoundTrace>, entry: RoundTrace) {
    if trace.len() >= RoundTrace::CAPACITY {
        tele.incr(names::TRACE_ROUNDS_DROPPED);
        return;
    }
    crate::obs::record_round_trace(tele, &entry);
    trace.push(entry);
}

/// One contained failure observed during a run.
///
/// Incidents never abort the run: the framework records what went wrong
/// and degrades (retries a solve cold, skips a round's update, or skips
/// a whole online epoch) while the SP Updater keeps the best-so-far
/// schedule. `round` is 0 for the initialization MAA and `1..=θ` for the
/// alternation rounds; online epochs use their own `epoch` index.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Incident {
    /// A solve failed (after any retry); the round's update was skipped
    /// and the alternation continued from the best-so-far schedule.
    SolveFailed {
        /// The phase whose solve failed.
        phase: Phase,
        /// The alternation round (0 = initialization).
        round: usize,
        /// The final error after retries.
        error: SolveError,
    },
    /// A warm-started solve failed and was retried from a cold basis.
    WarmRetry {
        /// The phase whose warm solve failed.
        phase: Phase,
        /// The alternation round (0 = initialization).
        round: usize,
        /// The warm attempt's error.
        error: SolveError,
    },
    /// An online epoch's whole run failed; its requests were declined
    /// and the remaining epochs proceeded normally.
    EpochSkipped {
        /// The skipped epoch.
        epoch: usize,
        /// How many requests arrived (and were therefore declined) in it.
        arrived: usize,
        /// The failure that killed the epoch.
        error: SolveError,
    },
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Incident::SolveFailed {
                phase,
                round,
                error,
            } => write!(f, "{phase} solve failed at round {round}: {error}"),
            Incident::WarmRetry {
                phase,
                round,
                error,
            } => write!(
                f,
                "{phase} warm solve failed at round {round}, retrying cold: {error}"
            ),
            Incident::EpochSkipped {
                epoch,
                arrived,
                error,
            } => write!(
                f,
                "epoch {epoch} skipped, {arrived} arrived requests declined: {error}"
            ),
        }
    }
}

/// Counts an incident in the metrics registry, emits it on the event
/// stream, and appends it to the run's incident list — the single funnel
/// every contained failure goes through.
pub(crate) fn note_incident(tele: &Telemetry, incidents: &mut Vec<Incident>, incident: Incident) {
    match &incident {
        Incident::SolveFailed { .. } => tele.incr(names::INCIDENT_SOLVE_FAILED),
        Incident::WarmRetry { .. } => tele.incr(names::INCIDENT_WARM_RETRY),
        Incident::EpochSkipped { .. } => tele.incr(names::INCIDENT_EPOCH_SKIPPED),
    }
    tele.event(names::EVENT_INCIDENT, || incident.to_string());
    incidents.push(incident);
}

/// Result of a Metis run.
#[derive(Clone, Debug)]
pub struct MetisResult {
    /// The most profitable schedule seen (the SP Updater's record).
    pub schedule: Schedule,
    /// Its evaluation.
    pub evaluation: Evaluation,
    /// Per-solver-invocation profit trace, in execution order.
    pub history: Vec<IterationRecord>,
    /// Number of completed alternation rounds (≤ `θ`).
    pub rounds: usize,
    /// Contained failures, in the order they were observed. Empty on a
    /// healthy run.
    pub incidents: Vec<Incident>,
    /// Convergence trace: one [`RoundTrace`] per attempted solver
    /// invocation, in execution order (bounded by
    /// [`RoundTrace::CAPACITY`]).
    pub round_trace: Vec<RoundTrace>,
    /// Outcome of the solution audits ([`crate::audit`]) run over every
    /// recorded schedule. `Some` whenever auditing was active
    /// ([`MetisConfig::audit`] or `debug_assertions`), `None` otherwise.
    pub audit: Option<crate::audit::AuditReport>,
}

impl MetisResult {
    /// Rounds whose solve failed even after retries (their updates were
    /// skipped).
    pub fn failed_rounds(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| matches!(i, Incident::SolveFailed { .. }))
            .count()
    }

    /// Warm-started solves that fell back to a cold basis.
    pub fn warm_retries(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| matches!(i, Incident::WarmRetry { .. }))
            .count()
    }
}

/// Runs one phase solve under a fault plan, containing failures.
///
/// Counts every attempt (including the cold retry) against `attempts` so
/// fault plans can target retries. With `retry_cold`, a failed first
/// attempt is retried once with `solve(true)` (the caller drops its warm
/// basis); a failure with no retry left becomes a
/// [`Incident::SolveFailed`] and `None` is returned.
#[allow(clippy::too_many_arguments)]
fn contained_solve<R>(
    phase: Phase,
    round: usize,
    attempts: &mut usize,
    faults: &FaultPlan,
    incidents: &mut Vec<Incident>,
    retry_cold: bool,
    tele: &Telemetry,
    mut solve: impl FnMut(bool) -> Result<R, SolveError>,
) -> Option<R> {
    let mut attempt = |attempts: &mut usize, cold: bool| -> Result<R, SolveError> {
        let a = *attempts;
        *attempts += 1;
        match faults.solver_fault(phase, a) {
            Some(e) => Err(e),
            None => solve(cold),
        }
    };
    match attempt(attempts, false) {
        Ok(r) => Some(r),
        Err(error) if retry_cold => {
            note_incident(
                tele,
                incidents,
                Incident::WarmRetry {
                    phase,
                    round,
                    error,
                },
            );
            match attempt(attempts, true) {
                Ok(r) => Some(r),
                Err(error) => {
                    note_incident(
                        tele,
                        incidents,
                        Incident::SolveFailed {
                            phase,
                            round,
                            error,
                        },
                    );
                    None
                }
            }
        }
        Err(error) => {
            note_incident(
                tele,
                incidents,
                Incident::SolveFailed {
                    phase,
                    round,
                    error,
                },
            );
            None
        }
    }
}

/// Runs Metis on an instance.
///
/// The SP Updater starts from zero profit (decline everything), so the
/// result's profit is never negative.
///
/// Solver failures inside the alternation are contained rather than
/// propagated: a failed warm solve is retried once from a cold basis, a
/// round whose solve still fails is skipped (the loop continues from the
/// SP Updater's best-so-far schedule), and every such event is recorded
/// in [`MetisResult::incidents`].
///
/// # Errors
///
/// Returns [`MetisError`] only when no degradation path exists (today:
/// never for solver failures; the variant is kept for malformed-instance
/// propagation by higher layers).
///
/// # Examples
///
/// ```
/// use metis_core::{metis, MetisConfig, SpmInstance};
/// use metis_netsim::topologies;
/// use metis_workload::{generate, WorkloadConfig};
///
/// let topo = topologies::sub_b4();
/// let requests = generate(&topo, &WorkloadConfig::paper(25, 9));
/// let instance = SpmInstance::new(topo, requests, 12, 3);
/// let result = metis(&instance, &MetisConfig::with_theta(4))?;
/// assert!(result.evaluation.profit >= 0.0);
/// assert!(result.incidents.is_empty());
/// # Ok::<(), metis_core::MetisError>(())
/// ```
pub fn metis(instance: &SpmInstance, config: &MetisConfig) -> Result<MetisResult, MetisError> {
    metis_with_faults(instance, config, &FaultPlan::none())
}

/// Runs Metis under a [`FaultPlan`].
///
/// With [`FaultPlan::none`] this is exactly [`metis`] — the plan is
/// consulted before each solve and an empty plan changes nothing, so
/// failure-free runs stay bit-identical across thread counts and to runs
/// through the plain entry point.
///
/// # Errors
///
/// Same as [`metis`].
pub fn metis_with_faults(
    instance: &SpmInstance,
    config: &MetisConfig,
    faults: &FaultPlan,
) -> Result<MetisResult, MetisError> {
    metis_instrumented(instance, config, faults, &Telemetry::disabled())
}

/// Runs Metis under a [`FaultPlan`], recording telemetry into `tele`.
///
/// The whole run executes under the `metis` span; each round (including
/// the round-0 initialization MAA) gets an `alternation.round` child span
/// plus an entry in the `alternation.round.duration_us` histogram and the
/// `alternation.round.profit` series, the limiter runs under
/// `limiter.apply`, and every contained failure is counted in the
/// `incident.*` metrics and emitted on the event stream as well as
/// recorded in [`MetisResult::incidents`].
///
/// Telemetry is write-only: nothing in the pipeline reads it, all series
/// and histograms are recorded on the calling thread after each parallel
/// region's index-ordered reduction, and [`Telemetry::disabled`] (what
/// [`metis_with_faults`] passes) skips every recording — so the returned
/// [`MetisResult`] is bit-identical whether telemetry is on or off, at
/// any thread count.
///
/// # Errors
///
/// Same as [`metis`].
pub fn metis_instrumented(
    instance: &SpmInstance,
    config: &MetisConfig,
    faults: &FaultPlan,
    tele: &Telemetry,
) -> Result<MetisResult, MetisError> {
    let _metis_span = tele.span(names::SPAN_METIS);
    let k = instance.num_requests();
    let mut history = Vec::new();
    let mut incidents: Vec<Incident> = Vec::new();
    let mut round_trace: Vec<RoundTrace> = Vec::new();
    let mut maa_attempts = 0usize;
    let mut taa_attempts = 0usize;

    // Auditing is always on in debug builds; `config.audit` forces it in
    // release builds and additionally certifies every LP solution.
    let auditing = config.audit || cfg!(debug_assertions);
    let mut audit_acc = auditing.then(crate::audit::AuditReport::default);

    let mut maa_opts = MaaOptions {
        parallel: config.parallel,
        ..config.maa
    };
    maa_opts.lp.verify = maa_opts.lp.verify || config.audit;
    let mut taa_opts = TaaOptions {
        parallel: config.parallel,
        ..config.taa
    };
    taa_opts.lp.verify = taa_opts.lp.verify || config.audit;
    let mut rl_solver = if config.warm_start {
        Some(RlspmWarmSolver::new(instance))
    } else {
        None
    };
    let mut bl_solver = if config.warm_start {
        Some(BlspmWarmSolver::new(instance))
    } else {
        None
    };
    let mut run_maa = |accepted: &[bool], cold: bool| {
        if cold {
            if let Some(solver) = rl_solver.as_mut() {
                solver.reset_basis();
            }
        }
        maa_instrumented(instance, accepted, &maa_opts, rl_solver.as_mut(), tele)
    };
    let mut run_taa = |caps: &[f64], cold: bool| {
        if cold {
            if let Some(solver) = bl_solver.as_mut() {
                solver.reset_basis();
            }
        }
        taa_instrumented(instance, caps, &taa_opts, bl_solver.as_mut(), tele)
    };

    // SP Updater: profit starts at zero with everything declined.
    let mut best_schedule = Schedule::decline_all(k);
    let mut best_eval = best_schedule.evaluate(instance);

    let record = |phase: Phase,
                  schedule: Schedule,
                  eval: Evaluation,
                  best_s: &mut Schedule,
                  best_e: &mut Evaluation,
                  history: &mut Vec<IterationRecord>,
                  audit_acc: &mut Option<crate::audit::AuditReport>| {
        if let Some(acc) = audit_acc.as_mut() {
            acc.merge(crate::audit::audit_schedule(instance, &schedule, &eval));
        }
        history.push(IterationRecord {
            phase,
            profit: eval.profit,
            accepted: eval.accepted,
        });
        if eval.profit > best_e.profit {
            *best_s = schedule;
            *best_e = eval;
        }
    };

    // Initialization: accept every request and minimize its cost.
    // Running capacity budget: what the provider would purchase for the
    // current accepted set. Kept element-wise monotone so the limiter
    // makes progress even when the accepted set stalls. If the
    // initialization solve fails, the budget stays all-zero and the loop
    // exits immediately with the decline-all record — degraded, not dead.
    let mut accepted = vec![true; k];
    let mut caps = vec![0.0; instance.topology().num_edges()];
    // metis-lint: allow(DET-02): gated behind tele.is_enabled(); never read in deterministic runs
    let round_start = tele.is_enabled().then(Instant::now);
    {
        let _round = tele.span(names::SPAN_ROUND);
        let incidents_before = incidents.len();
        if let Some(first) = contained_solve(
            Phase::Maa,
            0,
            &mut maa_attempts,
            faults,
            &mut incidents,
            config.warm_start,
            tele,
            |cold| run_maa(&accepted, cold),
        ) {
            caps = first.evaluation.charged.clone();
            let profit = first.evaluation.profit;
            let accepted_count = first.evaluation.accepted;
            let stats = first.relaxation.stats;
            record(
                Phase::Maa,
                first.schedule,
                first.evaluation,
                &mut best_schedule,
                &mut best_eval,
                &mut history,
                &mut audit_acc,
            );
            push_round_trace(
                tele,
                &mut round_trace,
                RoundTrace {
                    round: 0,
                    phase: Phase::Maa,
                    completed: true,
                    profit,
                    best_profit: best_eval.profit,
                    accepted: accepted_count,
                    mu: None,
                    lp_iterations: stats.iterations,
                    warm_started: stats.warm_started,
                    incidents: incidents.len() - incidents_before,
                },
            );
        } else {
            push_round_trace(
                tele,
                &mut round_trace,
                RoundTrace {
                    round: 0,
                    phase: Phase::Maa,
                    completed: false,
                    profit: 0.0,
                    best_profit: best_eval.profit,
                    accepted: 0,
                    mu: None,
                    lp_iterations: 0,
                    warm_started: false,
                    incidents: incidents.len() - incidents_before,
                },
            );
        }
    }
    if let Some(start) = round_start {
        tele.observe(names::ROUND_DURATION_US, start.elapsed().as_micros() as f64);
    }
    tele.incr(names::ROUNDS);
    tele.push(names::ROUND_PROFIT, best_eval.profit);

    let mut rounds = 0;
    for round in 0..config.theta {
        if caps.iter().all(|&c| c <= 0.0) {
            break;
        }
        // metis-lint: allow(DET-02): gated behind tele.is_enabled(); never read in deterministic runs
        let round_start = tele.is_enabled().then(Instant::now);
        let round_span = tele.span(names::SPAN_ROUND);
        let mut stop = false;
        'round: {
            // BW Limiter: tighten by rule τ, based on the best load seen.
            {
                let _limiter = tele.span(names::SPAN_LIMITER);
                caps = config
                    .limiter
                    .apply(instance.topology(), &best_eval.load, &caps);
            }

            // BL-SPM Solver: re-select requests under the tightened budget.
            let incidents_before = incidents.len();
            let t = contained_solve(
                Phase::Taa,
                round + 1,
                &mut taa_attempts,
                faults,
                &mut incidents,
                config.warm_start,
                tele,
                |cold| run_taa(&caps, cold),
            );
            rounds = round + 1;
            let Some(t) = t else {
                // Skip the round's update: the accepted set and the SP
                // Updater's record stand; the tightened budget carries over
                // so the limiter still makes progress next round.
                push_round_trace(
                    tele,
                    &mut round_trace,
                    RoundTrace {
                        round: round + 1,
                        phase: Phase::Taa,
                        completed: false,
                        profit: 0.0,
                        best_profit: best_eval.profit,
                        accepted: 0,
                        mu: None,
                        lp_iterations: 0,
                        warm_started: false,
                        incidents: incidents.len() - incidents_before,
                    },
                );
                break 'round;
            };
            accepted = (0..k)
                .map(|i| t.schedule.is_accepted(metis_workload::RequestId(i as u32)))
                .collect();
            if let Some(acc) = audit_acc.as_mut() {
                // TAA must respect the budget the limiter just set.
                acc.merge(crate::audit::audit_capacities(instance, &t.schedule, &caps));
            }
            let profit = t.evaluation.profit;
            let accepted_count = t.evaluation.accepted;
            let stats = t.relaxation.stats;
            let mu = t.mu;
            record(
                Phase::Taa,
                t.schedule,
                t.evaluation,
                &mut best_schedule,
                &mut best_eval,
                &mut history,
                &mut audit_acc,
            );
            push_round_trace(
                tele,
                &mut round_trace,
                RoundTrace {
                    round: round + 1,
                    phase: Phase::Taa,
                    completed: true,
                    profit,
                    best_profit: best_eval.profit,
                    accepted: accepted_count,
                    mu,
                    lp_iterations: stats.iterations,
                    warm_started: stats.warm_started,
                    incidents: incidents.len() - incidents_before,
                },
            );

            if accepted.iter().all(|&a| !a) {
                stop = true;
                break 'round;
            }

            // RL-SPM Solver: re-minimize cost for the surviving set.
            let incidents_before = incidents.len();
            let m = contained_solve(
                Phase::Maa,
                round + 1,
                &mut maa_attempts,
                faults,
                &mut incidents,
                config.warm_start,
                tele,
                |cold| run_maa(&accepted, cold),
            );
            let Some(m) = m else {
                // Skip only the budget refinement; the TAA schedule above is
                // already recorded.
                push_round_trace(
                    tele,
                    &mut round_trace,
                    RoundTrace {
                        round: round + 1,
                        phase: Phase::Maa,
                        completed: false,
                        profit: 0.0,
                        best_profit: best_eval.profit,
                        accepted: 0,
                        mu: None,
                        lp_iterations: 0,
                        warm_started: false,
                        incidents: incidents.len() - incidents_before,
                    },
                );
                break 'round;
            };
            for (c, &m_c) in caps.iter_mut().zip(&m.evaluation.charged) {
                *c = c.min(m_c);
            }
            let profit = m.evaluation.profit;
            let accepted_count = m.evaluation.accepted;
            let stats = m.relaxation.stats;
            record(
                Phase::Maa,
                m.schedule,
                m.evaluation,
                &mut best_schedule,
                &mut best_eval,
                &mut history,
                &mut audit_acc,
            );
            push_round_trace(
                tele,
                &mut round_trace,
                RoundTrace {
                    round: round + 1,
                    phase: Phase::Maa,
                    completed: true,
                    profit,
                    best_profit: best_eval.profit,
                    accepted: accepted_count,
                    mu: None,
                    lp_iterations: stats.iterations,
                    warm_started: stats.warm_started,
                    incidents: incidents.len() - incidents_before,
                },
            );
        }
        drop(round_span);
        if let Some(start) = round_start {
            tele.observe(names::ROUND_DURATION_US, start.elapsed().as_micros() as f64);
        }
        tele.incr(names::ROUNDS);
        tele.push(names::ROUND_PROFIT, best_eval.profit);
        if stop {
            break;
        }
    }

    if let Some(acc) = audit_acc.as_mut() {
        // Audit the returned record too: the SP Updater's best pair is
        // what callers act on, so its (schedule, evaluation) agreement is
        // certified even when it was the untouched decline-all baseline.
        acc.merge(crate::audit::audit_schedule(
            instance,
            &best_schedule,
            &best_eval,
        ));
        acc.record(tele);
    }

    Ok(MetisResult {
        schedule: best_schedule,
        evaluation: best_eval,
        history,
        rounds,
        incidents,
        round_trace,
        audit: audit_acc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rlspm::maa;
    use metis_netsim::topologies;
    use metis_workload::{generate, WorkloadConfig};

    fn instance(k: usize, seed: u64) -> SpmInstance {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(k, seed));
        SpmInstance::new(topo, reqs, 12, 3)
    }

    #[test]
    fn profit_never_negative() {
        for seed in 0..3 {
            let inst = instance(20, seed);
            let res = metis(&inst, &MetisConfig::with_theta(5)).unwrap();
            assert!(res.evaluation.profit >= 0.0, "seed {seed}");
        }
    }

    #[test]
    fn beats_or_matches_accept_all() {
        // Metis's record starts from the accept-everything MAA schedule,
        // so it can only improve on it.
        let inst = instance(40, 1);
        let all = maa(&inst, &[true; 40], &MaaOptions::default()).unwrap();
        let res = metis(&inst, &MetisConfig::with_theta(6)).unwrap();
        assert!(res.evaluation.profit >= all.evaluation.profit - 1e-9);
    }

    #[test]
    fn theta_zero_is_one_maa_pass() {
        let inst = instance(15, 2);
        let res = metis(&inst, &MetisConfig::with_theta(0)).unwrap();
        assert_eq!(res.rounds, 0);
        assert_eq!(res.history.len(), 1);
        assert_eq!(res.history[0].phase, Phase::Maa);
    }

    #[test]
    fn history_interleaves_phases() {
        let inst = instance(25, 3);
        let res = metis(&inst, &MetisConfig::with_theta(3)).unwrap();
        assert_eq!(res.history[0].phase, Phase::Maa);
        for pair in res.history[1..].chunks(2) {
            assert_eq!(pair[0].phase, Phase::Taa);
            if pair.len() > 1 {
                assert_eq!(pair[1].phase, Phase::Maa);
            }
        }
    }

    #[test]
    fn best_profit_dominates_history() {
        let inst = instance(30, 4);
        let res = metis(&inst, &MetisConfig::with_theta(6)).unwrap();
        let max_hist = res
            .history
            .iter()
            .map(|r| r.profit)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((res.evaluation.profit - max_hist.max(0.0)).abs() < 1e-9);
    }

    #[test]
    fn more_theta_never_worse() {
        let inst = instance(30, 5);
        let p2 = metis(&inst, &MetisConfig::with_theta(2))
            .unwrap()
            .evaluation
            .profit;
        let p8 = metis(&inst, &MetisConfig::with_theta(8))
            .unwrap()
            .evaluation
            .profit;
        assert!(p8 >= p2 - 1e-9, "longer runs keep the SP Updater record");
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let inst = instance(30, 6);
        for warm_start in [false, true] {
            let base = MetisConfig {
                theta: 4,
                warm_start,
                maa: MaaOptions {
                    rounding_repeats: 8,
                    seed: 5,
                    ..MaaOptions::default()
                },
                ..MetisConfig::default()
            };
            let reference = metis(&inst, &base).unwrap();
            for threads in [2, 8] {
                let cfg = MetisConfig {
                    parallel: ParallelConfig {
                        threads,
                        ..ParallelConfig::default()
                    },
                    ..base
                };
                let run = metis(&inst, &cfg).unwrap();
                assert_eq!(
                    run.schedule, reference.schedule,
                    "warm_start = {warm_start}, threads = {threads}"
                );
                assert_eq!(run.history, reference.history);
                assert_eq!(run.evaluation, reference.evaluation);
                assert_eq!(run.round_trace, reference.round_trace);
            }
        }
    }

    #[test]
    fn warm_start_is_deterministic_and_profitable() {
        let inst = instance(30, 7);
        let cfg = MetisConfig {
            theta: 5,
            warm_start: true,
            ..MetisConfig::default()
        };
        let a = metis(&inst, &cfg).unwrap();
        let b = metis(&inst, &cfg).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.history, b.history);
        assert!(a.evaluation.profit >= 0.0);
        // The SP Updater keeps the best record, so the final profit
        // dominates the warm run's own accept-all initialization.
        assert!(a.evaluation.profit >= a.history[0].profit - 1e-9);
    }

    #[test]
    fn instrumented_run_matches_plain_and_records() {
        let inst = instance(20, 8);
        for warm_start in [false, true] {
            let cfg = MetisConfig {
                theta: 3,
                warm_start,
                ..MetisConfig::default()
            };
            let plain = metis(&inst, &cfg).unwrap();
            let tele = Telemetry::enabled();
            let run = metis_instrumented(&inst, &cfg, &FaultPlan::none(), &tele).unwrap();
            assert_eq!(run.schedule, plain.schedule, "warm_start = {warm_start}");
            assert_eq!(run.history, plain.history);
            assert_eq!(run.evaluation, plain.evaluation);
            assert_eq!(run.round_trace, plain.round_trace);
            if let Some(s) = tele.snapshot() {
                assert!(s.counter(names::LP_SIMPLEX_ITERATIONS) > 0);
                assert!(s.counter(names::ROUNDS) >= 1);
                let rounds = s.histogram(names::ROUND_DURATION_US).expect("histogram");
                assert!(rounds.count >= 1);
                assert!(!s
                    .series(names::TAA_MU)
                    .expect("mu series")
                    .points
                    .is_empty());
                if warm_start {
                    assert!(s.counter(names::LP_WARM_BASIS_REUSE) > 0);
                }
                assert_eq!(s.counter(names::INCIDENT_SOLVE_FAILED), 0);
                let round_span = s.span(names::SPAN_ROUND).expect("round span");
                assert_eq!(round_span.parent.as_deref(), Some(names::SPAN_METIS));
            }
        }
    }

    #[test]
    fn incidents_display_and_reach_event_stream() {
        let inst = instance(15, 9);
        let cfg = MetisConfig {
            theta: 2,
            warm_start: true,
            ..MetisConfig::default()
        };
        let faults = FaultPlan::none().fail_at_with(Phase::Taa, 0, SolveError::Singular);
        let tele = Telemetry::enabled();
        let run = metis_instrumented(&inst, &cfg, &faults, &tele).unwrap();
        assert!(run.warm_retries() >= 1);
        for incident in &run.incidents {
            assert!(!incident.to_string().is_empty());
        }
        if let Some(s) = tele.snapshot() {
            assert_eq!(
                s.counter(names::INCIDENT_WARM_RETRY),
                run.warm_retries() as u64
            );
            assert_eq!(s.events.len(), run.incidents.len());
            assert!(s.events.iter().all(|e| e.kind == names::EVENT_INCIDENT));
            assert!(s.events[0].message.contains("TAA"));
        }
    }

    #[test]
    fn round_trace_agrees_with_result() {
        let inst = instance(30, 10);
        for warm_start in [false, true] {
            let cfg = MetisConfig {
                theta: 5,
                warm_start,
                ..MetisConfig::default()
            };
            let res = metis(&inst, &cfg).unwrap();
            // Completed entries mirror the profit history one-to-one.
            let completed: Vec<_> = res.round_trace.iter().filter(|t| t.completed).collect();
            assert_eq!(completed.len(), res.history.len());
            for (t, h) in completed.iter().zip(&res.history) {
                assert_eq!(t.phase, h.phase, "warm_start = {warm_start}");
                assert_eq!(t.profit, h.profit);
                assert_eq!(t.accepted, h.accepted);
            }
            // Every contained failure is attributed to exactly one entry.
            let attributed: usize = res.round_trace.iter().map(|t| t.incidents).sum();
            assert_eq!(attributed, res.incidents.len());
            // The running record is monotone and ends at the reported profit.
            for w in res.round_trace.windows(2) {
                assert!(w[1].best_profit >= w[0].best_profit);
            }
            let last = res.round_trace.last().expect("round 0 always traced");
            assert_eq!(last.best_profit, res.evaluation.profit);
            // MAA entries never carry μ; entry rounds are non-decreasing.
            assert!(res
                .round_trace
                .iter()
                .filter(|t| t.phase == Phase::Maa)
                .all(|t| t.mu.is_none()));
            assert!(res.round_trace.windows(2).all(|w| w[0].round <= w[1].round));
        }
    }

    #[test]
    fn round_trace_records_failed_attempts() {
        let inst = instance(15, 11);
        let cfg = MetisConfig {
            theta: 2,
            ..MetisConfig::default()
        };
        // No cold retry without warm_start: attempt 0 of TAA fails for good.
        let faults = FaultPlan::none().fail_at_with(Phase::Taa, 0, SolveError::Singular);
        let res = metis_with_faults(&inst, &cfg, &faults).unwrap();
        let failed: Vec<_> = res.round_trace.iter().filter(|t| !t.completed).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].phase, Phase::Taa);
        assert_eq!(failed[0].round, 1);
        assert_eq!(failed[0].incidents, 1);
        assert_eq!(failed[0].lp_iterations, 0);
        let attributed: usize = res.round_trace.iter().map(|t| t.incidents).sum();
        assert_eq!(attributed, res.incidents.len());
    }

    #[test]
    fn empty_workload() {
        let topo = topologies::sub_b4();
        let inst = SpmInstance::new(topo, Vec::new(), 12, 3);
        let res = metis(&inst, &MetisConfig::with_theta(3)).unwrap();
        assert_eq!(res.evaluation.profit, 0.0);
        assert_eq!(res.evaluation.accepted, 0);
    }
}
