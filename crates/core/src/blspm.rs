//! BL-SPM (bandwidth-limited SPM) and the Tree-based Approximation
//! Algorithm (TAA, §IV of the paper).
//!
//! Given fixed per-edge capacities, BL-SPM maximizes service revenue by
//! accepting a subset of requests and routing each accepted one on a
//! single path without violating any `(edge, slot)` capacity. TAA:
//!
//! 1. solves the LP relaxation (`x_{i,j} ∈ [0,1]`, `Σ_j x_{i,j} ≤ 1`);
//! 2. scales the fractional path probabilities by `μ` chosen from the
//!    Chernoff–Hoeffding bound (inequality (6)) so a random rounding
//!    would violate each constraint with probability `< 1/(T(N+1))`;
//! 3. derandomizes with the method of conditional probabilities: walks a
//!    decision tree with `L_i + 1` branches per request (the extra branch
//!    declines it), at each level fixing the choice that minimizes a
//!    pessimistic estimator `u_root` of the failure probability.
//!
//! On top of the estimator this implementation enforces capacity
//! feasibility *exactly*: an option that would overload any cell is never
//! taken, so the returned schedule always satisfies BL-SPM's constraints
//! (the estimator then only steers revenue).

use metis_lp::{
    Basis, LpTrace, Problem, Relation, RowId, Sense, SolveError, SolveOptions, SolveStats,
};
use metis_telemetry::{names, Telemetry};
use metis_workload::RequestId;

use crate::chernoff::{chernoff_delta, select_mu};
use crate::instance::SpmInstance;
use crate::parallel::{self, ParallelConfig};
use crate::schedule::{Evaluation, Schedule};

/// Fan the per-request decision-tree candidate evaluation across workers
/// only when the request touches at least this many (cell, S) terms; below
/// that, thread handoff costs more than the arithmetic it distributes.
const PARALLEL_EVAL_MIN_CELLS: usize = 64;

/// Options for [`taa`].
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct TaaOptions {
    /// LP solver options.
    pub lp: SolveOptions,
    /// Worker threads for the per-request precomputation and the
    /// decision-tree candidate evaluation. The walk itself is inherently
    /// sequential (each level conditions on the previous choice), but the
    /// candidate branches at one level are independent, as is the
    /// per-request cell precomputation. Results are bit-identical for any
    /// thread count. (`trials` is ignored here; it only affects MAA.)
    pub parallel: ParallelConfig,
}

/// Fractional optimum of the relaxed BL-SPM.
#[derive(Clone, Debug, PartialEq)]
pub struct BlspmRelaxation {
    /// `x̂_{i,j}` per request and candidate path.
    pub x: Vec<Vec<f64>>,
    /// Fractional revenue `Σ v_i Σ_j x̂_{i,j}` — an upper bound on the
    /// integral optimum.
    pub revenue: f64,
    /// Work counters from the LP solve that produced this relaxation.
    pub stats: SolveStats,
    /// Per-iteration simplex trace (empty unless
    /// [`SolveOptions::trace`] was set on the LP options).
    pub lp_trace: LpTrace,
}

/// Result of one TAA run.
#[derive(Clone, Debug)]
pub struct TaaResult {
    /// Feasible schedule (capacities respected everywhere).
    pub schedule: Schedule,
    /// Economic evaluation of the schedule.
    pub evaluation: Evaluation,
    /// The LP relaxation behind the derandomization.
    pub relaxation: BlspmRelaxation,
    /// The scaling factor `μ` chosen from inequality (6); `None` when the
    /// network has no positive capacity, or when capacity is so small
    /// that no `μ` satisfies the inequality (the round then declines
    /// everything rather than round with a guarantee it does not have).
    pub mu: Option<f64>,
}

/// Builds and solves the relaxed BL-SPM linear program.
///
/// # Errors
///
/// Propagates LP solver failures; the LP is always feasible (declining
/// everything is a solution), so `Infeasible` indicates numerical trouble.
///
/// # Panics
///
/// Panics if `capacities.len()` differs from the edge count.
pub fn solve_blspm_relaxation(
    instance: &SpmInstance,
    capacities: &[f64],
    lp_options: &SolveOptions,
) -> Result<BlspmRelaxation, SolveError> {
    let topo = instance.topology();
    assert_eq!(capacities.len(), topo.num_edges(), "capacity vector length");
    let slots = instance.num_slots();

    let mut p = Problem::new(Sense::Maximize);
    let mut xvars: Vec<Vec<metis_lp::VarId>> = Vec::with_capacity(instance.num_requests());
    for (r, paths) in instance.iter() {
        xvars.push(paths.iter().map(|_| p.add_var(r.value, 0.0, 1.0)).collect());
    }
    for vars in &xvars {
        p.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Le, 1.0);
    }
    let mut cell_terms: Vec<Vec<(metis_lp::VarId, f64)>> =
        vec![Vec::new(); topo.num_edges() * slots];
    for (i, (r, paths)) in instance.iter().enumerate() {
        for (j, path) in paths.iter().enumerate() {
            for &e in path.edges() {
                for t in r.start..=r.end {
                    // INDEX: e < num_edges and t ≤ r.end < slots by instance validation; flat edge×slot layout.
                    cell_terms[e.index() * slots + t].push((xvars[i][j], r.rate));
                }
            }
        }
    }
    for e in 0..topo.num_edges() {
        for t in 0..slots {
            // INDEX: e < num_edges and t ≤ r.end < slots by instance validation; flat edge×slot layout.
            let terms = &cell_terms[e * slots + t];
            if !terms.is_empty() {
                p.add_constraint(terms.iter().copied(), Relation::Le, capacities[e]);
            }
        }
    }

    let sol = p.solve_with(lp_options)?;
    let x: Vec<Vec<f64>> = xvars
        .iter()
        .map(|vars| vars.iter().map(|&v| sol.value(v).clamp(0.0, 1.0)).collect())
        .collect();
    Ok(BlspmRelaxation {
        x,
        revenue: sol.objective(),
        stats: *sol.stats(),
        lp_trace: sol.trace().clone(),
    })
}

/// Identifies the `(edge, slot)` cells reachable by candidate paths and
/// maps them to dense indices.
struct CellIndex {
    /// `edge * slots + t → dense index` (`u32::MAX` = unused cell).
    map: Vec<u32>,
    /// Capacity per dense cell.
    caps: Vec<f64>,
    slots: usize,
}

impl CellIndex {
    fn build(instance: &SpmInstance, capacities: &[f64]) -> Self {
        let slots = instance.num_slots();
        let mut map = vec![u32::MAX; instance.topology().num_edges() * slots];
        let mut caps = Vec::new();
        for (r, paths) in instance.iter() {
            for path in paths {
                for &e in path.edges() {
                    for t in r.start..=r.end {
                        let idx = e.index() * slots + t;
                        if map[idx] == u32::MAX {
                            map[idx] = caps.len() as u32;
                            caps.push(capacities[e.index()]);
                        }
                    }
                }
            }
        }
        CellIndex { map, caps, slots }
    }

    fn cell(&self, edge: usize, t: usize) -> usize {
        // INDEX: edge < num_edges and t < slots, the map's construction domain.
        self.map[edge * self.slots + t] as usize
    }
}

/// Runs TAA: relax → scale by `μ` → derandomized decision-tree walk.
///
/// The returned schedule respects `capacities` at every `(edge, slot)`.
///
/// # Errors
///
/// Propagates LP failures from the relaxation stage.
///
/// # Panics
///
/// Panics if `capacities.len()` differs from the edge count.
///
/// # Examples
///
/// ```
/// use metis_core::{taa, SpmInstance, TaaOptions};
/// use metis_netsim::topologies;
/// use metis_workload::{generate, WorkloadConfig};
///
/// let topo = topologies::b4();
/// let requests = generate(&topo, &WorkloadConfig::paper(30, 5));
/// let caps = vec![10.0; topo.num_edges()]; // 100 Gbps per link
/// let instance = SpmInstance::new(topo, requests, 12, 3);
/// let result = taa(&instance, &caps, &TaaOptions::default())?;
/// assert!(result.schedule.check_capacities(&instance, &caps).is_ok());
/// assert!(result.evaluation.revenue <= result.relaxation.revenue + 1e-6);
/// # Ok::<(), metis_lp::SolveError>(())
/// ```
pub fn taa(
    instance: &SpmInstance,
    capacities: &[f64],
    options: &TaaOptions,
) -> Result<TaaResult, SolveError> {
    taa_instrumented(instance, capacities, options, None, &Telemetry::disabled())
}

/// Runs TAA like [`taa`], but solves the relaxation through a reusable
/// [`BlspmWarmSolver`] so consecutive calls with drifting capacity vectors
/// (the Metis alternation rounds) warm-start the simplex from the previous
/// round's basis.
///
/// # Errors
///
/// Propagates LP failures from the relaxation stage.
///
/// # Panics
///
/// Panics if `capacities.len()` differs from the edge count or `solver`
/// was built from a different instance.
pub fn taa_with_solver(
    instance: &SpmInstance,
    capacities: &[f64],
    options: &TaaOptions,
    solver: &mut BlspmWarmSolver,
) -> Result<TaaResult, SolveError> {
    taa_instrumented(
        instance,
        capacities,
        options,
        Some(solver),
        &Telemetry::disabled(),
    )
}

/// Runs TAA with optional warm starts, recording telemetry into `tele`.
///
/// This is the instrumented superset of [`taa`] (pass `None` for
/// `solver`) and [`taa_with_solver`] (pass `Some`): the relaxation solve
/// runs under the `taa.relax` span, the derandomized walk under
/// `taa.walk`, LP work counters land in the `lp.*` metrics, and the
/// chosen `μ` and initial estimator value `u_root` are pushed to the
/// `taa.mu` / `taa.u_root` series. Recording is write-only — passing
/// [`Telemetry::disabled`] (what the plain entry points do) yields
/// bit-identical results.
///
/// # Errors
///
/// Propagates LP failures from the relaxation stage.
///
/// # Panics
///
/// Panics if `capacities.len()` differs from the edge count or `solver`
/// was built from a different instance.
pub fn taa_instrumented(
    instance: &SpmInstance,
    capacities: &[f64],
    options: &TaaOptions,
    solver: Option<&mut BlspmWarmSolver>,
    tele: &Telemetry,
) -> Result<TaaResult, SolveError> {
    let relaxation = {
        let mut relax = tele.span(names::SPAN_TAA_RELAX);
        let relaxation = match solver {
            Some(s) => s.solve(capacities, &options.lp)?,
            None => solve_blspm_relaxation(instance, capacities, &options.lp)?,
        };
        relax.arg(names::ARG_LP_ITERATIONS, relaxation.stats.iterations as f64);
        relaxation
    };
    crate::obs::record_lp_stats(tele, &relaxation.stats);
    crate::obs::record_lp_trace(tele, &relaxation.lp_trace);
    Ok(taa_from_relaxation(
        instance, capacities, options, relaxation, tele,
    ))
}

/// Scaling + derandomized walk, given an already-solved relaxation.
fn taa_from_relaxation(
    instance: &SpmInstance,
    capacities: &[f64],
    options: &TaaOptions,
    relaxation: BlspmRelaxation,
    tele: &Telemetry,
) -> TaaResult {
    let _walk = tele.span(names::SPAN_TAA_WALK);
    let k = instance.num_requests();
    let threads = options.parallel.effective_threads();
    let topo = instance.topology();

    // Normalize rates and values into [0, 1] (Algorithm 2, line 1).
    let r_scale = instance
        .requests()
        .iter()
        .map(|r| r.rate)
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    let v_scale = instance
        .requests()
        .iter()
        .map(|r| r.value)
        .fold(0.0_f64, f64::max)
        .max(1e-12);

    // μ per inequality (6): c is the smallest positive capacity.
    let min_cap = capacities
        .iter()
        .copied()
        .filter(|&c| c > 0.0)
        .fold(f64::INFINITY, f64::min);
    let mu = if min_cap.is_finite() {
        select_mu(min_cap / r_scale, instance.num_slots(), topo.num_edges())
    } else {
        None
    };
    let Some(mu) = mu else {
        // No capacity anywhere, or so little that inequality (6) admits
        // no μ: decline everything rather than round without a guarantee.
        let schedule = Schedule::decline_all(k);
        let evaluation = schedule.evaluate(instance);
        return TaaResult {
            schedule,
            evaluation,
            relaxation,
            mu: None,
        };
    };
    tele.push(names::TAA_MU, mu);

    let cells = CellIndex::build(instance, capacities);
    let n_cells = cells.caps.len();
    let t_k = (1.0 + (1.0 - mu) / mu).ln(); // = ln(1/μ)

    // Revenue-tail parameters: I_S = μ·Î (normalized), γ = D(I_S, 1/(N+1)).
    let i_s = mu * relaxation.revenue / v_scale;
    let gamma = chernoff_delta(i_s, 1.0 / (topo.num_edges() as f64 + 1.0)).min(1.0);
    let i_b = i_s * (1.0 - gamma);
    let t_0 = (1.0 + gamma).ln();

    // Per-request precomputation, fanned across workers (each request's
    // cell sets depend only on the instance and the relaxation, so the
    // fan-out is invisible in the output).
    // `cells_of_path[i][j]`: dense cells covered by path j while active.
    // `expect_cells[i]`: (cell, S_ik) with S_ik = μ Σ_{j crossing k} x̂_ij.
    let precomputed = parallel::run_indexed(k, threads, |i| {
        let id = RequestId(i as u32);
        let r = instance.request(id);
        let paths = instance.paths(id);
        let mut per_path = Vec::with_capacity(paths.len());
        let mut acc: Vec<(u32, f64)> = Vec::new();
        for (j, path) in paths.iter().enumerate() {
            let mut cs = Vec::new();
            for &e in path.edges() {
                for t in r.start..=r.end {
                    let c = cells.cell(e.index(), t) as u32;
                    cs.push(c);
                    acc.push((c, mu * relaxation.x[i][j]));
                }
            }
            per_path.push(cs);
        }
        acc.sort_unstable_by_key(|&(c, _)| c);
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(acc.len());
        for (c, s) in acc {
            match merged.last_mut() {
                Some((lc, ls)) if *lc == c => *ls += s,
                _ => merged.push((c, s)),
            }
        }
        (per_path, merged)
    });
    let mut cells_of_path: Vec<Vec<Vec<u32>>> = Vec::with_capacity(k);
    let mut expect_cells: Vec<Vec<(u32, f64)>> = Vec::with_capacity(k);
    for (per_path, merged) in precomputed {
        cells_of_path.push(per_path);
        expect_cells.push(merged);
    }

    // Estimator state.
    // Revenue product term R = e^{t0·I_B} Π_i f_rev_i.
    let a_exp: Vec<f64> = instance
        .requests()
        .iter()
        .map(|r| (t_k * r.rate / r_scale).exp())
        .collect();
    let rev_assign: Vec<f64> = instance
        .requests()
        .iter()
        .map(|r| (-t_0 * r.value / v_scale).exp())
        .collect();
    let q: Vec<f64> = relaxation
        .x
        .iter()
        .map(|xs| mu * xs.iter().sum::<f64>())
        .collect();
    let mut f_rev: Vec<f64> = (0..k).map(|i| 1.0 + q[i] * (rev_assign[i] - 1.0)).collect();
    let mut r_term = (t_0 * i_b).exp();
    for &f in &f_rev {
        r_term *= f;
    }

    // Constraint terms C_k = e^{−t_k·c̃_k} Π_i f_cons_{i,k}.
    let mut c_term: Vec<f64> = cells
        .caps
        .iter()
        .map(|&c| (-t_k * c / r_scale).exp())
        .collect();
    // Current factor of request i in cell k, stored sparsely alongside
    // `expect_cells` (same order).
    let mut f_cons: Vec<Vec<f64>> = Vec::with_capacity(k);
    for i in 0..k {
        let fs: Vec<f64> = expect_cells[i]
            .iter()
            .map(|&(_, s)| 1.0 + s * (a_exp[i] - 1.0))
            .collect();
        for (&(cell, _), &f) in expect_cells[i].iter().zip(&fs) {
            c_term[cell as usize] *= f;
        }
        f_cons.push(fs);
    }
    let mut total_c: f64 = c_term.iter().sum();
    // Initial pessimistic-estimator value at the root of the decision
    // tree: the bound the walk greedily drives down level by level.
    tele.push(names::TAA_U_ROOT, r_term + total_c);

    // Residual feasibility tracking.
    let mut cell_load = vec![0.0_f64; n_cells];
    let mut schedule = Schedule::decline_all(k);

    // Walk the decision tree level by level (Algorithm 2, lines 4–12).
    for i in 0..k {
        let req = instance.request(RequestId(i as u32));
        let paths = &cells_of_path[i];
        let num_paths = paths.len();

        // Evaluate u' for each candidate branch. Option `j < num_paths`
        // routes on path j (`None` when it would overload a cell); option
        // `num_paths` declines. Every evaluation reads only the estimator
        // state frozen at this level, so the branches can be scored on
        // worker threads with bit-identical results.
        let eval_option = |opt: usize| -> Option<f64> {
            if opt < num_paths {
                let pcells = &paths[opt];
                // Hard feasibility: every cell on the path must fit.
                let fits = pcells
                    .iter()
                    .all(|&c| cell_load[c as usize] + req.rate <= cells.caps[c as usize] + 1e-9);
                if !fits {
                    return None;
                }
                // u' = R·(g_rev/f_rev) + total_C + Σ_{k affected} C_k·(g/f − 1).
                let mut u = r_term * (rev_assign[i] / f_rev[i]) + total_c;
                // Cells in the expectation set change factor: to a_i on
                // this path's cells, to 1 elsewhere. Path cells outside
                // the expectation set cannot exist: every path cell
                // carries S ≥ 0 and is inserted during precompute.
                for (idx, &(cell, _)) in expect_cells[i].iter().enumerate() {
                    let on_path = pcells.contains(&cell);
                    let g = if on_path { a_exp[i] } else { 1.0 };
                    u += c_term[cell as usize] * (g / f_cons[i][idx] - 1.0);
                }
                Some(u)
            } else {
                // Decline: g_rev = 1, every g = 1.
                let mut u = r_term * (1.0 / f_rev[i]) + total_c;
                for (idx, &(cell, _)) in expect_cells[i].iter().enumerate() {
                    u += c_term[cell as usize] * (1.0 / f_cons[i][idx] - 1.0);
                }
                Some(u)
            }
        };
        let scores: Vec<Option<f64>> =
            if threads > 1 && expect_cells[i].len() >= PARALLEL_EVAL_MIN_CELLS {
                parallel::run_indexed(num_paths + 1, threads, eval_option)
            } else {
                (0..=num_paths).map(eval_option).collect()
            };

        // Strict minimum wins, paths scanned first, so ties favor earlier
        // (cheaper) paths and routing beats an equal-score decline.
        let mut best_u = f64::INFINITY;
        let mut chosen: Option<usize> = None;
        for (j, score) in scores[..num_paths].iter().enumerate() {
            if let Some(u) = *score {
                if u < best_u {
                    best_u = u;
                    chosen = Some(j);
                }
            }
        }
        // metis-lint: allow(PANIC-01): the loop above unconditionally scores the decline option
        let decline_u = scores[num_paths].expect("decline always evaluates");
        if decline_u < best_u {
            chosen = None;
        }

        // Apply the chosen branch.
        match chosen {
            Some(j) => {
                schedule.set(RequestId(i as u32), Some(j));
                let ratio = rev_assign[i] / f_rev[i];
                r_term *= ratio;
                f_rev[i] = rev_assign[i];
                for idx in 0..expect_cells[i].len() {
                    let (cell, _) = expect_cells[i][idx];
                    let on_path = paths[j].contains(&cell);
                    let g = if on_path { a_exp[i] } else { 1.0 };
                    let old = c_term[cell as usize];
                    let new = old * g / f_cons[i][idx];
                    c_term[cell as usize] = new;
                    total_c += new - old;
                    f_cons[i][idx] = g;
                }
                for &c in &paths[j] {
                    cell_load[c as usize] += req.rate;
                }
            }
            None => {
                let ratio = 1.0 / f_rev[i];
                r_term *= ratio;
                f_rev[i] = 1.0;
                for idx in 0..expect_cells[i].len() {
                    let (cell, _) = expect_cells[i][idx];
                    let old = c_term[cell as usize];
                    let new = old / f_cons[i][idx];
                    c_term[cell as usize] = new;
                    total_c += new - old;
                    f_cons[i][idx] = 1.0;
                }
            }
        }
    }

    // Residual fill: the estimator walk can strand capacity by declining
    // low-bid requests even when they still fit. Admitting any such
    // request on a fitting path is a strict revenue improvement that
    // keeps feasibility, so sweep once more in bid order (highest first).
    let mut by_value: Vec<usize> = (0..k)
        .filter(|&i| !schedule.is_accepted(RequestId(i as u32)))
        .collect();
    by_value.sort_by(|&a, &b| {
        instance.requests()[b]
            .value
            .total_cmp(&instance.requests()[a].value)
    });
    for i in by_value {
        let req = instance.request(RequestId(i as u32));
        let fit = cells_of_path[i].iter().position(|pcells| {
            pcells
                .iter()
                .all(|&c| cell_load[c as usize] + req.rate <= cells.caps[c as usize] + 1e-9)
        });
        if let Some(j) = fit {
            for &c in &cells_of_path[i][j] {
                cell_load[c as usize] += req.rate;
            }
            schedule.set(RequestId(i as u32), Some(j));
        }
    }

    debug_assert!(schedule.check_capacities(instance, capacities).is_ok());
    let evaluation = schedule.evaluate(instance);
    TaaResult {
        schedule,
        evaluation,
        relaxation,
        mu: Some(mu),
    }
}

/// Re-solvable BL-SPM relaxation with simplex warm starts.
///
/// The BL-SPM program's *structure* — variables, rows, objective, bounds —
/// depends only on the instance; the capacity vector appears purely as
/// the right-hand side of the load rows. This solver builds the program
/// once, records the [`RowId`] of every load row, and on each
/// [`BlspmWarmSolver::solve`] call overwrites the right-hand sides with
/// [`Problem::set_rhs`] and restarts the simplex from the previous
/// optimum's [`Basis`]. Between Metis rounds the capacities only tighten
/// a little, so the old basis is usually a few dual pivots from the new
/// optimum. The optimum **value** always equals the cold rebuild's; the
/// optimal **vertex** may be a different one of the tied optima.
///
/// # Examples
///
/// ```
/// use metis_core::{solve_blspm_relaxation, BlspmWarmSolver, SpmInstance};
/// use metis_lp::SolveOptions;
/// use metis_netsim::topologies;
/// use metis_workload::{generate, WorkloadConfig};
///
/// let topo = topologies::sub_b4();
/// let requests = generate(&topo, &WorkloadConfig::paper(10, 5));
/// let instance = SpmInstance::new(topo, requests, 12, 3);
///
/// let mut solver = BlspmWarmSolver::new(&instance);
/// let opts = SolveOptions::default();
/// let caps = vec![4.0; instance.topology().num_edges()];
/// let warm = solver.solve(&caps, &opts)?;
/// let cold = solve_blspm_relaxation(&instance, &caps, &opts)?;
/// assert!((warm.revenue - cold.revenue).abs() < 1e-6);
/// # Ok::<(), metis_lp::SolveError>(())
/// ```
#[derive(Clone)]
pub struct BlspmWarmSolver {
    problem: Problem,
    xvars: Vec<Vec<metis_lp::VarId>>,
    /// `(edge index, load row)` for every (edge, slot) cell with a row.
    cell_rows: Vec<(usize, RowId)>,
    num_edges: usize,
    basis: Option<Basis>,
    warm_solves: usize,
    cold_solves: usize,
}

impl BlspmWarmSolver {
    /// Builds the fixed-structure program for `instance`. Load rows start
    /// with zero capacity; [`BlspmWarmSolver::solve`] sets the real ones.
    pub fn new(instance: &SpmInstance) -> Self {
        let topo = instance.topology();
        let slots = instance.num_slots();

        let mut p = Problem::new(Sense::Maximize);
        let mut xvars: Vec<Vec<metis_lp::VarId>> = Vec::with_capacity(instance.num_requests());
        for (r, paths) in instance.iter() {
            xvars.push(paths.iter().map(|_| p.add_var(r.value, 0.0, 1.0)).collect());
        }
        for vars in &xvars {
            p.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Le, 1.0);
        }
        let mut cell_terms: Vec<Vec<(metis_lp::VarId, f64)>> =
            vec![Vec::new(); topo.num_edges() * slots];
        for (i, (r, paths)) in instance.iter().enumerate() {
            for (j, path) in paths.iter().enumerate() {
                for &e in path.edges() {
                    for t in r.start..=r.end {
                        // INDEX: e < num_edges and t ≤ r.end < slots by instance validation; flat edge×slot layout.
                        cell_terms[e.index() * slots + t].push((xvars[i][j], r.rate));
                    }
                }
            }
        }
        let mut cell_rows = Vec::new();
        for e in 0..topo.num_edges() {
            for t in 0..slots {
                // INDEX: e < num_edges and t ≤ r.end < slots by instance validation; flat edge×slot layout.
                let terms = &cell_terms[e * slots + t];
                if !terms.is_empty() {
                    let row = p.add_constraint(terms.iter().copied(), Relation::Le, 0.0);
                    cell_rows.push((e, row));
                }
            }
        }

        BlspmWarmSolver {
            problem: p,
            xvars,
            cell_rows,
            num_edges: topo.num_edges(),
            basis: None,
            warm_solves: 0,
            cold_solves: 0,
        }
    }

    /// Solves the relaxation for `capacities`, warm-starting from the last
    /// solve's basis when one exists. A failed warm restart discards the
    /// basis and retries cold.
    ///
    /// # Errors
    ///
    /// Propagates LP failures from the cold path.
    ///
    /// # Panics
    ///
    /// Panics if `capacities.len()` differs from the edge count.
    pub fn solve(
        &mut self,
        capacities: &[f64],
        lp_options: &SolveOptions,
    ) -> Result<BlspmRelaxation, SolveError> {
        assert_eq!(capacities.len(), self.num_edges, "capacity vector length");
        for &(e, row) in &self.cell_rows {
            self.problem.set_rhs(row, capacities[e]);
        }
        let had_basis = self.basis.is_some();
        let attempt = self
            .problem
            .solve_with_basis(lp_options, self.basis.as_ref());
        let (sol, basis) = match attempt {
            Ok(pair) => {
                if had_basis {
                    self.warm_solves += 1;
                } else {
                    self.cold_solves += 1;
                }
                pair
            }
            Err(_) if had_basis => {
                self.basis = None;
                self.cold_solves += 1;
                self.problem.solve_with_basis(lp_options, None)?
            }
            Err(e) => return Err(e),
        };
        self.basis = Some(basis);

        let x: Vec<Vec<f64>> = self
            .xvars
            .iter()
            .map(|vars| vars.iter().map(|&v| sol.value(v).clamp(0.0, 1.0)).collect())
            .collect();
        Ok(BlspmRelaxation {
            x,
            revenue: sol.objective(),
            stats: *sol.stats(),
            lp_trace: sol.trace().clone(),
        })
    }

    /// Solves that started from a previous basis.
    pub fn warm_solves(&self) -> usize {
        self.warm_solves
    }

    /// Solves that built a basis from scratch.
    pub fn cold_solves(&self) -> usize {
        self.cold_solves
    }

    /// Drops the stored basis, forcing the next solve to start cold.
    pub fn reset_basis(&mut self) {
        self.basis = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::topologies;
    use metis_workload::{generate, WorkloadConfig};

    fn instance(k: usize, seed: u64) -> SpmInstance {
        let topo = topologies::b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(k, seed));
        SpmInstance::new(topo, reqs, 12, 3)
    }

    #[test]
    fn relaxation_upper_bounds_any_schedule() {
        let inst = instance(25, 1);
        let caps = vec![10.0; inst.topology().num_edges()];
        let rel = solve_blspm_relaxation(&inst, &caps, &SolveOptions::default()).unwrap();
        assert!(rel.revenue > 0.0);
        assert!(rel.revenue <= inst.total_value() + 1e-6);
        for xs in &rel.x {
            let s: f64 = xs.iter().sum();
            assert!(s <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn generous_capacity_accepts_everything() {
        let inst = instance(20, 2);
        let caps = vec![1000.0; inst.topology().num_edges()];
        let res = taa(&inst, &caps, &TaaOptions::default()).unwrap();
        assert_eq!(
            res.schedule.num_accepted(),
            20,
            "nothing should be declined"
        );
        assert!((res.evaluation.revenue - inst.total_value()).abs() < 1e-6);
    }

    #[test]
    fn schedule_always_feasible() {
        for seed in 0..4 {
            let inst = instance(60, seed);
            let caps = vec![2.0; inst.topology().num_edges()];
            let res = taa(&inst, &caps, &TaaOptions::default()).unwrap();
            res.schedule
                .check_capacities(&inst, &caps)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn zero_capacity_declines_all() {
        let inst = instance(10, 3);
        let caps = vec![0.0; inst.topology().num_edges()];
        let res = taa(&inst, &caps, &TaaOptions::default()).unwrap();
        assert_eq!(res.schedule.num_accepted(), 0);
        assert_eq!(res.mu, None);
        assert_eq!(res.evaluation.revenue, 0.0);
    }

    #[test]
    fn tiny_capacity_declines_all_without_mu() {
        // Capacity small enough that select_mu finds no valid scaling
        // factor (normalized c below ≈ 0.231 for T=12, N=38): TAA must
        // fall back to decline-all instead of rounding with the bogus
        // Some(1e-12) factor the old select_mu returned.
        let inst = instance(10, 3);
        let caps = vec![0.05; inst.topology().num_edges()];
        let res = taa(&inst, &caps, &TaaOptions::default()).unwrap();
        assert_eq!(res.mu, None, "no μ satisfies inequality (6) at c ≈ 0.1");
        assert_eq!(res.schedule.num_accepted(), 0);
        assert_eq!(res.evaluation.revenue, 0.0);
        assert!(res.evaluation.profit >= 0.0);
    }

    #[test]
    fn revenue_bounded_by_relaxation() {
        let inst = instance(40, 4);
        let caps = vec![5.0; inst.topology().num_edges()];
        let res = taa(&inst, &caps, &TaaOptions::default()).unwrap();
        assert!(res.evaluation.revenue <= res.relaxation.revenue + 1e-6);
        assert!(res.mu.unwrap() > 0.0 && res.mu.unwrap() < 1.0);
    }

    #[test]
    fn tight_capacity_declines_some() {
        let inst = instance(80, 5);
        let caps = vec![1.0; inst.topology().num_edges()];
        let res = taa(&inst, &caps, &TaaOptions::default()).unwrap();
        assert!(res.schedule.num_accepted() < 80);
        assert!(res.schedule.num_accepted() > 0);
    }

    #[test]
    fn deterministic() {
        let inst = instance(30, 6);
        let caps = vec![3.0; inst.topology().num_edges()];
        let a = taa(&inst, &caps, &TaaOptions::default()).unwrap();
        let b = taa(&inst, &caps, &TaaOptions::default()).unwrap();
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn parallel_walk_bit_identical_across_thread_counts() {
        let inst = instance(40, 8);
        let caps = vec![3.0; inst.topology().num_edges()];
        let serial = taa(&inst, &caps, &TaaOptions::default()).unwrap();
        for threads in [2, 8] {
            let opts = TaaOptions {
                parallel: ParallelConfig {
                    threads,
                    ..ParallelConfig::default()
                },
                ..TaaOptions::default()
            };
            let par = taa(&inst, &caps, &opts).unwrap();
            assert_eq!(par.schedule, serial.schedule, "threads = {threads}");
            assert_eq!(par.evaluation, serial.evaluation, "threads = {threads}");
        }
    }

    #[test]
    fn warm_solver_matches_cold_relaxation_revenue() {
        let inst = instance(30, 9);
        let opts = SolveOptions::default();
        let mut solver = BlspmWarmSolver::new(&inst);
        // A tightening capacity sequence like the Metis limiter produces.
        for cap in [8.0, 5.0, 3.0, 2.0, 1.0] {
            let caps = vec![cap; inst.topology().num_edges()];
            let warm = solver.solve(&caps, &opts).unwrap();
            let cold = solve_blspm_relaxation(&inst, &caps, &opts).unwrap();
            assert!(
                (warm.revenue - cold.revenue).abs() < 1e-6,
                "cap {cap}: warm {} vs cold {}",
                warm.revenue,
                cold.revenue
            );
            for xs in &warm.x {
                let s: f64 = xs.iter().sum();
                assert!(s <= 1.0 + 1e-6);
            }
        }
        assert_eq!(solver.cold_solves(), 1, "only the first solve is cold");
        assert_eq!(solver.warm_solves(), 4);
    }

    #[test]
    fn taa_with_solver_stays_feasible_and_bounded() {
        let inst = instance(50, 10);
        let mut solver = BlspmWarmSolver::new(&inst);
        for cap in [4.0, 2.0, 1.0] {
            let caps = vec![cap; inst.topology().num_edges()];
            let res = taa_with_solver(&inst, &caps, &TaaOptions::default(), &mut solver).unwrap();
            res.schedule
                .check_capacities(&inst, &caps)
                .unwrap_or_else(|v| panic!("cap {cap}: {v}"));
            assert!(res.evaluation.revenue <= res.relaxation.revenue + 1e-6);
        }
    }

    #[test]
    fn more_capacity_never_hurts_much() {
        // Revenue should (weakly) increase as capacity grows. Greedy
        // derandomization is not strictly monotone, so allow 5% slack.
        let inst = instance(50, 7);
        let lo = taa(&inst, &vec![1.0; 38], &TaaOptions::default()).unwrap();
        let hi = taa(&inst, &vec![10.0; 38], &TaaOptions::default()).unwrap();
        assert!(hi.evaluation.revenue >= lo.evaluation.revenue * 0.95);
    }
}
