//! Post-hoc schedule analytics: who pays for which link, and which
//! accepted bids actually carry the profit.
//!
//! The billing model charges peaks per link, so cost is inherently
//! shared; this module attributes each link's bill to the requests using
//! it **proportionally to their time-integrated load** on that link, then
//! reports per-request attributed profit and per-link economics. The
//! attribution is exact in aggregate: attributed costs sum to the bill.

use serde::{Deserialize, Serialize};

use metis_netsim::EdgeId;
use metis_workload::RequestId;

use crate::instance::SpmInstance;
use crate::schedule::Schedule;

/// Per-request verdict with attributed economics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// The request.
    pub id: RequestId,
    /// Chosen candidate-path index, or `None` if declined.
    pub path: Option<usize>,
    /// The bid `v_i`.
    pub bid: f64,
    /// Share of the total bandwidth bill attributed to this request
    /// (0 for declined requests).
    pub attributed_cost: f64,
    /// `bid − attributed_cost` for accepted requests, 0 otherwise.
    pub attributed_profit: f64,
}

/// Per-link economics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkOutcome {
    /// The directed edge.
    pub edge: EdgeId,
    /// Charged units `c_e`.
    pub charged_units: u64,
    /// Peak load (units).
    pub peak: f64,
    /// Mean load over the cycle (units).
    pub mean: f64,
    /// `u_e · c_e`.
    pub cost: f64,
    /// Number of accepted requests routed over this edge.
    pub users: usize,
}

/// Full analysis of one schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleAnalysis {
    /// One entry per request, in id order.
    pub requests: Vec<RequestOutcome>,
    /// One entry per edge with purchased bandwidth, sorted by cost
    /// descending.
    pub links: Vec<LinkOutcome>,
    /// Total revenue.
    pub revenue: f64,
    /// Total bandwidth cost.
    pub cost: f64,
    /// Number of accepted requests whose attributed profit is negative —
    /// bids carried by the profitable ones through shared peaks.
    pub cross_subsidized: usize,
}

/// Analyzes a schedule against its instance.
///
/// # Panics
///
/// Panics if the schedule does not match the instance.
///
/// # Examples
///
/// ```
/// use metis_core::{analyze, metis, MetisConfig, SpmInstance};
/// use metis_netsim::topologies;
/// use metis_workload::{generate, WorkloadConfig};
///
/// let topo = topologies::sub_b4();
/// let requests = generate(&topo, &WorkloadConfig::paper(30, 1));
/// let instance = SpmInstance::new(topo, requests, 12, 3);
/// let result = metis(&instance, &MetisConfig::with_theta(4))?;
///
/// let analysis = analyze(&instance, &result.schedule);
/// let attributed: f64 = analysis.requests.iter().map(|r| r.attributed_cost).sum();
/// assert!((attributed - analysis.cost).abs() < 1e-6); // exact in aggregate
/// # Ok::<(), metis_core::MetisError>(())
/// ```
pub fn analyze(instance: &SpmInstance, schedule: &Schedule) -> ScheduleAnalysis {
    let topo = instance.topology();
    let load = schedule.load(instance);

    // Time-integrated load share per (edge, request).
    let mut edge_total: Vec<f64> = vec![0.0; topo.num_edges()];
    let mut edge_users: Vec<usize> = vec![0; topo.num_edges()];
    let mut per_request_usage: Vec<Vec<(usize, f64)>> = vec![Vec::new(); instance.num_requests()];
    for (i, r) in instance.requests().iter().enumerate() {
        if let Some(j) = schedule.path_choice(r.id) {
            let weight = r.rate * r.duration() as f64;
            for &e in instance.paths(r.id)[j].edges() {
                edge_total[e.index()] += weight;
                edge_users[e.index()] += 1;
                per_request_usage[i].push((e.index(), weight));
            }
        }
    }

    let edge_cost: Vec<f64> = topo
        .edge_ids()
        .map(|e| topo.price(e) * load.charged_units(e) as f64)
        .collect();

    let mut requests = Vec::with_capacity(instance.num_requests());
    let mut revenue = 0.0;
    let mut cross_subsidized = 0;
    for (i, r) in instance.requests().iter().enumerate() {
        let path = schedule.path_choice(r.id);
        let mut attributed_cost = 0.0;
        if path.is_some() {
            revenue += r.value;
            for &(e, w) in &per_request_usage[i] {
                if edge_total[e] > 0.0 {
                    attributed_cost += edge_cost[e] * w / edge_total[e];
                }
            }
        }
        let attributed_profit = if path.is_some() {
            r.value - attributed_cost
        } else {
            0.0
        };
        if path.is_some() && attributed_profit < 0.0 {
            cross_subsidized += 1;
        }
        requests.push(RequestOutcome {
            id: r.id,
            path,
            bid: r.value,
            attributed_cost,
            attributed_profit,
        });
    }

    let mut links: Vec<LinkOutcome> = topo
        .edge_ids()
        .filter(|&e| load.charged_units(e) > 0)
        .map(|e| LinkOutcome {
            edge: e,
            charged_units: load.charged_units(e),
            peak: load.peak(e),
            mean: load.mean(e),
            cost: edge_cost[e.index()],
            users: edge_users[e.index()],
        })
        .collect();
    links.sort_by(|a, b| b.cost.total_cmp(&a.cost));

    let cost: f64 = edge_cost.iter().sum();
    ScheduleAnalysis {
        requests,
        links,
        revenue,
        cost,
        cross_subsidized,
    }
}

impl ScheduleAnalysis {
    /// The accepted requests sorted by attributed profit, best first.
    pub fn most_profitable(&self) -> Vec<&RequestOutcome> {
        let mut out: Vec<&RequestOutcome> =
            self.requests.iter().filter(|r| r.path.is_some()).collect();
        out.sort_by(|a, b| b.attributed_profit.total_cmp(&a.attributed_profit));
        out
    }

    /// Renders a compact text report (top links and extremes of the
    /// attributed-profit distribution).
    pub fn render_text(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "revenue {:.2}  cost {:.2}  profit {:.2}  cross-subsidized {}",
            self.revenue,
            self.cost,
            self.revenue - self.cost,
            self.cross_subsidized
        );
        let _ = writeln!(out, "costliest links:");
        for l in self.links.iter().take(top) {
            let _ = writeln!(
                out,
                "  {}: {} units (peak {:.2}, mean {:.2}), cost {:.2}, {} users",
                l.edge, l.charged_units, l.peak, l.mean, l.cost, l.users
            );
        }
        let ranked = self.most_profitable();
        let _ = writeln!(out, "best attributed bids:");
        for r in ranked.iter().take(top) {
            let _ = writeln!(
                out,
                "  {}: bid {:.3}, attributed cost {:.3}, profit {:+.3}",
                r.id, r.bid, r.attributed_cost, r.attributed_profit
            );
        }
        let _ = writeln!(out, "worst attributed bids:");
        for r in ranked.iter().rev().take(top) {
            let _ = writeln!(
                out,
                "  {}: bid {:.3}, attributed cost {:.3}, profit {:+.3}",
                r.id, r.bid, r.attributed_cost, r.attributed_profit
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{metis, MetisConfig};
    use crate::rlspm::{maa, MaaOptions};
    use metis_netsim::topologies;
    use metis_workload::{generate, WorkloadConfig};

    fn instance(k: usize, seed: u64) -> SpmInstance {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(k, seed));
        SpmInstance::new(topo, reqs, 12, 3)
    }

    #[test]
    fn attribution_sums_to_bill() {
        let inst = instance(40, 1);
        let m = metis(&inst, &MetisConfig::with_theta(4)).unwrap();
        let a = analyze(&inst, &m.schedule);
        let attributed: f64 = a.requests.iter().map(|r| r.attributed_cost).sum();
        assert!((attributed - a.cost).abs() < 1e-6);
        assert!((a.revenue - m.evaluation.revenue).abs() < 1e-9);
        assert!((a.cost - m.evaluation.cost).abs() < 1e-9);
    }

    #[test]
    fn declined_requests_attribute_nothing() {
        let inst = instance(30, 2);
        let m = metis(&inst, &MetisConfig::with_theta(4)).unwrap();
        let a = analyze(&inst, &m.schedule);
        for r in &a.requests {
            if r.path.is_none() {
                assert_eq!(r.attributed_cost, 0.0);
                assert_eq!(r.attributed_profit, 0.0);
            }
        }
    }

    #[test]
    fn links_sorted_by_cost_and_counted() {
        let inst = instance(50, 3);
        let accepted = vec![true; 50];
        let m = maa(&inst, &accepted, &MaaOptions::default()).unwrap();
        let a = analyze(&inst, &m.schedule);
        for w in a.links.windows(2) {
            assert!(w[0].cost >= w[1].cost);
        }
        for l in &a.links {
            assert!(l.charged_units as f64 + 1e-9 >= l.peak);
            assert!(l.users > 0, "charged link with no users");
        }
    }

    #[test]
    fn empty_schedule_analysis() {
        let inst = instance(10, 4);
        let a = analyze(&inst, &Schedule::decline_all(10));
        assert_eq!(a.revenue, 0.0);
        assert_eq!(a.cost, 0.0);
        assert!(a.links.is_empty());
        assert_eq!(a.cross_subsidized, 0);
        assert!(a.most_profitable().is_empty());
    }

    #[test]
    fn text_report_mentions_key_numbers() {
        let inst = instance(25, 5);
        let m = metis(&inst, &MetisConfig::with_theta(4)).unwrap();
        let a = analyze(&inst, &m.schedule);
        let text = a.render_text(3);
        assert!(text.contains("revenue"));
        assert!(text.contains("costliest links"));
        assert!(text.contains("best attributed bids"));
    }

    #[test]
    fn ranking_is_descending() {
        let inst = instance(35, 6);
        let m = metis(&inst, &MetisConfig::with_theta(4)).unwrap();
        let a = analyze(&inst, &m.schedule);
        let ranked = a.most_profitable();
        for w in ranked.windows(2) {
            assert!(w[0].attributed_profit >= w[1].attributed_profit);
        }
    }
}
