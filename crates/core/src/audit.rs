//! Runtime certification of schedules and their accounting.
//!
//! The paper's profit claims are only as good as the arithmetic behind
//! them: `profit = Σ v_i − Σ u_e·⌈peak_e⌉` with the peak taken over the
//! *true* per-edge load. This module re-derives every one of those
//! quantities from scratch — straight from the instance and the
//! assignment vector, sharing no code with the incremental
//! [`LoadMatrix`] peak cache or the solvers — and compares bit-for-bit
//! against what a run reported. Because the reference recomputation
//! replays the same index-ordered folds the production path uses, any
//! divergence at all (one bit of profit, one cell of load) is a real
//! invariant break, not floating-point noise.
//!
//! Audits run after every solve when [`MetisConfig::audit`] is set or
//! under `debug_assertions`, and land in [`MetisResult::audit`] /
//! [`OnlineResult::audit`]; violations are counted in the telemetry
//! registry (`audit.checks` / `audit.violations`) and emitted on the
//! event stream. [`check_incident_agreement`] is offered standalone
//! because a [`Telemetry`] registry may aggregate several runs — the
//! caller decides when counter totals must equal a run's incident list.
//!
//! [`MetisConfig::audit`]: crate::MetisConfig::audit
//! [`MetisResult::audit`]: crate::MetisResult::audit
//! [`OnlineResult::audit`]: crate::OnlineResult::audit
//! [`LoadMatrix`]: metis_netsim::LoadMatrix

use metis_netsim::{ceil_units, EdgeId};
use metis_telemetry::{names, Snapshot, Telemetry};
use metis_workload::RequestId;

use crate::framework::Incident;
use crate::instance::SpmInstance;
use crate::schedule::{Evaluation, Schedule};

/// One broken invariant found by an audit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditViolation {
    /// Stable machine-readable code for the invariant (`path.index`,
    /// `load.peak`, `accounting.profit`, `capacity.respect`, …).
    pub check: &'static str,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// Outcome of one or more audit passes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Individual invariant evaluations performed.
    pub checks: usize,
    /// Invariants that did not hold. Empty on a healthy run.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Whether every check passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.checks += other.checks;
        self.violations.extend(other.violations);
    }

    /// Counts one check, recording a violation when `ok` is false.
    fn check(&mut self, ok: bool, code: &'static str, detail: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violations.push(AuditViolation {
                check: code,
                detail: detail(),
            });
        }
    }

    /// Funnels the report into the telemetry registry: bumps
    /// `audit.checks` / `audit.violations` and emits one `audit` event
    /// per violation.
    pub fn record(&self, tele: &Telemetry) {
        tele.add(names::AUDIT_CHECKS, self.checks as u64);
        tele.add(names::AUDIT_VIOLATIONS, self.violations.len() as u64);
        for v in &self.violations {
            tele.event(names::EVENT_AUDIT, || v.to_string());
        }
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(f, "audit clean ({} checks)", self.checks)
        } else {
            writeln!(
                f,
                "audit FAILED: {} of {} checks violated",
                self.violations.len(),
                self.checks
            )?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Audits a schedule and its reported [`Evaluation`] against `instance`.
///
/// Re-derives, independently of [`Schedule::load`] and the
/// [`LoadMatrix`] peak cache:
///
/// * **structure** — assignment length matches the instance;
/// * **paths** — every accepted request uses a valid candidate-path
///   index whose path really connects the request's endpoints;
/// * **windows** — request time windows sit inside the billing cycle;
/// * **load** — every `[edge][slot]` cell of the reported load matrix,
///   recomputed from the assignment alone (bit-exact);
/// * **peaks** — the per-edge peak cache against a from-scratch scan
///   (bit-exact);
/// * **accounting** — charged units, revenue, cost, and profit
///   (bit-exact), plus the accepted-request count.
pub fn audit_schedule(
    instance: &SpmInstance,
    schedule: &Schedule,
    evaluation: &Evaluation,
) -> AuditReport {
    let mut rep = AuditReport::default();
    let k = instance.num_requests();
    let num_edges = instance.topology().num_edges();
    let num_slots = instance.num_slots();

    rep.check(schedule.len() == k, "structure.len", || {
        format!(
            "schedule covers {} requests, instance has {k}",
            schedule.len()
        )
    });
    if schedule.len() != k {
        return rep; // nothing else is meaningful
    }

    // Reference load accumulation: plain dense matrix, same fold order as
    // the production path (requests by index, edges in path order, slots
    // ascending) so agreement must be bit-exact.
    let mut raw = vec![0.0f64; num_edges * num_slots];
    let mut revenue = 0.0f64;
    let mut accepted = 0usize;
    for i in 0..k {
        let id = RequestId(i as u32);
        let Some(j) = schedule.path_choice(id) else {
            continue;
        };
        accepted += 1;
        let r = instance.request(id);
        let paths = instance.paths(id);
        rep.check(j < paths.len(), "path.index", || {
            format!("{id} assigned path {j}, only {} candidates", paths.len())
        });
        rep.check(
            r.start <= r.end && r.end < num_slots,
            "window.containment",
            || {
                format!(
                    "{id} window [{}, {}] outside billing cycle of {num_slots} slots",
                    r.start, r.end
                )
            },
        );
        if j >= paths.len() || r.end >= num_slots {
            continue;
        }
        let path = &paths[j];
        rep.check(
            path.source() == r.src && path.dest() == r.dst,
            "path.endpoints",
            || {
                format!(
                    "{id} wants {}→{}, path {j} runs {}→{}",
                    r.src,
                    r.dst,
                    path.source(),
                    path.dest()
                )
            },
        );
        revenue += r.value;
        for &e in path.edges() {
            let base = e.index() * num_slots;
            for s in r.start..=r.end {
                // INDEX: e < num_edges and s ≤ r.end < num_slots by
                // instance validation; flat edge×slot layout.
                raw[base + s] += r.rate;
            }
        }
    }
    revenue += 0.0; // normalize the empty sum's −0.0, like Evaluation

    // Load cells and peaks, bit-for-bit.
    let load = &evaluation.load;
    let mut cell_mismatches = 0usize;
    let mut cost = 0.0f64;
    for e in 0..num_edges {
        let edge = EdgeId(e as u32);
        let row = &raw[e * num_slots..(e + 1) * num_slots];
        for (t, &expect) in row.iter().enumerate() {
            if load.get(edge, t).to_bits() != expect.to_bits() {
                cell_mismatches += 1;
            }
        }
        let scan = row.iter().fold(0.0f64, |a, &b| a.max(b));
        rep.check(
            load.peak(edge).to_bits() == scan.to_bits(),
            "load.peak",
            || {
                format!(
                    "edge {edge} cached peak {} ≠ from-scratch peak {scan}",
                    load.peak(edge)
                )
            },
        );
        let units = ceil_units(scan);
        rep.check(
            evaluation.charged[e].to_bits() == (units as f64).to_bits(),
            "accounting.charged",
            || {
                format!(
                    "edge {edge} charged {} units, peak {scan} demands {units}",
                    evaluation.charged[e]
                )
            },
        );
        cost += instance.topology().price(edge) * units as f64;
    }
    rep.check(cell_mismatches == 0, "load.cells", || {
        format!("{cell_mismatches} load cells differ from the assignment's true load")
    });

    rep.check(
        evaluation.revenue.to_bits() == revenue.to_bits(),
        "accounting.revenue",
        || {
            format!(
                "reported revenue {} ≠ recomputed {revenue}",
                evaluation.revenue
            )
        },
    );
    rep.check(
        evaluation.cost.to_bits() == cost.to_bits(),
        "accounting.cost",
        || format!("reported cost {} ≠ recomputed {cost}", evaluation.cost),
    );
    let profit = revenue - cost;
    rep.check(
        evaluation.profit.to_bits() == profit.to_bits(),
        "accounting.profit",
        || {
            format!(
                "reported profit {} ≠ recomputed revenue − cost = {profit}",
                evaluation.profit
            )
        },
    );
    rep.check(
        evaluation.accepted == accepted,
        "accounting.accepted",
        || {
            format!(
                "reported {} accepted requests, assignment has {accepted}",
                evaluation.accepted
            )
        },
    );
    rep
}

/// Audits TAA capacity respect: the schedule's true load must stay within
/// `caps` on every edge and slot (within the charging tolerance).
pub fn audit_capacities(instance: &SpmInstance, schedule: &Schedule, caps: &[f64]) -> AuditReport {
    let mut rep = AuditReport::default();
    rep.check(
        caps.len() == instance.topology().num_edges(),
        "capacity.shape",
        || {
            format!(
                "capacity vector has {} edges, topology {}",
                caps.len(),
                instance.topology().num_edges()
            )
        },
    );
    if caps.len() != instance.topology().num_edges() {
        return rep;
    }
    let outcome = schedule.check_capacities(instance, caps);
    rep.check(outcome.is_ok(), "capacity.respect", || {
        // The closure only runs on Err; render the violation.
        match &outcome {
            Err(v) => v.to_string(),
            Ok(()) => String::new(),
        }
    });
    rep
}

/// Audits agreement between a run's incident list and a telemetry
/// snapshot: each `incident.*` counter and the `incident` event stream
/// must equal the corresponding tally of [`Incident`]s.
///
/// Standalone (not called inside [`crate::metis_instrumented`]) because a
/// [`Telemetry`] registry may aggregate several runs; callers that
/// dedicate a registry to one run — the `spm` CLI, the e2e tests — get an
/// exact three-way agreement check between counters, events, and the
/// returned incident vec.
pub fn check_incident_agreement(incidents: &[Incident], snapshot: &Snapshot) -> AuditReport {
    let mut rep = AuditReport::default();
    let count = |f: fn(&Incident) -> bool| incidents.iter().filter(|i| f(i)).count() as u64;
    let pairs: [(&'static str, u64); 3] = [
        (
            names::INCIDENT_SOLVE_FAILED,
            count(|i| matches!(i, Incident::SolveFailed { .. })),
        ),
        (
            names::INCIDENT_WARM_RETRY,
            count(|i| matches!(i, Incident::WarmRetry { .. })),
        ),
        (
            names::INCIDENT_EPOCH_SKIPPED,
            count(|i| matches!(i, Incident::EpochSkipped { .. })),
        ),
    ];
    for (name, expected) in pairs {
        let counter = snapshot.counter(name);
        rep.check(counter == expected, "incident.counter", || {
            format!("counter {name} = {counter}, incident vec holds {expected}")
        });
    }
    let events = snapshot
        .events
        .iter()
        .filter(|e| e.kind == names::EVENT_INCIDENT)
        .count();
    rep.check(events == incidents.len(), "incident.events", || {
        format!(
            "{events} incident events on the stream, incident vec holds {}",
            incidents.len()
        )
    });
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::framework::{metis_instrumented, MetisConfig};
    use metis_netsim::topologies;
    use metis_workload::{generate, WorkloadConfig};

    fn instance() -> SpmInstance {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(20, 7));
        SpmInstance::new(topo, reqs, 12, 3)
    }

    /// Accept-all MAA: guaranteed to accept every request, so mutation
    /// tests always have accepted traffic to corrupt.
    fn good_run(inst: &SpmInstance) -> (Schedule, Evaluation) {
        let accepted = vec![true; inst.num_requests()];
        let res = crate::rlspm::maa(inst, &accepted, &crate::rlspm::MaaOptions::default()).unwrap();
        (res.schedule, res.evaluation)
    }

    #[test]
    fn clean_run_audits_clean() {
        let inst = instance();
        let (s, ev) = good_run(&inst);
        let rep = audit_schedule(&inst, &s, &ev);
        assert!(rep.is_clean(), "{rep}");
        assert!(rep.checks > 10);
    }

    #[test]
    fn dropped_path_hop_is_caught() {
        // Point a request at a path index past its candidate list.
        let inst = instance();
        let (mut s, ev) = good_run(&inst);
        let id = s.accepted_ids()[0];
        s.set(id, Some(usize::MAX));
        let rep = audit_schedule(&inst, &s, &ev);
        assert!(
            rep.violations.iter().any(|v| v.check == "path.index"),
            "{rep}"
        );
    }

    #[test]
    fn inflated_peak_is_caught() {
        let inst = instance();
        let (s, mut ev) = good_run(&inst);
        // Corrupt the load matrix behind the evaluation: extra phantom
        // traffic inflates one edge's cells and cached peak.
        ev.load.add(EdgeId(0), 0, 3, 2.5);
        let rep = audit_schedule(&inst, &s, &ev);
        assert!(
            rep.violations.iter().any(|v| v.check == "load.peak"),
            "{rep}"
        );
        assert!(
            rep.violations.iter().any(|v| v.check == "load.cells"),
            "{rep}"
        );
    }

    #[test]
    fn double_counted_revenue_is_caught() {
        let inst = instance();
        let (s, mut ev) = good_run(&inst);
        let v0 = inst.requests()[s.accepted_ids()[0].index()].value;
        ev.revenue += v0; // count the first accepted request twice
        ev.profit += v0;
        let rep = audit_schedule(&inst, &s, &ev);
        assert!(
            rep.violations
                .iter()
                .any(|v| v.check == "accounting.revenue"),
            "{rep}"
        );
        assert!(
            rep.violations
                .iter()
                .any(|v| v.check == "accounting.profit"),
            "{rep}"
        );
    }

    #[test]
    fn capacity_violation_is_caught() {
        let inst = instance();
        let (s, _) = good_run(&inst);
        assert!(s.num_accepted() > 0, "need an accepted request");
        // Zero capacity everywhere: any accepted traffic violates.
        let caps = vec![0.0; inst.topology().num_edges()];
        let rep = audit_capacities(&inst, &s, &caps);
        assert!(
            rep.violations.iter().any(|v| v.check == "capacity.respect"),
            "{rep}"
        );
        // And the true charged capacities satisfy it.
        let (_, ev) = good_run(&inst);
        let rep2 = audit_capacities(&inst, &s, &ev.charged);
        assert!(rep2.is_clean(), "{rep2}");
    }

    #[test]
    fn desynced_incident_counter_is_caught() {
        use metis_lp::SolveError;
        let tele = Telemetry::enabled();
        let inst = instance();
        let res = metis_instrumented(
            &inst,
            &MetisConfig::with_theta(2),
            &FaultPlan::none(),
            &tele,
        )
        .unwrap();
        let snap = tele.snapshot().unwrap();
        // Healthy run: counters, events, and vec agree.
        let rep = check_incident_agreement(&res.incidents, &snap);
        assert!(rep.is_clean(), "{rep}");
        // Desync: pretend the run observed one more incident than the
        // registry counted.
        let mut forged = res.incidents.clone();
        forged.push(Incident::SolveFailed {
            phase: crate::framework::Phase::Maa,
            round: 99,
            error: SolveError::Singular,
        });
        let rep = check_incident_agreement(&forged, &snap);
        assert!(
            rep.violations.iter().any(|v| v.check == "incident.counter"),
            "{rep}"
        );
        assert!(
            rep.violations.iter().any(|v| v.check == "incident.events"),
            "{rep}"
        );
    }

    #[test]
    fn report_funnels_into_telemetry() {
        let tele = Telemetry::enabled();
        let mut rep = AuditReport::default();
        rep.check(true, "demo.pass", String::new);
        rep.check(false, "demo.fail", || "broken".to_string());
        rep.record(&tele);
        let snap = tele.snapshot().unwrap();
        assert_eq!(snap.counter(names::AUDIT_CHECKS), 2);
        assert_eq!(snap.counter(names::AUDIT_VIOLATIONS), 1);
        assert_eq!(
            snap.events
                .iter()
                .filter(|e| e.kind == names::EVENT_AUDIT)
                .count(),
            1
        );
    }
}
