//! Bandwidth-limiter rules (`τ` in the paper's framework, §II-C).
//!
//! Between alternation rounds, the BW Limiter tightens the link
//! capacities handed to the BL-SPM solver. The paper's rule reduces the
//! bandwidth of the link with the minimum average utilization; two
//! alternative rules are provided for the ablation benchmarks.

use serde::{Deserialize, Serialize};

use metis_netsim::{EdgeId, LoadMatrix, Topology};

/// The capacity-reduction rule `τ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LimiterRule {
    /// Reduce by one unit the link whose average utilization
    /// (mean load / capacity) is minimal — the paper's rule.
    #[default]
    MinUtilization,
    /// Reduce by one unit the most expensive link with purchased
    /// bandwidth (ablation).
    MaxPrice,
    /// Scale every capacity to 90% (floored); if that changes nothing,
    /// fall back to [`LimiterRule::MinUtilization`] (ablation).
    UniformShrink,
}

impl LimiterRule {
    /// Applies the rule: returns tightened capacities.
    ///
    /// Capacities are integer bandwidth units stored as `f64`. Returns the
    /// input unchanged (all zeros stay zeros) when no link has capacity.
    ///
    /// # Panics
    ///
    /// Panics if the lengths of `capacities`, the load matrix, and the
    /// topology disagree.
    pub fn apply(self, topo: &Topology, load: &LoadMatrix, capacities: &[f64]) -> Vec<f64> {
        assert_eq!(capacities.len(), topo.num_edges(), "capacity length");
        assert_eq!(load.num_edges(), topo.num_edges(), "load matrix edges");
        let mut caps = capacities.to_vec();
        match self {
            LimiterRule::MinUtilization => {
                if let Some(e) = min_utilization_edge(load, &caps) {
                    caps[e.index()] = (caps[e.index()] - 1.0).max(0.0);
                }
            }
            LimiterRule::MaxPrice => {
                let target = topo
                    .edge_ids()
                    .filter(|e| caps[e.index()] > 0.0)
                    .max_by(|a, b| topo.price(*a).total_cmp(&topo.price(*b)));
                if let Some(e) = target {
                    caps[e.index()] = (caps[e.index()] - 1.0).max(0.0);
                }
            }
            LimiterRule::UniformShrink => {
                let mut changed = false;
                for c in caps.iter_mut() {
                    let next = (*c * 0.9).floor();
                    if next < *c {
                        changed = true;
                    }
                    *c = next;
                }
                if !changed {
                    return LimiterRule::MinUtilization.apply(topo, load, capacities);
                }
            }
        }
        caps
    }
}

/// The link with positive capacity and minimal average utilization.
fn min_utilization_edge(load: &LoadMatrix, capacities: &[f64]) -> Option<EdgeId> {
    let mut best: Option<(EdgeId, f64)> = None;
    for (e, &cap) in capacities.iter().enumerate() {
        if cap <= 0.0 {
            continue;
        }
        let id = EdgeId(e as u32);
        let util = load.mean(id) / cap;
        match best {
            Some((_, u)) if u <= util => {}
            _ => best = Some((id, util)),
        }
    }
    best.map(|(e, _)| e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::{topologies, EdgeId};

    fn setup() -> (Topology, LoadMatrix, Vec<f64>) {
        let topo = topologies::sub_b4();
        let mut load = LoadMatrix::new(topo.num_edges(), 12);
        let mut caps = vec![0.0; topo.num_edges()];
        // Edge 0: high utilization; edge 1: low; edge 2: medium.
        caps[0] = 2.0;
        load.add(EdgeId(0), 0, 11, 1.8);
        caps[1] = 4.0;
        load.add(EdgeId(1), 0, 2, 0.4);
        caps[2] = 2.0;
        load.add(EdgeId(2), 0, 5, 1.0);
        (topo, load, caps)
    }

    #[test]
    fn min_utilization_reduces_the_idle_link() {
        let (topo, load, caps) = setup();
        let out = LimiterRule::MinUtilization.apply(&topo, &load, &caps);
        assert_eq!(out[1], 3.0, "least-utilized link shrinks");
        assert_eq!(out[0], 2.0);
        assert_eq!(out[2], 2.0);
    }

    #[test]
    fn max_price_reduces_the_expensive_link() {
        let (topo, load, caps) = setup();
        let out = LimiterRule::MaxPrice.apply(&topo, &load, &caps);
        // Among edges 0..=2 the most expensive (Asia-side) positive-cap
        // edge shrinks.
        let target = (0..3)
            .max_by(|&a, &b| {
                topo.price(EdgeId(a as u32))
                    .total_cmp(&topo.price(EdgeId(b as u32)))
            })
            .unwrap();
        assert_eq!(out[target], caps[target] - 1.0);
    }

    #[test]
    fn uniform_shrink_scales_down() {
        let (topo, load, mut caps) = setup();
        caps[1] = 10.0;
        let out = LimiterRule::UniformShrink.apply(&topo, &load, &caps);
        assert_eq!(out[1], 9.0);
        assert_eq!(out[0], 1.0); // floor(1.8)
    }

    #[test]
    fn uniform_shrink_falls_back_when_stuck() {
        let topo = topologies::sub_b4();
        let load = LoadMatrix::new(topo.num_edges(), 12);
        let mut caps = vec![0.0; topo.num_edges()];
        caps[3] = 1.0; // floor(0.9) = 0 < 1, so it does change...
        let out = LimiterRule::UniformShrink.apply(&topo, &load, &caps);
        assert_eq!(out[3], 0.0);
    }

    #[test]
    fn no_capacity_is_a_fixed_point() {
        let topo = topologies::sub_b4();
        let load = LoadMatrix::new(topo.num_edges(), 12);
        let caps = vec![0.0; topo.num_edges()];
        for rule in [
            LimiterRule::MinUtilization,
            LimiterRule::MaxPrice,
            LimiterRule::UniformShrink,
        ] {
            assert_eq!(rule.apply(&topo, &load, &caps), caps);
        }
    }

    #[test]
    fn repeated_application_reaches_zero() {
        let (topo, load, mut caps) = setup();
        for _ in 0..100 {
            caps = LimiterRule::MinUtilization.apply(&topo, &load, &caps);
        }
        assert!(
            caps.iter().all(|&c| c == 0.0),
            "limiter must drain capacity"
        );
    }
}
