//! Internal glue between the pipeline and the telemetry layer.

use metis_lp::{LpTrace, SolveStats};
use metis_telemetry::{names, Telemetry};

use crate::framework::RoundTrace;

/// Records one LP solve's work counters into the shared registry.
pub(crate) fn record_lp_stats(tele: &Telemetry, stats: &SolveStats) {
    if !tele.is_enabled() {
        return;
    }
    tele.add(names::LP_SIMPLEX_ITERATIONS, stats.iterations as u64);
    tele.add(names::LP_SIMPLEX_PHASE1, stats.phase1_iterations as u64);
    tele.add(names::LP_SIMPLEX_DUAL, stats.dual_iterations as u64);
    tele.add(names::LP_SIMPLEX_BOUND_FLIPS, stats.bound_flips as u64);
    tele.add(names::LP_SIMPLEX_REFRESHES, stats.refreshes as u64);
    tele.add(names::LP_LU_ETA_UPDATES, stats.eta_updates as u64);
    tele.add(
        names::LP_PRICING_BLOCK_SCANS,
        stats.pricing_block_scans as u64,
    );
    tele.add(names::LP_PRICING_DEVEX_RESETS, stats.devex_resets as u64);
    tele.add(names::LP_LU_FT_SPIKES, stats.ft_spikes as u64);
    tele.add(
        names::LP_RATIO_HARRIS_EXPANSIONS,
        stats.harris_expansions as u64,
    );
    tele.add(
        names::LP_PRESOLVE_SCALING_PASSES,
        stats.scaling_passes as u64,
    );
    // nnz of the factors is a size, not a flow: keep the latest value.
    if stats.lu_l_nnz > 0 || stats.lu_u_nnz > 0 {
        tele.gauge(names::LP_LU_L_NNZ, stats.lu_l_nnz as f64);
        tele.gauge(names::LP_LU_U_NNZ, stats.lu_u_nnz as f64);
    }
    tele.add(names::LP_PRESOLVE_ROWS, stats.presolve_removed_rows as u64);
    tele.add(names::LP_PRESOLVE_VARS, stats.presolve_removed_vars as u64);
    if stats.warm_started {
        tele.incr(names::LP_WARM_BASIS_REUSE);
    } else {
        tele.incr(names::LP_COLD_SOLVES);
    }
}

/// Records one LP solve's per-iteration trace volume. The trace is only
/// populated when [`metis_lp::SolveOptions::trace`] was set, so on
/// default-configured runs this records nothing.
pub(crate) fn record_lp_trace(tele: &Telemetry, trace: &LpTrace) {
    if !tele.is_enabled() || trace.total() == 0 {
        return;
    }
    tele.add(names::LP_TRACE_RECORDS, trace.records.len() as u64);
    tele.add(names::LP_TRACE_DROPPED, trace.dropped);
}

/// Pushes one convergence-trace entry onto the trace series, so the
/// accepted-count and LP-effort curves are visible in the snapshot and
/// over `/metrics` without shipping the full [`RoundTrace`] vector.
pub(crate) fn record_round_trace(tele: &Telemetry, entry: &RoundTrace) {
    if !tele.is_enabled() {
        return;
    }
    tele.push(names::TRACE_ACCEPTED, entry.accepted as f64);
    tele.push(names::TRACE_LP_ITERATIONS, entry.lp_iterations as f64);
}
