//! **Metis**: profit-maximizing admission and scheduling of inter-DC
//! transfer requests — the core contribution of *"Towards Maximal Service
//! Profit in Geo-Distributed Clouds"* (ICDCS 2019).
//!
//! A cloud provider leases WAN links at per-unit prices billed on peak
//! usage, receives bandwidth-reservation bids, and may decline requests.
//! Service-profit maximization (SPM: revenue − bandwidth cost) is NP-hard,
//! so Metis alternates two approximable variants:
//!
//! * [`maa`] solves **RL-SPM** (serve a fixed set as cheaply as possible)
//!   by LP relaxation + randomized rounding + integer ceiling;
//! * [`taa`] solves **BL-SPM** (maximize revenue under fixed capacities)
//!   by LP relaxation + Chernoff-scaled probabilities + a derandomized
//!   decision-tree walk;
//! * [`metis`] runs the alternation with a bandwidth [`LimiterRule`] and
//!   keeps the best schedule (the SP Updater).
//!
//! Failures are *contained*, not fatal: solver breakage inside the
//! alternation degrades the run (retry cold, skip the round or epoch,
//! record an [`Incident`]) while malformed instances are rejected up
//! front by the `try_*` constructors with an [`InstanceError`]. The
//! [`FaultPlan`] type injects deterministic failures for testing.
//!
//! # Quick start
//!
//! ```
//! use metis_core::{metis, MetisConfig, SpmInstance};
//! use metis_netsim::topologies;
//! use metis_workload::{generate, WorkloadConfig};
//!
//! let topo = topologies::b4();
//! let requests = generate(&topo, &WorkloadConfig::paper(50, 1));
//! let instance = SpmInstance::new(topo, requests, 12, 3);
//!
//! let result = metis(&instance, &MetisConfig::with_theta(4))?;
//! println!(
//!     "profit {:.2} with {}/{} requests accepted",
//!     result.evaluation.profit,
//!     result.evaluation.accepted,
//!     instance.num_requests(),
//! );
//! # Ok::<(), metis_core::MetisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod analysis;
pub mod audit;
mod blspm;
pub mod chernoff;
mod error;
mod faults;
mod framework;
mod instance;
mod limiter;
mod obs;
mod online;
mod parallel;
mod rlspm;
mod schedule;

pub use analysis::{analyze, LinkOutcome, RequestOutcome, ScheduleAnalysis};
pub use audit::{
    audit_capacities, audit_schedule, check_incident_agreement, AuditReport, AuditViolation,
};
pub use blspm::{
    solve_blspm_relaxation, taa, taa_instrumented, taa_with_solver, BlspmRelaxation,
    BlspmWarmSolver, TaaOptions, TaaResult,
};
pub use error::{InstanceError, MetisError};
pub use faults::FaultPlan;
pub use framework::{
    metis, metis_instrumented, metis_with_faults, Incident, IterationRecord, MetisConfig,
    MetisResult, Phase, RoundTrace,
};
pub use instance::{SpmInstance, DEFAULT_PATHS_PER_PAIR};
pub use limiter::LimiterRule;
pub use online::{
    online_metis, online_metis_instrumented, online_metis_with_faults, EpochRecord, OnlineOptions,
    OnlineResult,
};
pub use parallel::ParallelConfig;
pub use rlspm::{
    maa, maa_instrumented, maa_with_solver, round_schedule, solve_rlspm_relaxation, MaaOptions,
    MaaResult, RlspmRelaxation, RlspmWarmSolver,
};
pub use schedule::{CapacityViolation, Evaluation, Schedule};
