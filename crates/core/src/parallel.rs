//! Deterministic fan-out used by the parallel MAA rounding trials and the
//! parallel TAA candidate evaluation.
//!
//! Parallelism here is an *execution* detail, never a *semantic* one:
//! every parallel site computes an indexed family of independent values
//! (`f(0), …, f(n-1)`), each from its own explicitly-seeded RNG stream or
//! from read-only state, and the results are always consumed in index
//! order. Outputs are therefore bit-identical whether the family is
//! evaluated inline, on 2 threads, or on 8.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How much the solve pipeline is allowed to fan out.
///
/// # Examples
///
/// ```
/// use metis_core::ParallelConfig;
///
/// let serial = ParallelConfig::default();
/// assert_eq!(serial.effective_threads(), 1);
/// let auto = ParallelConfig { threads: 0, ..ParallelConfig::default() };
/// assert!(auto.effective_threads() >= 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for rounding trials and candidate evaluation.
    /// `0` means "use all available cores"; `1` (the default) runs
    /// everything inline.
    pub threads: usize,
    /// Number of independent rounding trials for the MAA stage. `0` (the
    /// default) inherits [`MaaOptions::rounding_repeats`]; any other value
    /// overrides it.
    ///
    /// [`MaaOptions::rounding_repeats`]: crate::MaaOptions::rounding_repeats
    pub trials: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 1,
            trials: 0,
        }
    }
}

impl ParallelConfig {
    /// The actual worker count: `threads`, with `0` resolved to the number
    /// of available cores.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// The rounding-trial count: `trials`, with `0` resolved to
    /// `rounding_repeats`.
    pub fn effective_trials(&self, rounding_repeats: usize) -> usize {
        if self.trials == 0 {
            rounding_repeats
        } else {
            self.trials
        }
    }
}

/// Evaluates `f(0), …, f(n-1)` across up to `threads` workers and returns
/// the results in index order.
///
/// Each index is computed exactly once; work is handed out by an atomic
/// counter, so which *thread* computes which index varies, but the output
/// vector never does. With `threads <= 1` (or a single item) the loop runs
/// inline with no thread or lock overhead.
///
/// # Panics
///
/// Propagates panics from `f`.
pub(crate) fn run_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                // metis-lint: allow(PANIC-01): a poisoned lock means a worker already panicked
                *slots[i].lock().expect("slot lock poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock poisoned") // metis-lint: allow(PANIC-01): poisoned lock means a worker already panicked; the scope loop covers every index
                .expect("every index produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_threaded_agree() {
        let inline = run_indexed(37, 1, |i| i * i);
        for threads in [2, 3, 8] {
            assert_eq!(run_indexed(37, threads, |i| i * i), inline);
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(run_indexed::<usize, _>(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn effective_threads_resolves_zero() {
        let auto = ParallelConfig {
            threads: 0,
            trials: 0,
        };
        assert!(auto.effective_threads() >= 1);
        let fixed = ParallelConfig {
            threads: 5,
            trials: 0,
        };
        assert_eq!(fixed.effective_threads(), 5);
    }

    #[test]
    fn effective_trials_inherits() {
        let inherit = ParallelConfig::default();
        assert_eq!(inherit.effective_trials(4), 4);
        let own = ParallelConfig {
            threads: 1,
            trials: 9,
        };
        assert_eq!(own.effective_trials(4), 9);
    }
}
