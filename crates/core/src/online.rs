//! Online (epoch-based) Metis — an extension beyond the paper.
//!
//! The paper schedules a whole billing cycle's requests offline, noting
//! that providers "could dynamically adjust the bandwidth to purchase and
//! the requests to accept". This module simulates that: requests are
//! revealed in arrival order, grouped into decision epochs by start slot,
//! and each epoch is scheduled by a myopic Metis run that cannot revisit
//! earlier commitments. Comparing [`online_metis`] with the offline
//! [`crate::metis`] quantifies the value of foresight.
//!
//! The per-epoch runs are *conservative*: each prices its own bandwidth
//! as if it were alone on the WAN, while the final bill (peak-based,
//! shared across epochs) can only be lower than the sum of the parts.

use metis_telemetry::{names, Telemetry};
use metis_workload::RequestId;

use crate::error::MetisError;
use crate::faults::FaultPlan;
use crate::framework::{metis_instrumented, note_incident, Incident, MetisConfig};
use crate::instance::SpmInstance;
use crate::schedule::{Evaluation, Schedule};

/// Options for [`online_metis`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnlineOptions {
    /// Number of decision epochs the cycle is cut into (1 = offline).
    pub epochs: usize,
    /// Configuration of each epoch's Metis run.
    pub metis: MetisConfig,
}

impl Default for OnlineOptions {
    fn default() -> Self {
        OnlineOptions {
            epochs: 4,
            metis: MetisConfig::with_theta(4),
        }
    }
}

/// Outcome of one epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: usize,
    /// Requests that arrived in this epoch.
    pub arrived: usize,
    /// How many of them were accepted.
    pub accepted: usize,
    /// Combined profit (true shared billing) after committing this epoch.
    pub profit_so_far: f64,
}

/// Result of an online run.
#[derive(Clone, Debug)]
pub struct OnlineResult {
    /// The combined schedule over the original instance.
    pub schedule: Schedule,
    /// Its evaluation under shared peak billing.
    pub evaluation: Evaluation,
    /// Per-epoch trace.
    pub epochs: Vec<EpochRecord>,
    /// Contained failures across all epochs, in observation order: the
    /// inner runs' incidents plus one [`Incident::EpochSkipped`] per
    /// epoch whose whole run failed.
    pub incidents: Vec<Incident>,
    /// Merged audit outcome: every inner run's report plus a final audit
    /// of the combined schedule against the original instance. `Some`
    /// whenever auditing was active ([`MetisConfig::audit`] on
    /// `options.metis` or `debug_assertions`), `None` otherwise.
    ///
    /// [`MetisConfig::audit`]: crate::MetisConfig::audit
    pub audit: Option<crate::audit::AuditReport>,
}

impl OnlineResult {
    /// Epochs whose whole run failed (their requests were declined).
    pub fn skipped_epochs(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| matches!(i, Incident::EpochSkipped { .. }))
            .count()
    }
}

/// Runs Metis myopically, epoch by epoch.
///
/// Requests are assigned to epoch `⌊start · epochs / T⌋`; each epoch's
/// accept/route decisions are made by a fresh Metis run over only that
/// epoch's requests and are final.
///
/// # Errors
///
/// Returns [`MetisError`] only for malformed instances; solver failures
/// are contained. An epoch whose whole run fails (see
/// [`online_metis_with_faults`]) is skipped — its requests are declined,
/// the remaining epochs proceed — and recorded as
/// [`Incident::EpochSkipped`] in [`OnlineResult::incidents`].
///
/// # Panics
///
/// Panics if `options.epochs == 0`.
///
/// # Examples
///
/// ```
/// use metis_core::{metis, online_metis, MetisConfig, OnlineOptions, SpmInstance};
/// use metis_netsim::topologies;
/// use metis_workload::{generate, WorkloadConfig};
///
/// let topo = topologies::sub_b4();
/// let requests = generate(&topo, &WorkloadConfig::paper(40, 5));
/// let instance = SpmInstance::new(topo, requests, 12, 3);
///
/// let online = online_metis(&instance, &OnlineOptions::default())?;
/// let offline = metis(&instance, &MetisConfig::with_theta(4))?;
/// // Foresight can only help (up to heuristic noise).
/// assert!(online.evaluation.profit <= offline.evaluation.profit + 5.0);
/// # Ok::<(), metis_core::MetisError>(())
/// ```
pub fn online_metis(
    instance: &SpmInstance,
    options: &OnlineOptions,
) -> Result<OnlineResult, MetisError> {
    online_metis_with_faults(instance, options, &FaultPlan::none())
}

/// Runs online Metis under a [`FaultPlan`].
///
/// Epoch faults ([`FaultPlan::fail_epoch`]) kill the matching epoch's
/// whole run, simulating a per-epoch crash or timeout: that epoch's
/// requests stay declined, an [`Incident::EpochSkipped`] is recorded,
/// and every other epoch is unaffected. Solver points of the plan are
/// *not* forwarded to the inner per-epoch runs (attempt indices would be
/// ambiguous across epochs); inner runs still contain their own organic
/// solver failures and surface those incidents here.
///
/// With [`FaultPlan::none`] this is exactly [`online_metis`].
///
/// # Errors
///
/// Same as [`online_metis`].
///
/// # Panics
///
/// Panics if `options.epochs == 0`.
pub fn online_metis_with_faults(
    instance: &SpmInstance,
    options: &OnlineOptions,
    faults: &FaultPlan,
) -> Result<OnlineResult, MetisError> {
    online_metis_instrumented(instance, options, faults, &Telemetry::disabled())
}

/// Runs online Metis under a [`FaultPlan`], recording telemetry into
/// `tele`.
///
/// The whole run executes under the `online` span; each epoch gets an
/// `online.epoch` child span (the inner Metis run's spans nest below
/// it), the per-epoch accepted count and cumulative profit are pushed to
/// the `online.epoch.accepted` / `online.epoch.profit` series, and every
/// skipped epoch is counted in `incident.epoch_skipped` and emitted on
/// the event stream as well as recorded in [`OnlineResult::incidents`].
/// Recording is write-only — passing [`Telemetry::disabled`] (what
/// [`online_metis_with_faults`] does) yields bit-identical results.
///
/// # Errors
///
/// Same as [`online_metis`].
///
/// # Panics
///
/// Panics if `options.epochs == 0`.
pub fn online_metis_instrumented(
    instance: &SpmInstance,
    options: &OnlineOptions,
    faults: &FaultPlan,
    tele: &Telemetry,
) -> Result<OnlineResult, MetisError> {
    assert!(options.epochs >= 1, "need at least one epoch");
    let _online = tele.span(names::SPAN_ONLINE);
    let k = instance.num_requests();
    let slots = instance.num_slots();

    // Group original request indices by epoch.
    let mut per_epoch: Vec<Vec<usize>> = vec![Vec::new(); options.epochs];
    for (i, r) in instance.requests().iter().enumerate() {
        let e = (r.start * options.epochs / slots).min(options.epochs - 1);
        per_epoch[e].push(i);
    }

    let mut combined = Schedule::decline_all(k);
    let mut trace = Vec::with_capacity(options.epochs);
    let mut incidents: Vec<Incident> = Vec::new();
    let auditing = options.metis.audit || cfg!(debug_assertions);
    let mut audit_acc = auditing.then(crate::audit::AuditReport::default);
    for (e, members) in per_epoch.iter().enumerate() {
        let _epoch = tele.span(names::SPAN_EPOCH);
        let mut accepted_here = 0;
        if !members.is_empty() {
            let epoch_run = match faults.epoch_fault(e) {
                Some(error) => Err(MetisError::Solve(error)),
                None => metis_instrumented(
                    &instance.subset(members),
                    &options.metis,
                    &FaultPlan::none(),
                    tele,
                ),
            };
            match epoch_run {
                Ok(result) => {
                    // Inner incidents were already counted and emitted as
                    // events by the inner run; only collect them here.
                    incidents.extend(result.incidents.iter().cloned());
                    if let (Some(acc), Some(inner)) = (audit_acc.as_mut(), result.audit) {
                        acc.merge(inner);
                    }
                    for (local, &original) in members.iter().enumerate() {
                        let choice = result.schedule.path_choice(RequestId(local as u32));
                        if choice.is_some() {
                            accepted_here += 1;
                        }
                        combined.set(RequestId(original as u32), choice);
                    }
                }
                Err(MetisError::Solve(error)) => {
                    // Degrade: this epoch's requests stay declined; the
                    // epochs before and after are untouched.
                    note_incident(
                        tele,
                        &mut incidents,
                        Incident::EpochSkipped {
                            epoch: e,
                            arrived: members.len(),
                            error,
                        },
                    );
                }
                Err(e @ MetisError::Instance(_)) => return Err(e),
            }
        }
        let eval = combined.evaluate(instance);
        tele.push(names::ONLINE_EPOCH_ACCEPTED, accepted_here as f64);
        tele.push(names::ONLINE_EPOCH_PROFIT, eval.profit);
        trace.push(EpochRecord {
            epoch: e,
            arrived: members.len(),
            accepted: accepted_here,
            profit_so_far: eval.profit,
        });
    }

    let evaluation = combined.evaluate(instance);
    if let Some(acc) = audit_acc.as_mut() {
        // The combined schedule's paths and accounting are re-derived
        // against the *original* instance, so the epoch-to-original index
        // mapping above is certified too. Inner runs already recorded
        // their reports; funnel only this outer audit into telemetry so
        // the registry's totals match the merged report.
        let outer = crate::audit::audit_schedule(instance, &combined, &evaluation);
        outer.record(tele);
        acc.merge(outer);
    }
    Ok(OnlineResult {
        schedule: combined,
        evaluation,
        epochs: trace,
        incidents,
        audit: audit_acc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::metis;
    use metis_netsim::topologies;
    use metis_workload::{generate, WorkloadConfig};

    fn instance(k: usize, seed: u64) -> SpmInstance {
        let topo = topologies::b4();
        let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
        SpmInstance::new(topo, requests, 12, 3)
    }

    #[test]
    fn one_epoch_equals_offline() {
        let inst = instance(60, 1);
        let opts = OnlineOptions {
            epochs: 1,
            metis: MetisConfig::with_theta(4),
        };
        let online = online_metis(&inst, &opts).unwrap();
        let offline = metis(&inst, &MetisConfig::with_theta(4)).unwrap();
        assert_eq!(online.schedule, offline.schedule);
        assert_eq!(online.evaluation.profit, offline.evaluation.profit);
    }

    #[test]
    fn every_request_lands_in_exactly_one_epoch() {
        let inst = instance(120, 2);
        let online = online_metis(&inst, &OnlineOptions::default()).unwrap();
        let arrived: usize = online.epochs.iter().map(|e| e.arrived).sum();
        assert_eq!(arrived, 120);
        assert_eq!(online.schedule.len(), 120);
    }

    #[test]
    fn epoch_decisions_only_touch_own_requests() {
        let inst = instance(80, 3);
        let opts = OnlineOptions {
            epochs: 4,
            metis: MetisConfig::with_theta(2),
        };
        let online = online_metis(&inst, &opts).unwrap();
        // Any accepted request routes on one of its own candidate paths.
        for i in 0..80u32 {
            if let Some(j) = online.schedule.path_choice(RequestId(i)) {
                assert!(j < inst.paths(RequestId(i)).len());
            }
        }
        // The per-epoch accepted counts add up to the schedule's.
        let accepted: usize = online.epochs.iter().map(|e| e.accepted).sum();
        assert_eq!(accepted, online.schedule.num_accepted());
    }

    #[test]
    fn profit_trace_is_cumulative() {
        let inst = instance(100, 4);
        let online = online_metis(&inst, &OnlineOptions::default()).unwrap();
        let last = online.epochs.last().unwrap();
        assert!((last.profit_so_far - online.evaluation.profit).abs() < 1e-9);
    }

    #[test]
    fn foresight_usually_wins() {
        // Offline Metis sees everything; at scale it should beat (or tie)
        // the myopic 12-epoch variant.
        let inst = instance(200, 5);
        let offline = metis(&inst, &MetisConfig::with_theta(6)).unwrap();
        let online = online_metis(
            &inst,
            &OnlineOptions {
                epochs: 12,
                metis: MetisConfig::with_theta(6),
            },
        )
        .unwrap();
        assert!(
            offline.evaluation.profit >= online.evaluation.profit * 0.9,
            "offline {} vs online {}",
            offline.evaluation.profit,
            online.evaluation.profit
        );
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_rejected() {
        let inst = instance(5, 6);
        let _ = online_metis(
            &inst,
            &OnlineOptions {
                epochs: 0,
                metis: MetisConfig::default(),
            },
        );
    }
}
