//! Error taxonomy for the Metis pipeline.
//!
//! Two failure families exist:
//!
//! * [`InstanceError`] — the *problem statement* is malformed (invalid
//!   request fields, disconnected endpoints, bad subset indices). These
//!   are caller bugs or bad input data; nothing downstream can recover
//!   from them, so they abort instance construction.
//! * [`metis_lp::SolveError`] — an LP/MILP *solve* broke (numerical
//!   singularity, iteration limits, spurious infeasibility). These are
//!   transient component failures; the framework contains them by
//!   retrying, skipping the affected round or epoch, and recording an
//!   incident (see [`crate::Incident`]) rather than aborting the run.
//!
//! [`MetisError`] is the union the public entry points return.

use std::error::Error;
use std::fmt;

use metis_lp::SolveError;
use metis_netsim::NodeId;
use metis_workload::RequestId;

/// Why an [`crate::SpmInstance`] could not be built.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum InstanceError {
    /// A request failed [`metis_workload::Request::validate`]: equal or
    /// out-of-range endpoints, inverted or out-of-range slots, or a
    /// non-finite / non-positive rate or value. `reason` is the
    /// validator's human-readable description.
    InvalidRequest {
        /// The offending request.
        id: RequestId,
        /// The validator's description of the first problem found.
        reason: String,
    },
    /// A request's endpoints have no connecting path in the topology.
    DisconnectedEndpoints {
        /// The offending request.
        id: RequestId,
        /// Its source data center.
        src: NodeId,
        /// Its destination data center.
        dst: NodeId,
    },
    /// The billing cycle has zero slots.
    NoSlots,
    /// A subset index exceeds the instance's request count.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The number of requests in the instance.
        len: usize,
    },
    /// A subset index appears more than once.
    DuplicateIndex {
        /// The repeated index.
        index: usize,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::InvalidRequest { reason, .. } => {
                write!(f, "invalid request: {reason}")
            }
            InstanceError::DisconnectedEndpoints { id, src, dst } => {
                write!(f, "request {id} endpoints are disconnected ({src} → {dst})")
            }
            InstanceError::NoSlots => f.write_str("need at least one slot"),
            InstanceError::IndexOutOfRange { index, len } => {
                write!(f, "request index {index} out of range ({len} requests)")
            }
            InstanceError::DuplicateIndex { index } => {
                write!(f, "request index {index} repeated")
            }
        }
    }
}

impl Error for InstanceError {}

/// Any failure a Metis entry point ([`crate::metis`],
/// [`crate::online_metis`], and their fault-injecting variants) can
/// surface.
///
/// Solver failures inside the alternation are *contained* — retried,
/// skipped, and recorded as [`crate::Incident`]s — so in practice this
/// error is only returned when containment is impossible: a malformed
/// instance, or a solve failure outside the protected alternation loop.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum MetisError {
    /// An LP/MILP solve failed where no degradation path exists.
    Solve(SolveError),
    /// The problem instance itself is malformed.
    Instance(InstanceError),
}

impl fmt::Display for MetisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetisError::Solve(e) => write!(f, "solver failure: {e}"),
            MetisError::Instance(e) => write!(f, "instance error: {e}"),
        }
    }
}

impl Error for MetisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MetisError::Solve(e) => Some(e),
            MetisError::Instance(e) => Some(e),
        }
    }
}

impl From<SolveError> for MetisError {
    fn from(e: SolveError) -> Self {
        MetisError::Solve(e)
    }
}

impl From<InstanceError> for MetisError {
    fn from(e: InstanceError) -> Self {
        MetisError::Instance(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_keep_legacy_substrings() {
        // The panicking constructor wrappers format these errors; the
        // messages must keep the substrings older callers matched on.
        let invalid = InstanceError::InvalidRequest {
            id: RequestId(3),
            reason: "r3: source equals destination".into(),
        };
        assert!(invalid.to_string().contains("invalid request"));

        let disc = InstanceError::DisconnectedEndpoints {
            id: RequestId(1),
            src: NodeId(0),
            dst: NodeId(2),
        };
        assert!(disc.to_string().contains("endpoints are disconnected"));

        assert!(InstanceError::NoSlots
            .to_string()
            .contains("at least one slot"));
        assert!(InstanceError::IndexOutOfRange { index: 7, len: 3 }
            .to_string()
            .contains("request index 7 out of range"));
        assert!(InstanceError::DuplicateIndex { index: 4 }
            .to_string()
            .contains("request index 4 repeated"));
    }

    #[test]
    fn metis_error_wraps_and_converts() {
        let s: MetisError = SolveError::Singular.into();
        assert_eq!(s, MetisError::Solve(SolveError::Singular));
        assert!(s.to_string().contains("singular"));
        assert!(Error::source(&s).is_some());

        let i: MetisError = InstanceError::NoSlots.into();
        assert!(matches!(i, MetisError::Instance(InstanceError::NoSlots)));
        assert!(i.to_string().contains("instance error"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<MetisError>();
        check::<InstanceError>();
    }
}
