//! Deterministic fault injection for the Metis pipeline.
//!
//! A [`FaultPlan`] forces [`SolveError`]s at chosen points of a run:
//!
//! * **solver points** — the `n`-th attempted MAA or TAA solve of a
//!   [`crate::metis_with_faults`] run fails before the LP is even built,
//!   exactly as if the simplex had broken at that point;
//! * **epoch points** — a whole epoch of
//!   [`crate::online_metis_with_faults`] fails wholesale, as if the
//!   per-epoch run had crashed or timed out.
//!
//! Plans are plain data (no interior mutability, no clocks, no global
//! RNG), so a run under a given plan is exactly as deterministic as a
//! failure-free run: the `tests/faults.rs` suite sweeps every single
//! injection point of a θ=4 run and asserts the framework degrades
//! instead of dying.
//!
//! Solver attempts are counted per phase, 0-based, *including* the cold
//! retries the framework issues after a failed warm-started solve — so a
//! plan that fails attempt `i` but not `i + 1` exercises the
//! warm-retry-then-recover path, and a plan failing both exercises the
//! skip-the-round path.

use std::collections::BTreeMap;

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use metis_lp::SolveError;

use crate::framework::Phase;

/// A deterministic set of forced solver failures.
///
/// # Examples
///
/// ```
/// use metis_core::{FaultPlan, Phase};
/// use metis_lp::SolveError;
///
/// let plan = FaultPlan::none()
///     .fail_at(Phase::Taa, 1)
///     .fail_at_with(Phase::Maa, 0, SolveError::IterationLimit);
/// assert_eq!(plan.solver_fault(Phase::Taa, 1), Some(SolveError::Singular));
/// assert_eq!(
///     plan.solver_fault(Phase::Maa, 0),
///     Some(SolveError::IterationLimit),
/// );
/// assert_eq!(plan.solver_fault(Phase::Maa, 1), None);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    solver: BTreeMap<(Phase, usize), SolveError>,
    epochs: BTreeMap<usize, SolveError>,
}

impl FaultPlan {
    /// The empty plan: nothing fails. Running under it is bit-identical
    /// to not injecting at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.solver.is_empty() && self.epochs.is_empty()
    }

    /// Number of injection points (solver + epoch).
    pub fn len(&self) -> usize {
        self.solver.len() + self.epochs.len()
    }

    /// Fails the `invocation`-th attempted solve of `phase` with the
    /// default error ([`SolveError::Singular`]).
    #[must_use]
    pub fn fail_at(self, phase: Phase, invocation: usize) -> Self {
        self.fail_at_with(phase, invocation, SolveError::Singular)
    }

    /// Fails the `invocation`-th attempted solve of `phase` with `error`.
    #[must_use]
    pub fn fail_at_with(mut self, phase: Phase, invocation: usize, error: SolveError) -> Self {
        self.solver.insert((phase, invocation), error);
        self
    }

    /// Fails epoch `epoch` of an online run wholesale (default error).
    #[must_use]
    pub fn fail_epoch(self, epoch: usize) -> Self {
        self.fail_epoch_with(epoch, SolveError::Singular)
    }

    /// Fails epoch `epoch` of an online run wholesale with `error`.
    #[must_use]
    pub fn fail_epoch_with(mut self, epoch: usize, error: SolveError) -> Self {
        self.epochs.insert(epoch, error);
        self
    }

    /// A seeded random plan: each (phase, attempt) point up to `horizon`
    /// attempts per phase fails independently with probability `p`. The
    /// same seed always produces the same plan.
    pub fn random(seed: u64, p: f64, horizon: usize) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::none();
        for phase in [Phase::Maa, Phase::Taa] {
            for invocation in 0..horizon {
                if rng.gen::<f64>() < p {
                    plan = plan.fail_at(phase, invocation);
                }
            }
        }
        plan
    }

    /// The forced failure for the `invocation`-th attempted solve of
    /// `phase`, if any.
    pub fn solver_fault(&self, phase: Phase, invocation: usize) -> Option<SolveError> {
        self.solver.get(&(phase, invocation)).cloned()
    }

    /// The forced failure for online epoch `epoch`, if any.
    pub fn epoch_fault(&self, epoch: usize) -> Option<SolveError> {
        self.epochs.get(&epoch).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        for inv in 0..10 {
            assert_eq!(plan.solver_fault(Phase::Maa, inv), None);
            assert_eq!(plan.solver_fault(Phase::Taa, inv), None);
            assert_eq!(plan.epoch_fault(inv), None);
        }
    }

    #[test]
    fn points_are_phase_and_index_scoped() {
        let plan = FaultPlan::none().fail_at(Phase::Maa, 2).fail_epoch(1);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.solver_fault(Phase::Maa, 2), Some(SolveError::Singular));
        assert_eq!(plan.solver_fault(Phase::Taa, 2), None);
        assert_eq!(plan.solver_fault(Phase::Maa, 1), None);
        assert_eq!(plan.epoch_fault(1), Some(SolveError::Singular));
        assert_eq!(plan.epoch_fault(0), None);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = FaultPlan::random(9, 0.3, 16);
        let b = FaultPlan::random(9, 0.3, 16);
        let c = FaultPlan::random(10, 0.3, 16);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ at p = 0.3");
        assert!(FaultPlan::random(1, 0.0, 16).is_empty());
        assert_eq!(FaultPlan::random(1, 1.0, 16).len(), 32);
    }

    #[test]
    fn custom_errors_round_trip() {
        let plan = FaultPlan::none()
            .fail_at_with(Phase::Taa, 0, SolveError::Infeasible)
            .fail_epoch_with(3, SolveError::IterationLimit);
        assert_eq!(
            plan.solver_fault(Phase::Taa, 0),
            Some(SolveError::Infeasible)
        );
        assert_eq!(plan.epoch_fault(3), Some(SolveError::IterationLimit));
    }
}
