//! Schedules (accept/decline + path assignment) and their evaluation.

use serde::{Deserialize, Serialize};

use metis_netsim::{LoadMatrix, UtilizationStats};
use metis_workload::RequestId;

use crate::instance::SpmInstance;

/// An accept/decline decision plus path assignment for every request.
///
/// `assignment[i] == Some(j)` routes request `i` over its `j`-th candidate
/// path; `None` declines it. A schedule is only meaningful together with
/// the [`SpmInstance`] it was built for.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    assignment: Vec<Option<u32>>,
}

impl Schedule {
    /// The all-declined schedule for `k` requests.
    pub fn decline_all(k: usize) -> Self {
        Schedule {
            assignment: vec![None; k],
        }
    }

    /// Builds a schedule from raw per-request path choices.
    pub fn from_assignment(assignment: Vec<Option<u32>>) -> Self {
        Schedule { assignment }
    }

    /// Number of requests covered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the schedule covers zero requests.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The path choice for one request (`None` = declined).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn path_choice(&self, id: RequestId) -> Option<usize> {
        self.assignment[id.index()].map(|j| j as usize)
    }

    /// Assigns request `id` to candidate path `j`, or declines it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set(&mut self, id: RequestId, choice: Option<usize>) {
        self.assignment[id.index()] = choice.map(|j| j as u32);
    }

    /// Whether request `id` is accepted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn is_accepted(&self, id: RequestId) -> bool {
        self.assignment[id.index()].is_some()
    }

    /// Number of accepted requests.
    pub fn num_accepted(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// Ids of accepted requests.
    pub fn accepted_ids(&self) -> Vec<RequestId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_some())
            .map(|(i, _)| RequestId(i as u32))
            .collect()
    }

    /// Aggregates the load this schedule places on the WAN.
    ///
    /// # Panics
    ///
    /// Panics if the schedule and instance disagree on the request count
    /// or a path index is out of range.
    pub fn load(&self, instance: &SpmInstance) -> LoadMatrix {
        assert_eq!(
            self.assignment.len(),
            instance.num_requests(),
            "schedule does not match instance"
        );
        let mut load = LoadMatrix::new(instance.topology().num_edges(), instance.num_slots());
        for (i, choice) in self.assignment.iter().enumerate() {
            if let Some(j) = choice {
                let id = RequestId(i as u32);
                let r = instance.request(id);
                let path = &instance.paths(id)[*j as usize];
                for &e in path.edges() {
                    load.add(e, r.start, r.end, r.rate);
                }
            }
        }
        load
    }

    /// Evaluates revenue, cost (peak-based integer charging), and profit.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Schedule::load`].
    pub fn evaluate(&self, instance: &SpmInstance) -> Evaluation {
        let load = self.load(instance);
        // `+ 0.0` normalizes the empty sum's IEEE −0.0 to +0.0.
        let revenue: f64 = self
            .assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_some())
            .map(|(i, _)| instance.requests()[i].value)
            .sum::<f64>()
            + 0.0;
        let charged = load.charged_capacities();
        let cost = load.total_cost(instance.topology());
        let utilization = load.utilization(&charged);
        Evaluation {
            revenue,
            cost,
            profit: revenue - cost,
            accepted: self.num_accepted(),
            charged,
            utilization,
            load,
        }
    }

    /// Checks the link-capacity constraint (2) against explicit per-edge
    /// capacities, e.g. in the bandwidth-limited setting.
    ///
    /// # Errors
    ///
    /// Returns the first violated cell as a [`CapacityViolation`]
    /// carrying `(edge index, slot, load, capacity)`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Schedule::load`], plus a capacity-vector
    /// length mismatch.
    pub fn check_capacities(
        &self,
        instance: &SpmInstance,
        capacities: &[f64],
    ) -> Result<(), CapacityViolation> {
        let load = self.load(instance);
        assert_eq!(
            capacities.len(),
            instance.topology().num_edges(),
            "capacity vector length mismatch"
        );
        for e in instance.topology().edge_ids() {
            for t in 0..instance.num_slots() {
                let l = load.get(e, t);
                if l > capacities[e.index()] + metis_netsim::CEIL_EPS {
                    return Err(CapacityViolation {
                        edge: e.index(),
                        slot: t,
                        load: l,
                        capacity: capacities[e.index()],
                    });
                }
            }
        }
        Ok(())
    }
}

/// A link-capacity violation found by [`Schedule::check_capacities`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CapacityViolation {
    /// Edge index.
    pub edge: usize,
    /// Time slot.
    pub slot: usize,
    /// Offending load (units).
    pub load: f64,
    /// Capacity (units).
    pub capacity: f64,
}

impl std::fmt::Display for CapacityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "edge e{} overloaded at slot {}: {:.4} > {:.4} units",
            self.edge, self.slot, self.load, self.capacity
        )
    }
}

/// Economic outcome of a schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Service revenue `Σ v_i` over accepted requests.
    pub revenue: f64,
    /// Bandwidth cost `Σ u_e · c_e` with `c_e = ⌈peak load⌉`.
    pub cost: f64,
    /// `revenue − cost`.
    pub profit: f64,
    /// Number of accepted requests.
    pub accepted: usize,
    /// Charged units per edge (`c_e`).
    pub charged: Vec<f64>,
    /// Link utilization vs the charged bandwidth.
    pub utilization: UtilizationStats,
    /// The underlying load matrix.
    pub load: LoadMatrix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::topologies;
    use metis_workload::{generate, Request, WorkloadConfig};

    fn small_instance() -> SpmInstance {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(8, 2));
        SpmInstance::new(topo, reqs, 12, 3)
    }

    #[test]
    fn decline_all_is_zero_profit() {
        let inst = small_instance();
        let s = Schedule::decline_all(inst.num_requests());
        let ev = s.evaluate(&inst);
        assert_eq!(ev.revenue, 0.0);
        assert_eq!(ev.cost, 0.0);
        assert_eq!(ev.profit, 0.0);
        assert_eq!(ev.accepted, 0);
        assert!(s.check_capacities(&inst, &[0.0; 14]).is_ok());
    }

    #[test]
    fn single_acceptance_accounting() {
        let inst = small_instance();
        let mut s = Schedule::decline_all(inst.num_requests());
        let id = RequestId(0);
        s.set(id, Some(0));
        assert!(s.is_accepted(id));
        assert_eq!(s.num_accepted(), 1);
        assert_eq!(s.accepted_ids(), vec![id]);

        let r = inst.request(id);
        let path = &inst.paths(id)[0];
        let ev = s.evaluate(&inst);
        assert!((ev.revenue - r.value).abs() < 1e-12);
        // One request of rate < 1 unit charges exactly 1 unit per edge.
        let expected_cost: f64 = path.edges().iter().map(|&e| inst.topology().price(e)).sum();
        assert!((ev.cost - expected_cost).abs() < 1e-12);
        assert!((ev.profit - (ev.revenue - ev.cost)).abs() < 1e-12);
    }

    #[test]
    fn load_matches_manual_accounting() {
        let inst = small_instance();
        let mut s = Schedule::decline_all(inst.num_requests());
        s.set(RequestId(1), Some(0));
        s.set(RequestId(2), Some(1));
        let load = s.load(&inst);
        let mut manual = LoadMatrix::new(inst.topology().num_edges(), 12);
        for (id, j) in [(RequestId(1), 0usize), (RequestId(2), 1usize)] {
            let r = inst.request(id);
            for &e in inst.paths(id)[j].edges() {
                manual.add(e, r.start, r.end, r.rate);
            }
        }
        assert_eq!(load, manual);
    }

    #[test]
    fn capacity_check_detects_violation() {
        let topo = topologies::sub_b4();
        // Two identical whole-cycle requests between the same pair.
        let mk = |id: u32| Request {
            id: metis_workload::RequestId(id),
            src: metis_netsim::NodeId(0),
            dst: metis_netsim::NodeId(1),
            start: 0,
            end: 11,
            rate: 0.6,
            value: 1.0,
        };
        let inst = SpmInstance::new(topo, vec![mk(0), mk(1)], 12, 1);
        let mut s = Schedule::decline_all(2);
        s.set(RequestId(0), Some(0));
        s.set(RequestId(1), Some(0));
        // Combined 1.2 units > capacity 1.0 somewhere on the shared path.
        let caps = vec![1.0; inst.topology().num_edges()];
        let viol = s.check_capacities(&inst, &caps).unwrap_err();
        assert!(viol.load > viol.capacity);
        assert!(viol.to_string().contains("overloaded"));
        // With capacity 2 it fits.
        let caps2 = vec![2.0; inst.topology().num_edges()];
        assert!(s.check_capacities(&inst, &caps2).is_ok());
    }

    #[test]
    fn evaluate_profit_identity_holds() {
        let inst = small_instance();
        let mut s = Schedule::decline_all(inst.num_requests());
        for i in 0..inst.num_requests() {
            s.set(RequestId(i as u32), Some(0));
        }
        let ev = s.evaluate(&inst);
        assert_eq!(ev.accepted, inst.num_requests());
        assert!((ev.profit - (ev.revenue - ev.cost)).abs() < 1e-9);
        assert!((ev.revenue - inst.total_value()).abs() < 1e-9);
        // Charged units cover the peak load on every edge.
        for e in inst.topology().edge_ids() {
            assert!(ev.charged[e.index()] + 1e-9 >= ev.load.peak(e));
        }
    }
}
