//! Chernoff–Hoeffding machinery used by TAA (§IV of the paper).
//!
//! The paper defines, for the sum `I` of independent `[0, 1]` random
//! variables with mean `m`,
//!
//! ```text
//! B(m, δ) = [ e^δ / (1+δ)^(1+δ) ]^m       (upper-tail bound)
//! D(m, x) : the δ with B(m, D(m, x)) = x  (its inverse in δ)
//! ```
//!
//! and picks the probability-scaling factor `μ` as the largest value with
//! `B(μc, (1−μ)/μ) < 1/(T(N+1))`.

/// Natural logarithm of `B(m, δ)`; `m ≥ 0`, `δ ≥ 0`.
///
/// Computed in log space to stay stable for large `δ`.
pub fn ln_chernoff_bound(m: f64, delta: f64) -> f64 {
    debug_assert!(m >= 0.0 && delta >= 0.0);
    if m == 0.0 || delta == 0.0 {
        return 0.0;
    }
    m * (delta - (1.0 + delta) * (1.0 + delta).ln())
}

/// The upper-tail bound `B(m, δ) = Pr[I > (1+δ)m]`-style bound.
pub fn chernoff_bound(m: f64, delta: f64) -> f64 {
    ln_chernoff_bound(m, delta).exp()
}

/// `D(m, x)`: the `δ ≥ 0` with `B(m, δ) = x`, for `x ∈ (0, 1)` and `m > 0`.
///
/// Returns `f64::INFINITY` when `m` is so small that no finite `δ`
/// reaches `x` numerically (the bound still holds vacuously: the caller
/// clamps the resulting guarantee to zero).
pub fn chernoff_delta(m: f64, x: f64) -> f64 {
    assert!((0.0..1.0).contains(&x) && x > 0.0, "x must be in (0,1)");
    if m <= 0.0 {
        return f64::INFINITY;
    }
    let target = x.ln();
    // ln B is 0 at δ=0 and strictly decreasing; expand an upper bracket.
    let mut hi = 1.0;
    while ln_chernoff_bound(m, hi) > target {
        hi *= 2.0;
        if hi > 1e12 {
            return f64::INFINITY;
        }
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if ln_chernoff_bound(m, mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Selects the scaling factor `μ ∈ (0, 1)` per inequality (6): the largest
/// `μ` with `B(μ·c, (1−μ)/μ) < 1 / (T·(N+1))`.
///
/// `c` is the smallest positive (normalized) link capacity, `t_slots` the
/// number of slots, `n_edges` the number of edges. Returns `None` when
/// `c ≤ 0` (no capacity anywhere) or when even a vanishing `μ` violates
/// the inequality (`ln B(μc, (1−μ)/μ) = c(1−μ+ln μ)` stays above the
/// target when `c` is tiny), in which case no `μ` carries the paper's
/// probability guarantee and TAA must fall back to declining the round.
pub fn select_mu(c: f64, t_slots: usize, n_edges: usize) -> Option<f64> {
    if c <= 0.0 {
        return None;
    }
    let target = (1.0 / (t_slots as f64 * (n_edges as f64 + 1.0))).ln();
    let ok = |mu: f64| {
        let delta = (1.0 - mu) / mu;
        ln_chernoff_bound(mu * c, delta) < target
    };
    // B is increasing in μ here (less violation slack as μ→1).
    if ok(1.0 - 1e-9) {
        return Some(1.0 - 1e-9);
    }
    let mut lo = 1e-12;
    if !ok(lo) {
        // Even a vanishing μ fails: capacity is too small relative to the
        // constraint count, so no scaling factor satisfies inequality (6).
        // Returning a bogus tiny μ here would let TAA round with a
        // guarantee it does not have.
        return None;
    }
    let mut hi = 1.0 - 1e-9;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_one_at_zero_delta() {
        assert_eq!(chernoff_bound(5.0, 0.0), 1.0);
        assert_eq!(chernoff_bound(0.0, 3.0), 1.0);
    }

    #[test]
    fn bound_decreases_in_delta_and_m() {
        let b1 = chernoff_bound(2.0, 0.5);
        let b2 = chernoff_bound(2.0, 1.0);
        let b3 = chernoff_bound(4.0, 0.5);
        assert!(b2 < b1 && b1 < 1.0);
        assert!(b3 < b1);
    }

    #[test]
    fn bound_matches_closed_form() {
        // B(m, δ) = (e^δ / (1+δ)^(1+δ))^m, checked directly for m=3, δ=1.
        let direct = (1f64.exp() / 2f64.powf(2.0)).powf(3.0);
        assert!((chernoff_bound(3.0, 1.0) - direct).abs() < 1e-12);
    }

    #[test]
    fn delta_inverts_bound() {
        for &(m, x) in &[(1.0, 0.5), (3.0, 0.1), (10.0, 1e-4), (0.5, 0.9)] {
            let d = chernoff_delta(m, x);
            assert!(d.is_finite());
            assert!(
                (chernoff_bound(m, d) - x).abs() < 1e-9,
                "B({m}, {d}) != {x}"
            );
        }
    }

    #[test]
    fn delta_infinite_for_zero_mean() {
        assert!(chernoff_delta(0.0, 0.5).is_infinite());
    }

    #[test]
    fn mu_satisfies_inequality_six() {
        let (c, t, n) = (10.0, 12, 38);
        let mu = select_mu(c, t, n).unwrap();
        assert!(mu > 0.0 && mu < 1.0);
        let target = 1.0 / (t as f64 * (n as f64 + 1.0));
        assert!(chernoff_bound(mu * c, (1.0 - mu) / mu) < target);
        // Near-maximality: nudging μ up should break the inequality
        // (unless μ is already pinned at its numeric ceiling).
        if mu < 0.999 {
            let worse = (mu + 1e-3).min(1.0 - 1e-12);
            assert!(chernoff_bound(worse * c, (1.0 - worse) / worse) >= target * 0.999);
        }
    }

    #[test]
    fn mu_grows_with_capacity() {
        let small = select_mu(1.0, 12, 38).unwrap();
        let big = select_mu(50.0, 12, 38).unwrap();
        assert!(
            big > small,
            "more capacity allows less scaling: {big} vs {small}"
        );
    }

    #[test]
    fn mu_none_without_capacity() {
        assert!(select_mu(0.0, 12, 38).is_none());
        assert!(select_mu(-1.0, 12, 38).is_none());
    }

    #[test]
    fn mu_none_when_capacity_below_guarantee_threshold() {
        // ln B(μc, (1−μ)/μ) = c(1−μ+ln μ); at μ = 1e-12 that is ≈ −26.6c,
        // and the target for T=12, N=38 is ln(1/468) ≈ −6.15, so c below
        // ≈ 0.231 admits no valid μ at all. The old code returned
        // Some(1e-12) here — a rounding probability with no guarantee.
        assert_eq!(select_mu(0.1, 12, 38), None);
        assert_eq!(select_mu(0.01, 12, 38), None);

        // Just above the threshold a μ exists again, and it satisfies
        // inequality (6) for real.
        let mu = select_mu(0.3, 12, 38).expect("c = 0.3 is above threshold");
        let target = 1.0 / (12.0 * 39.0);
        assert!(chernoff_bound(mu * 0.3, (1.0 - mu) / mu) < target);
    }
}
