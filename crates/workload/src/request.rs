//! The customer request model.

use std::fmt;

use serde::{Deserialize, Serialize};

use metis_netsim::NodeId;

/// Identifier of a request within one workload.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u32);

impl RequestId {
    /// Index of this request.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A bandwidth-reservation request: the paper's six-tuple
/// `{s_i, d_i, ts_i, td_i, r_i, v_i}`.
///
/// The customer asks for `rate` bandwidth units reserved exclusively from
/// `src` to `dst` during every slot in `start..=end`, and bids `value` for
/// it. The provider may decline; if it accepts, the whole rate must be
/// carried on a single path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Identifier (position in the workload).
    pub id: RequestId,
    /// Source data center `s_i`.
    pub src: NodeId,
    /// Destination data center `d_i`.
    pub dst: NodeId,
    /// First active slot `ts_i` (0-based, inclusive).
    pub start: usize,
    /// Last active slot `td_i` (0-based, inclusive).
    pub end: usize,
    /// Required rate `r_i` in bandwidth units (1 unit = 10 Gbps).
    pub rate: f64,
    /// Bid `v_i`: revenue earned if the request is served.
    pub value: f64,
}

impl Request {
    /// Number of slots the request is active (`end − start + 1`).
    pub fn duration(&self) -> usize {
        self.end - self.start + 1
    }

    /// Whether the request is active during `slot`.
    pub fn active_at(&self, slot: usize) -> bool {
        (self.start..=self.end).contains(&slot)
    }

    /// Validates internal consistency against a cycle of `num_slots` slots
    /// and a topology of `num_nodes` data centers.
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self, num_nodes: usize, num_slots: usize) -> Result<(), String> {
        if self.src == self.dst {
            return Err(format!("{}: source equals destination", self.id));
        }
        if self.src.index() >= num_nodes || self.dst.index() >= num_nodes {
            return Err(format!("{}: endpoint out of range", self.id));
        }
        if self.start > self.end {
            return Err(format!("{}: start after end", self.id));
        }
        if self.end >= num_slots {
            return Err(format!("{}: end slot {} out of range", self.id, self.end));
        }
        if !self.rate.is_finite() {
            return Err(format!("{}: non-finite rate {}", self.id, self.rate));
        }
        if self.rate <= 0.0 {
            return Err(format!("{}: non-positive rate {}", self.id, self.rate));
        }
        if !self.value.is_finite() {
            return Err(format!("{}: non-finite value {}", self.id, self.value));
        }
        if self.value < 0.0 {
            return Err(format!("{}: negative value {}", self.id, self.value));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Request {
        Request {
            id: RequestId(3),
            src: NodeId(0),
            dst: NodeId(1),
            start: 2,
            end: 5,
            rate: 0.3,
            value: 1.5,
        }
    }

    #[test]
    fn duration_and_activity() {
        let r = req();
        assert_eq!(r.duration(), 4);
        assert!(r.active_at(2));
        assert!(r.active_at(5));
        assert!(!r.active_at(1));
        assert!(!r.active_at(6));
    }

    #[test]
    fn validation_passes_for_sane_request() {
        assert_eq!(req().validate(6, 12), Ok(()));
    }

    #[test]
    fn validation_catches_problems() {
        let mut r = req();
        r.dst = r.src;
        assert!(r.validate(6, 12).unwrap_err().contains("source equals"));

        let mut r = req();
        r.end = 1;
        assert!(r.validate(6, 12).unwrap_err().contains("start after end"));

        let mut r = req();
        r.end = 12;
        assert!(r.validate(6, 12).unwrap_err().contains("out of range"));

        let mut r = req();
        r.rate = 0.0;
        assert!(r.validate(6, 12).unwrap_err().contains("rate"));

        let mut r = req();
        r.value = f64::NAN;
        assert!(r.validate(6, 12).unwrap_err().contains("value"));

        let mut r = req();
        r.src = NodeId(9);
        assert!(r.validate(6, 12).unwrap_err().contains("endpoint"));
    }

    #[test]
    fn validation_rejects_non_finite_and_negative_numbers() {
        // NaN/±∞ rates and values would otherwise poison `total_value`,
        // profit comparisons, and `min_utilization_edge`'s ordering.
        for bad_rate in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5, 0.0] {
            let mut r = req();
            r.rate = bad_rate;
            assert!(
                r.validate(6, 12).unwrap_err().contains("rate"),
                "rate {bad_rate} must be rejected"
            );
        }
        for bad_value in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let mut r = req();
            r.value = bad_value;
            assert!(
                r.validate(6, 12).unwrap_err().contains("value"),
                "value {bad_value} must be rejected"
            );
        }
        // Zero value is a legal (if pointless) bid.
        let mut r = req();
        r.value = 0.0;
        assert_eq!(r.validate(6, 12), Ok(()));
    }

    #[test]
    fn display() {
        assert_eq!(RequestId(7).to_string(), "r7");
    }
}
