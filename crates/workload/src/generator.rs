//! Synthetic workload generation following §V-A of the paper.
//!
//! * A billing cycle of 12 time slots (months).
//! * Request arrivals follow a Poisson process over the cycle.
//! * Bandwidth requirements are uniform in [0.1, 5] Gbps.
//! * Start and end times fall randomly within the cycle.
//! * Endpoints are distinct, uniformly random data centers.
//! * Values derive from the bandwidth requirement and published provider
//!   prices; a per-request markup factor makes some requests unprofitable,
//!   which is what gives the admission decision teeth.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use metis_netsim::{gbps_to_units, NodeId, PathMetric, Topology};

use crate::request::{Request, RequestId};

/// Default number of time slots per billing cycle (12 months).
pub const DEFAULT_SLOTS: usize = 12;

/// How a request's bid `v_i` is derived.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ValueModel {
    /// `v = rate · (duration / T) · cheapest_path_price(src → dst) · m`,
    /// with the markup `m` uniform in `[low, high]`.
    ///
    /// This mirrors how providers price reserved inter-DC bandwidth: longer
    /// reservations over more expensive routes bid more. With `low < 1`,
    /// a fraction of requests bid below the provider's standalone cost,
    /// so serving *everything* loses money — the regime the paper targets.
    PricedPath {
        /// Lower bound of the markup factor.
        low: f64,
        /// Upper bound of the markup factor.
        high: f64,
    },
    /// `v = rate · duration · per_unit_slot`: a flat tariff per unit of
    /// bandwidth per slot, independent of the route.
    Flat {
        /// Revenue per bandwidth unit per slot.
        per_unit_slot: f64,
    },
}

impl Default for ValueModel {
    fn default() -> Self {
        // Mean markup 2.25 (retail over wholesale) with a tail below
        // break-even: roughly one request in seven bids less than its
        // standalone fractional bandwidth cost, so accepting everything
        // is never optimal, yet lone high bids can still justify buying
        // a full 10 Gbps unit (which greedy baselines rely on).
        ValueModel::PricedPath {
            low: 0.5,
            high: 4.0,
        }
    }
}

/// Configuration for [`generate`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of requests `K` per billing cycle.
    pub num_requests: usize,
    /// Number of time slots `T` per billing cycle.
    pub num_slots: usize,
    /// Bandwidth requirement range in Gbps (uniform), default `[0.1, 5]`.
    pub rate_gbps: (f64, f64),
    /// Bid derivation.
    pub value_model: ValueModel,
    /// RNG seed; the same seed and topology always produce the same
    /// workload.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's §V-A setup with `num_requests = k` and a seed.
    pub fn paper(k: usize, seed: u64) -> Self {
        WorkloadConfig {
            num_requests: k,
            num_slots: DEFAULT_SLOTS,
            rate_gbps: (0.1, 5.0),
            value_model: ValueModel::default(),
            seed,
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::paper(100, 0)
    }
}

/// Generates a deterministic synthetic workload on `topo`.
///
/// Arrival slots come from a Poisson process (exponential inter-arrival
/// times normalized onto the cycle); the end slot is uniform between the
/// start and the end of the cycle.
///
/// # Panics
///
/// Panics if the topology has fewer than two nodes, `num_requests` is 0
/// with `num_slots` 0, or the rate range is invalid.
///
/// # Examples
///
/// ```
/// use metis_netsim::topologies;
/// use metis_workload::{generate, WorkloadConfig};
///
/// let topo = topologies::sub_b4();
/// let reqs = generate(&topo, &WorkloadConfig::paper(50, 7));
/// assert_eq!(reqs.len(), 50);
/// assert_eq!(reqs, generate(&topo, &WorkloadConfig::paper(50, 7)));
/// ```
pub fn generate(topo: &Topology, config: &WorkloadConfig) -> Vec<Request> {
    assert!(topo.num_nodes() >= 2, "need at least two data centers");
    assert!(config.num_slots >= 1, "need at least one time slot");
    let (glo, ghi) = config.rate_gbps;
    assert!(
        glo > 0.0 && ghi >= glo,
        "invalid rate range [{glo}, {ghi}] Gbps"
    );

    let mut rng = ChaCha12Rng::seed_from_u64(config.seed);
    let k = config.num_requests;

    // Poisson arrivals: K exponential gaps normalized onto [0, T).
    let mut arrivals: Vec<f64> = Vec::with_capacity(k);
    let mut acc = 0.0;
    for _ in 0..k {
        // Inverse-CDF exponential sample; (1 − u) avoids ln(0).
        let u: f64 = rng.gen();
        acc += -(1.0 - u).ln();
        arrivals.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    let slots = config.num_slots as f64;

    let node_dist = Uniform::new(0, topo.num_nodes() as u32);
    let rate_dist = Uniform::new_inclusive(glo, ghi);

    // Cheapest-path prices for the PricedPath value model, filled lazily.
    let n = topo.num_nodes();
    let mut min_price: Vec<Option<f64>> = vec![None; n * n];
    let mut price_of = |src: NodeId, dst: NodeId| -> f64 {
        let idx = src.index() * n + dst.index();
        if min_price[idx].is_none() {
            let p = metis_netsim::shortest_path(topo, src, dst, PathMetric::Price)
                .map(|p| p.price(topo))
                .unwrap_or(0.0);
            min_price[idx] = Some(p);
        }
        min_price[idx].unwrap()
    };

    let mut out = Vec::with_capacity(k);
    for (i, &arr) in arrivals.iter().enumerate() {
        let start = (((arr / total) * slots) as usize).min(config.num_slots - 1);
        let end = rng.gen_range(start..config.num_slots);

        let src = NodeId(node_dist.sample(&mut rng));
        let dst = loop {
            let d = NodeId(node_dist.sample(&mut rng));
            if d != src {
                break d;
            }
        };

        let rate = gbps_to_units(rate_dist.sample(&mut rng));
        let duration = (end - start + 1) as f64;
        let value = match config.value_model {
            ValueModel::PricedPath { low, high } => {
                let markup = rng.gen_range(low..=high);
                rate * (duration / slots) * price_of(src, dst) * markup
            }
            ValueModel::Flat { per_unit_slot } => rate * duration * per_unit_slot,
        };

        out.push(Request {
            id: RequestId(i as u32),
            src,
            dst,
            start,
            end,
            rate,
            value,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::topologies;

    #[test]
    fn deterministic_per_seed() {
        let topo = topologies::b4();
        let a = generate(&topo, &WorkloadConfig::paper(200, 42));
        let b = generate(&topo, &WorkloadConfig::paper(200, 42));
        let c = generate(&topo, &WorkloadConfig::paper(200, 43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn all_requests_valid() {
        let topo = topologies::b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(500, 1));
        assert_eq!(reqs.len(), 500);
        for r in &reqs {
            r.validate(topo.num_nodes(), DEFAULT_SLOTS).unwrap();
        }
    }

    #[test]
    fn never_emits_degenerate_fields() {
        // A src == dst request (or a non-finite rate/value) would be
        // rejected at instance-build time, so the generator must never
        // produce one under any seed.
        let topo = topologies::sub_b4();
        for seed in 0..20 {
            for r in generate(&topo, &WorkloadConfig::paper(100, seed)) {
                assert_ne!(r.src, r.dst, "seed {seed}: {} loops", r.id);
                assert!(r.rate.is_finite() && r.rate > 0.0, "seed {seed}");
                assert!(r.value.is_finite() && r.value >= 0.0, "seed {seed}");
            }
        }
    }

    #[test]
    fn rates_within_configured_range() {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(300, 5));
        for r in &reqs {
            let gbps = metis_netsim::units_to_gbps(r.rate);
            assert!((0.1..=5.0).contains(&gbps), "rate {gbps} Gbps out of range");
        }
    }

    #[test]
    fn ids_are_sequential() {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(50, 9));
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id.index(), i);
        }
    }

    #[test]
    fn arrivals_spread_over_cycle() {
        let topo = topologies::b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(600, 11));
        let mut per_slot = [0usize; DEFAULT_SLOTS];
        for r in &reqs {
            per_slot[r.start] += 1;
        }
        let busy = per_slot.iter().filter(|&&c| c > 0).count();
        assert!(busy >= 10, "Poisson arrivals should touch most slots");
    }

    #[test]
    fn priced_path_values_scale_with_route_price() {
        // Requests across expensive (Asia) routes should on average bid
        // more per unit·slot than cheap intra-NA routes.
        let topo = topologies::b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(2000, 3));
        let mut asia = (0.0, 0usize);
        let mut na = (0.0, 0usize);
        for r in &reqs {
            let per = r.value / (r.rate * r.duration() as f64);
            let asia_ep = r.src.index() <= 2 || r.dst.index() <= 2;
            let na_ep = (3..=8).contains(&r.src.index()) && (3..=8).contains(&r.dst.index());
            if asia_ep {
                asia = (asia.0 + per, asia.1 + 1);
            } else if na_ep {
                na = (na.0 + per, na.1 + 1);
            }
        }
        assert!(asia.1 > 0 && na.1 > 0);
        assert!(asia.0 / asia.1 as f64 > na.0 / na.1 as f64);
    }

    #[test]
    fn flat_model_ignores_route() {
        let topo = topologies::sub_b4();
        let mut cfg = WorkloadConfig::paper(100, 8);
        cfg.value_model = ValueModel::Flat { per_unit_slot: 2.0 };
        for r in generate(&topo, &cfg) {
            let expect = r.rate * r.duration() as f64 * 2.0;
            assert!((r.value - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn some_requests_unprofitable_under_default_model() {
        // The admission problem is only interesting if serving everything
        // is not obviously optimal: some markups are below 1.
        let topo = topologies::b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(1000, 2));
        let below = reqs
            .iter()
            .filter(|r| {
                let price = metis_netsim::shortest_path(&topo, r.src, r.dst, PathMetric::Price)
                    .unwrap()
                    .price(&topo);
                r.value < r.rate * (r.duration() as f64 / 12.0) * price
            })
            .count();
        assert!(below > 100, "only {below} of 1000 requests bid below cost");
    }

    #[test]
    #[should_panic(expected = "at least two data centers")]
    fn tiny_topology_rejected() {
        let mut b = Topology::builder();
        b.add_node("only", metis_netsim::Region::Europe);
        let topo = b.build();
        generate(&topo, &WorkloadConfig::paper(1, 0));
    }
}
