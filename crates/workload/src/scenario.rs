//! Versioned scenario files: a declarative description of one experiment.
//!
//! A scenario bundles everything a run needs — the topology, the horizon
//! (slots per billing cycle × number of cycles), the workload generator
//! family with its parameters, and the solver knobs `θ` and path count —
//! into one JSON document under `scenarios/`. The loader is *strict*:
//! unknown fields, missing fields, and out-of-range values are rejected
//! with the exact field path (`workload.diurnal.peak_to_trough: must be
//! at least 1`), so a typo in a scenario file fails loudly instead of
//! silently falling back to a default.
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "version": 1,
//!   "name": "diurnal_b4",
//!   "description": "optional free text",
//!   "topology": "b4",
//!   "horizon": { "slots_per_cycle": 12, "cycles": 2 },
//!   "seed": 7,
//!   "theta": 6,
//!   "paths": 3,
//!   "workload": { "<family>": { ... } }
//! }
//! ```
//!
//! `topology` is a name (`b4`, `sub-b4`, `abilene`, `geant`) or
//! `{"random": {"nodes": N, "extra_links": E, "seed": S}}`. The five
//! workload families are [`uniform`](FamilySpec::Uniform) (the paper's
//! §V-A model), [`geo_locality`](FamilySpec::GeoLocality),
//! [`diurnal`](FamilySpec::Diurnal), [`auction`](FamilySpec::Auction),
//! and [`hose`](FamilySpec::Hose); see each spec type for its fields.
//!
//! Every scenario checked into `scenarios/` is swept by the
//! `tests/scenarios.rs` conformance harness: schema validation, generator
//! invariants, thread/backend determinism, fault injection, audits, and a
//! pinned golden outcome.
//!
//! # Examples
//!
//! ```
//! use metis_workload::scenario::Scenario;
//!
//! let text = r#"{
//!   "version": 1,
//!   "name": "tiny",
//!   "topology": "sub-b4",
//!   "horizon": { "slots_per_cycle": 12, "cycles": 1 },
//!   "seed": 1,
//!   "workload": { "uniform": {
//!     "num_requests": 20,
//!     "rate_gbps": [0.1, 5.0],
//!     "value_model": { "priced_path": { "low": 0.5, "high": 4.0 } }
//!   } }
//! }"#;
//! let scenario = Scenario::from_json_text(text).unwrap();
//! let topo = scenario.build_topology();
//! let requests = scenario.generate(&topo);
//! assert_eq!(requests.len(), 20);
//! ```

use std::fmt;
use std::path::Path;

use metis_netsim::{topologies, Topology};

use crate::families;
use crate::generator::{generate as generate_uniform, ValueModel, WorkloadConfig};
use crate::json::Json;
use crate::request::Request;

/// The scenario schema version this build reads and writes.
///
/// Bump only with a migration note in DESIGN.md; the loader rejects every
/// other version so old binaries never misread new fields.
pub const SCENARIO_VERSION: u64 = 1;

/// Hard cap on `horizon.slots_per_cycle × horizon.cycles`: beyond this the
/// BL-SPM LP is too large for any interactive or CI use.
pub const MAX_HORIZON_SLOTS: usize = 10_000;

/// A malformed scenario document: the offending field and what is wrong
/// with it.
///
/// `path` is dotted from the document root (`workload.diurnal.burst.prob`)
/// with `[i]` segments for array elements; the root itself is `scenario`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError {
    /// Dotted path of the offending field from the document root.
    pub path: String,
    /// What is wrong at that path.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for ScenarioError {}

/// Which WAN a scenario runs on.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySpec {
    /// Google's B4 (12 DCs, 19 links).
    B4,
    /// The paper's SUB-B4 subset.
    SubB4,
    /// The Abilene research network.
    Abilene,
    /// The GÉANT pan-European network.
    Geant,
    /// A seeded random WAN (ring + chords), deterministic per spec.
    Random {
        /// Number of data centers (≥ 3).
        nodes: u32,
        /// Random chords added on top of the connectivity ring.
        extra_links: usize,
        /// Seed for the chord placement.
        seed: u64,
    },
}

impl TopologySpec {
    /// Builds the topology this spec describes.
    pub fn build(&self) -> Topology {
        match self {
            TopologySpec::B4 => topologies::b4(),
            TopologySpec::SubB4 => topologies::sub_b4(),
            TopologySpec::Abilene => topologies::abilene(),
            TopologySpec::Geant => topologies::geant(),
            TopologySpec::Random {
                nodes,
                extra_links,
                seed,
            } => topologies::random_wan(*nodes, *extra_links, *seed),
        }
    }

    /// Short human-readable label (`b4`, `random(10,6,42)`, …).
    pub fn label(&self) -> String {
        match self {
            TopologySpec::B4 => "b4".into(),
            TopologySpec::SubB4 => "sub-b4".into(),
            TopologySpec::Abilene => "abilene".into(),
            TopologySpec::Geant => "geant".into(),
            TopologySpec::Random {
                nodes,
                extra_links,
                seed,
            } => format!("random({nodes},{extra_links},{seed})"),
        }
    }

    /// Parses a bare topology name.
    pub fn parse_name(name: &str) -> Option<TopologySpec> {
        match name {
            "b4" => Some(TopologySpec::B4),
            "sub-b4" | "sub_b4" => Some(TopologySpec::SubB4),
            "abilene" => Some(TopologySpec::Abilene),
            "geant" => Some(TopologySpec::Geant),
            _ => None,
        }
    }
}

/// The time axis of a scenario: `cycles` repetitions of a billing cycle
/// of `slots_per_cycle` slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Horizon {
    /// Slots per billing cycle (the paper uses 12).
    pub slots_per_cycle: usize,
    /// Number of consecutive cycles in the horizon.
    pub cycles: usize,
}

impl Horizon {
    /// Total number of slots, `slots_per_cycle × cycles`.
    pub fn num_slots(&self) -> usize {
        self.slots_per_cycle * self.cycles
    }
}

/// The paper's §V-A workload: Poisson arrivals, uniform endpoints,
/// uniform rates, route-priced bids.
#[derive(Clone, Debug, PartialEq)]
pub struct UniformSpec {
    /// Number of requests `K` over the horizon.
    pub num_requests: usize,
    /// Bandwidth requirement range in Gbps (uniform).
    pub rate_gbps: (f64, f64),
    /// Bid derivation.
    pub value_model: ValueModel,
}

/// Population-weighted geo-distributed demand with a tunable locality
/// factor.
///
/// Endpoints are drawn by *population* (explicit per-DC weights, or node
/// degree when omitted — better-connected DCs serve more demand), and the
/// destination is additionally biased toward the source by `locality`:
/// destination weight is `pop(d) · ((1 − locality) + locality · 2^{1−hops(s,d)})`,
/// so `0.0` is pure population gravity and `1.0` halves the weight per
/// extra hop from the source.
#[derive(Clone, Debug, PartialEq)]
pub struct GeoLocalitySpec {
    /// Number of requests `K` over the horizon.
    pub num_requests: usize,
    /// Bandwidth requirement range in Gbps (uniform).
    pub rate_gbps: (f64, f64),
    /// Bid derivation.
    pub value_model: ValueModel,
    /// Locality factor in `[0, 1]`: 0 = population gravity only,
    /// 1 = strong preference for nearby destinations.
    pub locality: f64,
    /// Optional explicit per-DC demand weights (must match the topology's
    /// node count); defaults to node degree.
    pub populations: Option<Vec<f64>>,
}

/// A short demand burst multiplying some slots' arrival intensity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstSpec {
    /// Per-slot probability of a burst (seeded, in `[0, 1]`).
    pub prob: f64,
    /// Intensity multiplier applied to burst slots (≥ 1).
    pub multiplier: f64,
}

/// Diurnal (and optionally bursty) arrivals over a multi-cycle horizon.
///
/// Arrival intensity over each cycle follows a raised cosine peaking at
/// `peak_slot` with peak-to-trough ratio `peak_to_trough`; a seeded burst
/// mask can further multiply individual slots. Conditional on the total
/// request count, non-homogeneous Poisson arrival times are i.i.d. with
/// density proportional to the intensity, which is exactly how slots are
/// sampled here.
#[derive(Clone, Debug, PartialEq)]
pub struct DiurnalSpec {
    /// Number of requests `K` over the whole horizon.
    pub num_requests: usize,
    /// Bandwidth requirement range in Gbps (uniform).
    pub rate_gbps: (f64, f64),
    /// Bid derivation.
    pub value_model: ValueModel,
    /// Ratio of peak to trough arrival intensity (≥ 1).
    pub peak_to_trough: f64,
    /// Cycle slot of peak intensity (`< slots_per_cycle`).
    pub peak_slot: usize,
    /// Optional burst model layered on the diurnal curve.
    pub burst: Option<BurstSpec>,
    /// Longest reservation in slots (default: one cycle).
    pub max_duration_slots: Option<usize>,
}

/// Auction-style workload: `v_i` is a *strategic bid*, following the
/// truthful (1−ε)-optimal mechanism of Zhang et al. (PAPERS.md).
///
/// Every bidder has a true valuation `v = rate · (duration/cycle) ·
/// cheapest_path_price · markup`. Under a (1−ε)-optimal truthful
/// mechanism, truthful reporting is dominant up to the ε slack, so a
/// `strategic_fraction` of bidders shade their bid to `v · (1 − u·ε)`
/// with `u ~ U[0,1]` (attempting to free-ride the slack) while the rest
/// bid truthfully. The emitted request value is the *bid*.
#[derive(Clone, Debug, PartialEq)]
pub struct AuctionSpec {
    /// Number of requests `K` over the horizon.
    pub num_requests: usize,
    /// Bandwidth requirement range in Gbps (uniform).
    pub rate_gbps: (f64, f64),
    /// True-valuation markup range over the cheapest-path price.
    pub markup: (f64, f64),
    /// The mechanism's optimality slack ε, strictly between 0 and 1.
    pub epsilon: f64,
    /// Fraction of bidders that shade their bid, in `[0, 1]`.
    pub strategic_fraction: f64,
}

/// Hose-model virtual-cluster requests per Ludwig et al. (PAPERS.md).
///
/// Each cluster picks `endpoints` distinct DCs and a shared time window;
/// the member with the smallest total hop distance to the others becomes
/// the hub (the "virtual switch" of the hose model), and every other
/// member contributes an uplink *and* a downlink request to/from the hub
/// at its hose rate. This stresses the path-assignment layer with many
/// correlated src→dst pairs instead of independent point-to-point flows.
#[derive(Clone, Debug, PartialEq)]
pub struct HoseSpec {
    /// Number of virtual clusters.
    pub clusters: usize,
    /// Endpoints per cluster, uniform in `[min, max]` (min ≥ 2, max ≤
    /// the topology's node count).
    pub endpoints: (usize, usize),
    /// Per-member hose bandwidth range in Gbps (uniform).
    pub hose_gbps: (f64, f64),
    /// Flat tariff: revenue per bandwidth unit per slot.
    pub per_unit_slot: f64,
    /// Cluster-level markup range multiplying every member's bid.
    pub markup: (f64, f64),
    /// Longest cluster window in slots (default: one cycle).
    pub max_duration_slots: Option<usize>,
}

/// One workload generator family with its parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum FamilySpec {
    /// The paper's §V-A model ([`UniformSpec`]).
    Uniform(UniformSpec),
    /// Population-weighted geo demand ([`GeoLocalitySpec`]).
    GeoLocality(GeoLocalitySpec),
    /// Diurnal/bursty arrivals ([`DiurnalSpec`]).
    Diurnal(DiurnalSpec),
    /// Strategic-bid auction workload ([`AuctionSpec`]).
    Auction(AuctionSpec),
    /// Hose-model virtual clusters ([`HoseSpec`]).
    Hose(HoseSpec),
}

impl FamilySpec {
    /// The family's schema tag (`uniform`, `geo_locality`, …).
    pub fn family(&self) -> &'static str {
        match self {
            FamilySpec::Uniform(_) => "uniform",
            FamilySpec::GeoLocality(_) => "geo_locality",
            FamilySpec::Diurnal(_) => "diurnal",
            FamilySpec::Auction(_) => "auction",
            FamilySpec::Hose(_) => "hose",
        }
    }

    /// The configured rate range in Gbps every emitted request must
    /// respect (hose clusters draw per-member hose rates).
    pub fn rate_range_gbps(&self) -> (f64, f64) {
        match self {
            FamilySpec::Uniform(s) => s.rate_gbps,
            FamilySpec::GeoLocality(s) => s.rate_gbps,
            FamilySpec::Diurnal(s) => s.rate_gbps,
            FamilySpec::Auction(s) => s.rate_gbps,
            FamilySpec::Hose(s) => s.hose_gbps,
        }
    }
}

/// A fully validated scenario document.
///
/// Construct with [`Scenario::load`] / [`Scenario::from_json_text`] (both
/// validate), or directly field-by-field in tests. Same scenario + same
/// seed ⇒ bit-identical request stream, on any host.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Schema version; always [`SCENARIO_VERSION`] after loading.
    pub version: u64,
    /// Machine-readable name (`[a-z0-9_-]+`); conformance requires it to
    /// match the file stem.
    pub name: String,
    /// Optional free-text description.
    pub description: Option<String>,
    /// The WAN to run on.
    pub topology: TopologySpec,
    /// The time axis.
    pub horizon: Horizon,
    /// Master RNG seed for workload generation.
    pub seed: u64,
    /// Alternation rounds `θ` for the solver.
    pub theta: usize,
    /// Candidate paths per request.
    pub paths: usize,
    /// The workload generator family.
    pub workload: FamilySpec,
}

impl Scenario {
    /// Loads and validates a scenario file.
    pub fn load(path: impl AsRef<Path>) -> Result<Scenario, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError {
            path: "scenario".into(),
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Scenario::from_json_text(&text)
    }

    /// Parses and validates a scenario document from JSON text.
    pub fn from_json_text(text: &str) -> Result<Scenario, ScenarioError> {
        let v = Json::parse(text).map_err(|e| ScenarioError {
            path: "scenario".into(),
            message: format!("invalid JSON: {e}"),
        })?;
        Scenario::from_json(&v)
    }

    /// Parses and validates a scenario document from a parsed JSON value.
    pub fn from_json(v: &Json) -> Result<Scenario, ScenarioError> {
        parse_scenario(v)
    }

    /// Total number of slots in the horizon.
    pub fn num_slots(&self) -> usize {
        self.horizon.num_slots()
    }

    /// Builds the scenario's topology.
    pub fn build_topology(&self) -> Topology {
        self.topology.build()
    }

    /// The workload family tag.
    pub fn family(&self) -> &'static str {
        self.workload.family()
    }

    /// Generates the scenario's request stream on `topo`.
    ///
    /// Deterministic: the same scenario and topology always produce the
    /// same requests, bit for bit. Requests come out sorted by start slot
    /// with sequential ids.
    ///
    /// # Panics
    ///
    /// Panics if `topo` is inconsistent with the spec (fewer than two
    /// nodes, or an explicit population table of the wrong length) — the
    /// loader's cross-validation rules out both for loaded scenarios.
    pub fn generate(&self, topo: &Topology) -> Vec<Request> {
        match &self.workload {
            FamilySpec::Uniform(spec) => generate_uniform(
                topo,
                &WorkloadConfig {
                    num_requests: spec.num_requests,
                    num_slots: self.horizon.num_slots(),
                    rate_gbps: spec.rate_gbps,
                    value_model: spec.value_model,
                    seed: self.seed,
                },
            ),
            FamilySpec::GeoLocality(spec) => {
                families::geo::generate(topo, &self.horizon, self.seed, spec)
            }
            FamilySpec::Diurnal(spec) => {
                families::diurnal::generate(topo, &self.horizon, self.seed, spec)
            }
            FamilySpec::Auction(spec) => {
                families::auction::generate(topo, &self.horizon, self.seed, spec)
            }
            FamilySpec::Hose(spec) => {
                families::hose::generate(topo, &self.horizon, self.seed, spec)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strict parsing with field-path errors.

/// A JSON node plus its dotted path from the document root, so every
/// error names exactly the field it is about.
struct Ctx<'a> {
    path: String,
    v: &'a Json,
}

impl<'a> Ctx<'a> {
    fn root(v: &'a Json) -> Ctx<'a> {
        Ctx {
            path: "scenario".into(),
            v,
        }
    }

    fn child(&self, key: &str, v: &'a Json) -> Ctx<'a> {
        Ctx {
            path: format!("{}.{key}", self.path),
            v,
        }
    }

    fn index(&self, i: usize, v: &'a Json) -> Ctx<'a> {
        Ctx {
            path: format!("{}[{i}]", self.path),
            v,
        }
    }

    fn err(&self, message: impl Into<String>) -> ScenarioError {
        ScenarioError {
            path: self.path.clone(),
            message: message.into(),
        }
    }

    /// Error about a *missing or unknown* field under this object.
    fn field_err(&self, key: &str, message: impl Into<String>) -> ScenarioError {
        ScenarioError {
            path: format!("{}.{key}", self.path),
            message: message.into(),
        }
    }

    fn obj(&self) -> Result<&'a [(String, Json)], ScenarioError> {
        self.v.as_obj().ok_or_else(|| self.err("must be an object"))
    }

    fn str(&self) -> Result<&'a str, ScenarioError> {
        self.v.as_str().ok_or_else(|| self.err("must be a string"))
    }

    fn f64(&self) -> Result<f64, ScenarioError> {
        let n = self
            .v
            .as_f64()
            .ok_or_else(|| self.err("must be a number"))?;
        if !n.is_finite() {
            return Err(self.err("must be a finite number"));
        }
        Ok(n)
    }

    fn u64(&self) -> Result<u64, ScenarioError> {
        self.v
            .as_u64()
            .ok_or_else(|| self.err("must be a non-negative integer"))
    }

    fn usize(&self) -> Result<usize, ScenarioError> {
        Ok(self.u64()? as usize)
    }

    /// A two-element `[low, high]` number array.
    fn range(&self) -> Result<(f64, f64), ScenarioError> {
        let items = self
            .v
            .as_arr()
            .ok_or_else(|| self.err("must be a [low, high] array"))?;
        if items.len() != 2 {
            return Err(self.err(format!(
                "must have exactly two entries, found {}",
                items.len()
            )));
        }
        let lo = self.index(0, &items[0]).f64()?;
        let hi = self.index(1, &items[1]).f64()?;
        if lo > hi {
            return Err(self.err(format!(
                "bounds must satisfy low <= high, found [{lo}, {hi}]"
            )));
        }
        Ok((lo, hi))
    }

    /// A `[low, high]` range that must be strictly positive.
    fn positive_range(&self) -> Result<(f64, f64), ScenarioError> {
        let (lo, hi) = self.range()?;
        if lo <= 0.0 {
            return Err(self.err(format!("low bound must be positive, found {lo}")));
        }
        Ok((lo, hi))
    }

    fn unit_interval(&self) -> Result<f64, ScenarioError> {
        let x = self.f64()?;
        if !(0.0..=1.0).contains(&x) {
            return Err(self.err(format!("must be within [0, 1], found {x}")));
        }
        Ok(x)
    }
}

/// Walks an object's fields strictly: every field must be consumed by
/// `visit`, which returns `false` for keys it does not recognize.
fn walk_obj<'a>(
    ctx: &Ctx<'a>,
    known: &[&str],
    mut visit: impl FnMut(&str, Ctx<'a>) -> Result<bool, ScenarioError>,
) -> Result<(), ScenarioError> {
    for (key, value) in ctx.obj()? {
        if !visit(key, ctx.child(key, value))? {
            return Err(ctx.field_err(
                key,
                format!("unknown field (known fields: {})", known.join(", ")),
            ));
        }
    }
    Ok(())
}

fn parse_scenario(v: &Json) -> Result<Scenario, ScenarioError> {
    let ctx = Ctx::root(v);
    const KNOWN: &[&str] = &[
        "version",
        "name",
        "description",
        "topology",
        "horizon",
        "seed",
        "theta",
        "paths",
        "workload",
    ];

    let mut version = None;
    let mut name = None;
    let mut description = None;
    let mut topology = None;
    let mut horizon = None;
    let mut seed = None;
    let mut theta = 8usize;
    let mut paths = 3usize;
    let mut workload = None;

    walk_obj(&ctx, KNOWN, |key, c| {
        match key {
            "version" => version = Some(c.u64()?),
            "name" => {
                let s = c.str()?;
                let ok = !s.is_empty()
                    && s.bytes().all(|b| {
                        b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-'
                    });
                if !ok {
                    return Err(c.err(format!("must match [a-z0-9_-]+, found `{s}`")));
                }
                name = Some(s.to_string());
            }
            "description" => description = Some(c.str()?.to_string()),
            "topology" => topology = Some(parse_topology(&c)?),
            "horizon" => horizon = Some(parse_horizon(&c)?),
            "seed" => seed = Some(c.u64()?),
            "theta" => theta = c.usize()?,
            "paths" => {
                paths = c.usize()?;
                if paths == 0 {
                    return Err(c.err("must be at least 1"));
                }
            }
            "workload" => workload = Some(c),
            _ => return Ok(false),
        }
        Ok(true)
    })?;

    let version = version.ok_or_else(|| ctx.field_err("version", "missing required field"))?;
    if version != SCENARIO_VERSION {
        return Err(ctx.field_err(
            "version",
            format!(
                "unsupported schema version {version} (this build supports {SCENARIO_VERSION})"
            ),
        ));
    }
    let name = name.ok_or_else(|| ctx.field_err("name", "missing required field"))?;
    let topology = topology.ok_or_else(|| ctx.field_err("topology", "missing required field"))?;
    let horizon = horizon.ok_or_else(|| ctx.field_err("horizon", "missing required field"))?;
    let seed = seed.ok_or_else(|| ctx.field_err("seed", "missing required field"))?;
    let workload_ctx =
        workload.ok_or_else(|| ctx.field_err("workload", "missing required field"))?;
    let workload = parse_family(&workload_ctx, &horizon)?;

    let scenario = Scenario {
        version,
        name,
        description,
        topology,
        horizon,
        seed,
        theta,
        paths,
        workload,
    };
    cross_validate(&scenario, &workload_ctx)?;
    Ok(scenario)
}

/// Checks that depend on more than one field (topology × workload,
/// horizon × workload).
fn cross_validate(s: &Scenario, workload_ctx: &Ctx<'_>) -> Result<(), ScenarioError> {
    let num_nodes = match &s.topology {
        TopologySpec::Random { nodes, .. } => *nodes as usize,
        named => named.build().num_nodes(),
    };
    let fam = s.workload.family();
    let fctx = |field: &str| format!("{}.{fam}.{field}", workload_ctx.path);
    match &s.workload {
        FamilySpec::GeoLocality(spec) => {
            if let Some(pop) = &spec.populations {
                if pop.len() != num_nodes {
                    return Err(ScenarioError {
                        path: fctx("populations"),
                        message: format!(
                            "must have one weight per data center ({num_nodes}), found {}",
                            pop.len()
                        ),
                    });
                }
            }
        }
        FamilySpec::Diurnal(spec) => {
            if spec.peak_slot >= s.horizon.slots_per_cycle {
                return Err(ScenarioError {
                    path: fctx("peak_slot"),
                    message: format!(
                        "must be below horizon.slots_per_cycle ({}), found {}",
                        s.horizon.slots_per_cycle, spec.peak_slot
                    ),
                });
            }
            if let Some(d) = spec.max_duration_slots {
                if d > s.horizon.num_slots() {
                    return Err(ScenarioError {
                        path: fctx("max_duration_slots"),
                        message: format!(
                            "must not exceed the horizon ({} slots), found {d}",
                            s.horizon.num_slots()
                        ),
                    });
                }
            }
        }
        FamilySpec::Hose(spec) => {
            if spec.endpoints.1 > num_nodes {
                return Err(ScenarioError {
                    path: fctx("endpoints"),
                    message: format!(
                        "cluster may not exceed the topology's {num_nodes} data centers, found max {}",
                        spec.endpoints.1
                    ),
                });
            }
            if let Some(d) = spec.max_duration_slots {
                if d > s.horizon.num_slots() {
                    return Err(ScenarioError {
                        path: fctx("max_duration_slots"),
                        message: format!(
                            "must not exceed the horizon ({} slots), found {d}",
                            s.horizon.num_slots()
                        ),
                    });
                }
            }
        }
        FamilySpec::Uniform(_) | FamilySpec::Auction(_) => {}
    }
    Ok(())
}

fn parse_topology(ctx: &Ctx<'_>) -> Result<TopologySpec, ScenarioError> {
    if let Some(name) = ctx.v.as_str() {
        return TopologySpec::parse_name(name).ok_or_else(|| {
            ctx.err(format!(
                "unknown topology `{name}` (known: b4, sub-b4, abilene, geant)"
            ))
        });
    }
    let fields = ctx
        .v
        .as_obj()
        .ok_or_else(|| ctx.err("must be a topology name or a {\"random\": {...}} object"))?;
    let [(tag, body)] = fields else {
        return Err(ctx.err("must have exactly one variant key"));
    };
    if tag != "random" {
        return Err(ctx.err(format!("unknown topology variant `{tag}` (known: random)")));
    }
    let rctx = ctx.child("random", body);
    let (mut nodes, mut extra_links, mut seed) = (None, None, None);
    walk_obj(&rctx, &["nodes", "extra_links", "seed"], |key, c| {
        match key {
            "nodes" => {
                let n = c.u64()?;
                if n < 3 {
                    return Err(c.err(format!("need at least three nodes, found {n}")));
                }
                nodes = Some(n as u32);
            }
            "extra_links" => extra_links = Some(c.usize()?),
            "seed" => seed = Some(c.u64()?),
            _ => return Ok(false),
        }
        Ok(true)
    })?;
    Ok(TopologySpec::Random {
        nodes: nodes.ok_or_else(|| rctx.field_err("nodes", "missing required field"))?,
        extra_links: extra_links
            .ok_or_else(|| rctx.field_err("extra_links", "missing required field"))?,
        seed: seed.ok_or_else(|| rctx.field_err("seed", "missing required field"))?,
    })
}

fn parse_horizon(ctx: &Ctx<'_>) -> Result<Horizon, ScenarioError> {
    let (mut spc, mut cycles) = (None, None);
    walk_obj(ctx, &["slots_per_cycle", "cycles"], |key, c| {
        match key {
            "slots_per_cycle" => {
                let n = c.usize()?;
                if n == 0 {
                    return Err(c.err("must be at least 1"));
                }
                spc = Some(n);
            }
            "cycles" => {
                let n = c.usize()?;
                if n == 0 {
                    return Err(c.err("must be at least 1"));
                }
                cycles = Some(n);
            }
            _ => return Ok(false),
        }
        Ok(true)
    })?;
    let horizon = Horizon {
        slots_per_cycle: spc
            .ok_or_else(|| ctx.field_err("slots_per_cycle", "missing required field"))?,
        cycles: cycles.ok_or_else(|| ctx.field_err("cycles", "missing required field"))?,
    };
    if horizon.num_slots() > MAX_HORIZON_SLOTS {
        return Err(ctx.err(format!(
            "horizon of {} slots is too large (max {MAX_HORIZON_SLOTS})",
            horizon.num_slots()
        )));
    }
    Ok(horizon)
}

fn parse_value_model(ctx: &Ctx<'_>) -> Result<ValueModel, ScenarioError> {
    let fields = ctx.obj()?;
    let [(tag, body)] = fields else {
        return Err(ctx.err("must have exactly one variant key (known: priced_path, flat)"));
    };
    let bctx = ctx.child(tag, body);
    match tag.as_str() {
        "priced_path" => {
            let (mut low, mut high) = (None, None);
            walk_obj(&bctx, &["low", "high"], |key, c| {
                match key {
                    "low" => low = Some(c.f64()?),
                    "high" => high = Some(c.f64()?),
                    _ => return Ok(false),
                }
                Ok(true)
            })?;
            let low = low.ok_or_else(|| bctx.field_err("low", "missing required field"))?;
            let high = high.ok_or_else(|| bctx.field_err("high", "missing required field"))?;
            if low < 0.0 || low > high {
                return Err(bctx.err(format!(
                    "markup bounds must satisfy 0 <= low <= high, found [{low}, {high}]"
                )));
            }
            Ok(ValueModel::PricedPath { low, high })
        }
        "flat" => {
            let mut per = None;
            walk_obj(&bctx, &["per_unit_slot"], |key, c| {
                match key {
                    "per_unit_slot" => {
                        let p = c.f64()?;
                        if p < 0.0 {
                            return Err(c.err(format!("must be non-negative, found {p}")));
                        }
                        per = Some(p);
                    }
                    _ => return Ok(false),
                }
                Ok(true)
            })?;
            Ok(ValueModel::Flat {
                per_unit_slot: per
                    .ok_or_else(|| bctx.field_err("per_unit_slot", "missing required field"))?,
            })
        }
        other => Err(ctx.err(format!(
            "unknown value_model `{other}` (known: priced_path, flat)"
        ))),
    }
}

fn parse_family(ctx: &Ctx<'_>, horizon: &Horizon) -> Result<FamilySpec, ScenarioError> {
    let fields = ctx.obj()?;
    let [(tag, body)] = fields else {
        return Err(ctx.err(
            "must have exactly one family key (known: uniform, geo_locality, diurnal, auction, hose)",
        ));
    };
    let fctx = ctx.child(tag, body);
    match tag.as_str() {
        "uniform" => parse_uniform(&fctx).map(FamilySpec::Uniform),
        "geo_locality" => parse_geo(&fctx).map(FamilySpec::GeoLocality),
        "diurnal" => parse_diurnal(&fctx, horizon).map(FamilySpec::Diurnal),
        "auction" => parse_auction(&fctx).map(FamilySpec::Auction),
        "hose" => parse_hose(&fctx).map(FamilySpec::Hose),
        other => Err(ctx.err(format!(
            "unknown workload family `{other}` (known: uniform, geo_locality, diurnal, auction, hose)"
        ))),
    }
}

fn require_requests(ctx: &Ctx<'_>, k: Option<usize>) -> Result<usize, ScenarioError> {
    let k = k.ok_or_else(|| ctx.field_err("num_requests", "missing required field"))?;
    if k == 0 {
        return Err(ctx.field_err("num_requests", "must be at least 1"));
    }
    Ok(k)
}

fn parse_uniform(ctx: &Ctx<'_>) -> Result<UniformSpec, ScenarioError> {
    let (mut k, mut rate, mut vm) = (None, None, None);
    walk_obj(
        ctx,
        &["num_requests", "rate_gbps", "value_model"],
        |key, c| {
            match key {
                "num_requests" => k = Some(c.usize()?),
                "rate_gbps" => rate = Some(c.positive_range()?),
                "value_model" => vm = Some(parse_value_model(&c)?),
                _ => return Ok(false),
            }
            Ok(true)
        },
    )?;
    Ok(UniformSpec {
        num_requests: require_requests(ctx, k)?,
        rate_gbps: rate.ok_or_else(|| ctx.field_err("rate_gbps", "missing required field"))?,
        value_model: vm.ok_or_else(|| ctx.field_err("value_model", "missing required field"))?,
    })
}

fn parse_geo(ctx: &Ctx<'_>) -> Result<GeoLocalitySpec, ScenarioError> {
    let (mut k, mut rate, mut vm, mut locality, mut populations) = (None, None, None, None, None);
    walk_obj(
        ctx,
        &[
            "num_requests",
            "rate_gbps",
            "value_model",
            "locality",
            "populations",
        ],
        |key, c| {
            match key {
                "num_requests" => k = Some(c.usize()?),
                "rate_gbps" => rate = Some(c.positive_range()?),
                "value_model" => vm = Some(parse_value_model(&c)?),
                "locality" => locality = Some(c.unit_interval()?),
                "populations" => {
                    let items = c.v.as_arr().ok_or_else(|| c.err("must be an array"))?;
                    let mut pop = Vec::with_capacity(items.len());
                    for (i, item) in items.iter().enumerate() {
                        let ic = c.index(i, item);
                        let w = ic.f64()?;
                        if w <= 0.0 {
                            return Err(ic.err(format!("weights must be positive, found {w}")));
                        }
                        pop.push(w);
                    }
                    populations = Some(pop);
                }
                _ => return Ok(false),
            }
            Ok(true)
        },
    )?;
    Ok(GeoLocalitySpec {
        num_requests: require_requests(ctx, k)?,
        rate_gbps: rate.ok_or_else(|| ctx.field_err("rate_gbps", "missing required field"))?,
        value_model: vm.ok_or_else(|| ctx.field_err("value_model", "missing required field"))?,
        locality: locality.ok_or_else(|| ctx.field_err("locality", "missing required field"))?,
        populations,
    })
}

fn parse_diurnal(ctx: &Ctx<'_>, horizon: &Horizon) -> Result<DiurnalSpec, ScenarioError> {
    let (mut k, mut rate, mut vm) = (None, None, None);
    let (mut p2t, mut peak, mut burst, mut maxdur) = (None, None, None, None);
    walk_obj(
        ctx,
        &[
            "num_requests",
            "rate_gbps",
            "value_model",
            "peak_to_trough",
            "peak_slot",
            "burst",
            "max_duration_slots",
        ],
        |key, c| {
            match key {
                "num_requests" => k = Some(c.usize()?),
                "rate_gbps" => rate = Some(c.positive_range()?),
                "value_model" => vm = Some(parse_value_model(&c)?),
                "peak_to_trough" => {
                    let r = c.f64()?;
                    if r < 1.0 {
                        return Err(c.err(format!("must be at least 1, found {r}")));
                    }
                    p2t = Some(r);
                }
                "peak_slot" => peak = Some(c.usize()?),
                "burst" => {
                    let (mut prob, mut mult) = (None, None);
                    walk_obj(&c, &["prob", "multiplier"], |bkey, bc| {
                        match bkey {
                            "prob" => prob = Some(bc.unit_interval()?),
                            "multiplier" => {
                                let m = bc.f64()?;
                                if m < 1.0 {
                                    return Err(bc.err(format!("must be at least 1, found {m}")));
                                }
                                mult = Some(m);
                            }
                            _ => return Ok(false),
                        }
                        Ok(true)
                    })?;
                    burst = Some(BurstSpec {
                        prob: prob.ok_or_else(|| c.field_err("prob", "missing required field"))?,
                        multiplier: mult
                            .ok_or_else(|| c.field_err("multiplier", "missing required field"))?,
                    });
                }
                "max_duration_slots" => {
                    let d = c.usize()?;
                    if d == 0 {
                        return Err(c.err("must be at least 1"));
                    }
                    maxdur = Some(d);
                }
                _ => return Ok(false),
            }
            Ok(true)
        },
    )?;
    let _ = horizon; // peak_slot/max_duration bounds are checked in cross_validate
    Ok(DiurnalSpec {
        num_requests: require_requests(ctx, k)?,
        rate_gbps: rate.ok_or_else(|| ctx.field_err("rate_gbps", "missing required field"))?,
        value_model: vm.ok_or_else(|| ctx.field_err("value_model", "missing required field"))?,
        peak_to_trough: p2t
            .ok_or_else(|| ctx.field_err("peak_to_trough", "missing required field"))?,
        peak_slot: peak.ok_or_else(|| ctx.field_err("peak_slot", "missing required field"))?,
        burst,
        max_duration_slots: maxdur,
    })
}

fn parse_auction(ctx: &Ctx<'_>) -> Result<AuctionSpec, ScenarioError> {
    let (mut k, mut rate, mut markup, mut eps, mut frac) = (None, None, None, None, None);
    walk_obj(
        ctx,
        &[
            "num_requests",
            "rate_gbps",
            "markup",
            "epsilon",
            "strategic_fraction",
        ],
        |key, c| {
            match key {
                "num_requests" => k = Some(c.usize()?),
                "rate_gbps" => rate = Some(c.positive_range()?),
                "markup" => markup = Some(c.positive_range()?),
                "epsilon" => {
                    let e = c.f64()?;
                    if !(e > 0.0 && e < 1.0) {
                        return Err(c.err(format!("must lie strictly between 0 and 1, found {e}")));
                    }
                    eps = Some(e);
                }
                "strategic_fraction" => frac = Some(c.unit_interval()?),
                _ => return Ok(false),
            }
            Ok(true)
        },
    )?;
    Ok(AuctionSpec {
        num_requests: require_requests(ctx, k)?,
        rate_gbps: rate.ok_or_else(|| ctx.field_err("rate_gbps", "missing required field"))?,
        markup: markup.ok_or_else(|| ctx.field_err("markup", "missing required field"))?,
        epsilon: eps.ok_or_else(|| ctx.field_err("epsilon", "missing required field"))?,
        strategic_fraction: frac
            .ok_or_else(|| ctx.field_err("strategic_fraction", "missing required field"))?,
    })
}

fn parse_hose(ctx: &Ctx<'_>) -> Result<HoseSpec, ScenarioError> {
    let (mut clusters, mut endpoints, mut gbps, mut per, mut markup, mut maxdur) =
        (None, None, None, None, None, None);
    walk_obj(
        ctx,
        &[
            "clusters",
            "endpoints",
            "hose_gbps",
            "per_unit_slot",
            "markup",
            "max_duration_slots",
        ],
        |key, c| {
            match key {
                "clusters" => {
                    let n = c.usize()?;
                    if n == 0 {
                        return Err(c.err("must be at least 1"));
                    }
                    clusters = Some(n);
                }
                "endpoints" => {
                    let items =
                        c.v.as_arr()
                            .ok_or_else(|| c.err("must be a [min, max] array"))?;
                    if items.len() != 2 {
                        return Err(c.err(format!(
                            "must have exactly two entries, found {}",
                            items.len()
                        )));
                    }
                    let min = c.index(0, &items[0]).usize()?;
                    let max = c.index(1, &items[1]).usize()?;
                    if min < 2 {
                        return Err(c.err(format!(
                            "a cluster needs at least 2 endpoints, found min {min}"
                        )));
                    }
                    if min > max {
                        return Err(c.err(format!(
                            "bounds must satisfy min <= max, found [{min}, {max}]"
                        )));
                    }
                    endpoints = Some((min, max));
                }
                "hose_gbps" => gbps = Some(c.positive_range()?),
                "per_unit_slot" => {
                    let p = c.f64()?;
                    if p <= 0.0 {
                        return Err(c.err(format!("must be positive, found {p}")));
                    }
                    per = Some(p);
                }
                "markup" => markup = Some(c.positive_range()?),
                "max_duration_slots" => {
                    let d = c.usize()?;
                    if d == 0 {
                        return Err(c.err("must be at least 1"));
                    }
                    maxdur = Some(d);
                }
                _ => return Ok(false),
            }
            Ok(true)
        },
    )?;
    Ok(HoseSpec {
        clusters: clusters.ok_or_else(|| ctx.field_err("clusters", "missing required field"))?,
        endpoints: endpoints.ok_or_else(|| ctx.field_err("endpoints", "missing required field"))?,
        hose_gbps: gbps.ok_or_else(|| ctx.field_err("hose_gbps", "missing required field"))?,
        per_unit_slot: per
            .ok_or_else(|| ctx.field_err("per_unit_slot", "missing required field"))?,
        markup: markup.ok_or_else(|| ctx.field_err("markup", "missing required field"))?,
        max_duration_slots: maxdur,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        r#"{
          "version": 1,
          "name": "tiny",
          "topology": "sub-b4",
          "horizon": { "slots_per_cycle": 12, "cycles": 1 },
          "seed": 1,
          "workload": { "uniform": {
            "num_requests": 5,
            "rate_gbps": [0.1, 5.0],
            "value_model": { "flat": { "per_unit_slot": 2.0 } }
          } }
        }"#
        .to_string()
    }

    #[test]
    fn minimal_scenario_parses() {
        let s = Scenario::from_json_text(&minimal()).unwrap();
        assert_eq!(s.name, "tiny");
        assert_eq!(s.theta, 8, "theta defaults to 8");
        assert_eq!(s.paths, 3, "paths defaults to 3");
        assert_eq!(s.num_slots(), 12);
        assert_eq!(s.family(), "uniform");
    }

    #[test]
    fn uniform_family_matches_legacy_generator() {
        // The uniform family must be the §V-A generator, bit for bit.
        let s = Scenario::from_json_text(&minimal()).unwrap();
        let topo = s.build_topology();
        let legacy = generate_uniform(
            &topo,
            &WorkloadConfig {
                num_requests: 5,
                num_slots: 12,
                rate_gbps: (0.1, 5.0),
                value_model: ValueModel::Flat { per_unit_slot: 2.0 },
                seed: 1,
            },
        );
        assert_eq!(s.generate(&topo), legacy);
    }

    #[test]
    fn unknown_root_field_names_its_path() {
        let text = minimal().replace("\"seed\": 1", "\"seed\": 1, \"thteta\": 3");
        let e = Scenario::from_json_text(&text).unwrap_err();
        assert_eq!(e.path, "scenario.thteta");
        assert!(e.message.contains("unknown field"), "{e}");
    }

    #[test]
    fn nested_error_paths_are_precise() {
        let text = minimal().replace("[0.1, 5.0]", "[5.0, 0.1]");
        let e = Scenario::from_json_text(&text).unwrap_err();
        assert_eq!(e.path, "scenario.workload.uniform.rate_gbps");
        assert!(e.message.contains("low <= high"), "{e}");
    }

    #[test]
    fn version_gate() {
        let text = minimal().replace("\"version\": 1", "\"version\": 2");
        let e = Scenario::from_json_text(&text).unwrap_err();
        assert_eq!(e.path, "scenario.version");
        assert!(e.message.contains("unsupported schema version 2"), "{e}");
    }

    #[test]
    fn horizon_cap() {
        let text = minimal().replace(
            "\"slots_per_cycle\": 12, \"cycles\": 1",
            "\"slots_per_cycle\": 1000, \"cycles\": 11",
        );
        let e = Scenario::from_json_text(&text).unwrap_err();
        assert_eq!(e.path, "scenario.horizon");
        assert!(e.message.contains("too large"), "{e}");
    }

    #[test]
    fn display_includes_path_and_message() {
        let e = ScenarioError {
            path: "scenario.seed".into(),
            message: "must be a non-negative integer".into(),
        };
        assert_eq!(
            e.to_string(),
            "scenario.seed: must be a non-negative integer"
        );
    }
}
