//! Minimal JSON support for scenario files and the CLI binaries.
//!
//! The workspace builds offline (no `serde_json`), and the only
//! functional JSON it needs is the scenario loader's input plus the
//! bench binaries' report output — so this module hand-rolls a small
//! recursive-descent parser and a pretty-printer over a single [`Json`]
//! value type. Object key order is preserved on both ends.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source/insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_str(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Self {
        Json::Num(n as f64)
    }
}

/// Convenience constructor for an object literal.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // BMP only; unpaired surrogates map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scenario_like_document() {
        let text = r#"{
          "network": {"random": {"nodes": 10, "extra_links": 6, "seed": 42}},
          "workload": {"rate_gbps": [0.1, 5.0], "flag": true, "note": null},
          "theta": 8
        }"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(
            v.get("network")
                .unwrap()
                .get("random")
                .unwrap()
                .get("nodes"),
            Some(&Json::Num(10.0))
        );
        assert_eq!(v.get("theta").unwrap().as_usize(), Some(8));
        let rates = v.get("workload").unwrap().get("rate_gbps").unwrap();
        assert_eq!(rates.as_arr().unwrap()[1].as_f64(), Some(5.0));
        // Pretty output reparses to the same value.
        let again = Json::parse(&v.to_pretty()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\té".into());
        let parsed = Json::parse(&v.to_pretty()).unwrap();
        assert_eq!(v, parsed);
        assert_eq!(Json::parse(r#""éx""#).unwrap(), Json::Str("éx".into()));
    }

    #[test]
    fn numbers_print_like_json() {
        assert_eq!(Json::Num(8.0).to_pretty(), "8");
        assert_eq!(Json::Num(0.5).to_pretty(), "0.5");
        assert_eq!(Json::Num(-3.0).to_pretty(), "-3");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn parses_demo_scenario_shape() {
        let text = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/demo.json"),
        )
        .expect("demo scenario present");
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("version").and_then(Json::as_u64), Some(1));
        let family = v.get("workload").unwrap().get("uniform").unwrap();
        assert!(family.get("value_model").is_some());
    }
}
