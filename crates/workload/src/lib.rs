//! Synthetic bandwidth-reservation workloads for the Metis reproduction.
//!
//! Requests are the paper's six-tuples `{s, d, ts, td, r, v}`; the
//! generator follows the evaluation setup of §V-A (Poisson arrivals over a
//! 12-slot cycle, uniform 0.1–5 Gbps rates, route-priced bids) and is
//! fully deterministic per seed.
//!
//! Beyond the paper's setup, the [`scenario`] module defines versioned
//! scenario files (`scenarios/*.json`) with a strict validating loader
//! and four further generator families — population-weighted
//! [geo-locality](GeoLocalitySpec), [diurnal/bursty](DiurnalSpec)
//! arrivals over multi-cycle horizons, strategic-bid
//! [auctions](AuctionSpec), and hose-model [virtual clusters](HoseSpec).
//!
//! # Examples
//!
//! ```
//! use metis_netsim::topologies;
//! use metis_workload::{generate, WorkloadConfig};
//!
//! let topo = topologies::b4();
//! let requests = generate(&topo, &WorkloadConfig::paper(100, 1));
//! let total_bid: f64 = requests.iter().map(|r| r.value).sum();
//! assert!(total_bid > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod families;
mod generator;
pub mod json;
mod request;
pub mod scenario;

pub use generator::{generate, ValueModel, WorkloadConfig, DEFAULT_SLOTS};
pub use request::{Request, RequestId};
pub use scenario::{
    AuctionSpec, BurstSpec, DiurnalSpec, FamilySpec, GeoLocalitySpec, Horizon, HoseSpec, Scenario,
    ScenarioError, TopologySpec, UniformSpec, SCENARIO_VERSION,
};
