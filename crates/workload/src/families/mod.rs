//! The scenario zoo's generator families beyond the paper's §V-A model.
//!
//! Every family draws from one `ChaCha12` stream seeded with the
//! scenario seed, in a fixed order, so the same scenario file always
//! produces the same request stream on any host and thread count. All
//! families emit requests sorted by start slot with sequential ids, and
//! every emitted request passes [`crate::Request::validate`].

pub(crate) mod auction;
pub(crate) mod common;
pub(crate) mod diurnal;
pub(crate) mod geo;
pub(crate) mod hose;
