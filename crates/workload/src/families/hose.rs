//! Hose-model virtual-cluster requests per Ludwig et al. (PAPERS.md).
//!
//! A virtual cluster abstracts a tenant's deployment as `N` endpoints
//! connected through one virtual switch with a per-endpoint hose
//! bandwidth. Mapped onto the paper's point-to-point request model, the
//! member with the smallest total hop distance to its peers plays the
//! virtual switch (the *hub*), and every other member contributes an
//! uplink and a downlink reservation to/from the hub at its hose rate,
//! all sharing the cluster's time window. One cluster therefore lands
//! `2·(N−1)` correlated requests whose paths contend around the hub —
//! precisely the stress on the path-assignment layer that independent
//! src→dst pairs never produce.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use metis_netsim::{gbps_to_units, NodeId, Topology};

use crate::families::common::{all_pairs_hops, finalize};
use crate::request::{Request, RequestId};
use crate::scenario::{Horizon, HoseSpec};

/// Picks `count` distinct node indices by partial Fisher–Yates over
/// `0..n`, consuming `count` RNG draws.
fn distinct_nodes(rng: &mut ChaCha12Rng, n: usize, count: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..count {
        let j = i + (rng.gen::<u64>() as usize) % (n - i);
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

/// Generates a hose-model workload; see the module docs for the model.
///
/// # Panics
///
/// Panics if the topology has fewer nodes than `spec.endpoints` demands.
pub(crate) fn generate(
    topo: &Topology,
    horizon: &Horizon,
    seed: u64,
    spec: &HoseSpec,
) -> Vec<Request> {
    let n = topo.num_nodes();
    assert!(
        spec.endpoints.1 <= n && spec.endpoints.0 >= 2,
        "cluster size must fit the topology"
    );
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let num_slots = horizon.num_slots();
    let max_dur = spec
        .max_duration_slots
        .unwrap_or(horizon.slots_per_cycle)
        .min(num_slots);
    let hops = all_pairs_hops(topo);
    let (glo, ghi) = spec.hose_gbps;
    let rate_dist = Uniform::new_inclusive(glo, ghi);
    let (mlo, mhi) = spec.markup;
    let markup_dist = Uniform::new_inclusive(mlo, mhi);

    let mut out = Vec::new();
    for _ in 0..spec.clusters {
        let count = rng.gen_range(spec.endpoints.0..=spec.endpoints.1);
        let members = distinct_nodes(&mut rng, n, count);
        // The hub is the member closest (total hops) to the rest; ties
        // break toward the lowest node index for determinism.
        let hub = *members
            .iter()
            .min_by_key(|&&m| {
                let total: u32 = members.iter().map(|&o| hops[m][o]).sum();
                (total, m)
            })
            .expect("cluster has at least two members");
        let start = rng.gen_range(0..num_slots);
        let span = max_dur.min(num_slots - start);
        let end = start + rng.gen_range(0..span.max(1));
        let duration = (end - start + 1) as f64;
        let markup = markup_dist.sample(&mut rng);
        for &m in &members {
            if m == hub {
                continue;
            }
            let rate = gbps_to_units(rate_dist.sample(&mut rng));
            // Hose semantics: the member's ingress and egress hoses are
            // one reservation each, both billed at the flat tariff under
            // the cluster's markup.
            let value = rate * duration * spec.per_unit_slot * markup;
            for (src, dst) in [(m, hub), (hub, m)] {
                out.push(Request {
                    id: RequestId(out.len() as u32),
                    src: NodeId(src as u32),
                    dst: NodeId(dst as u32),
                    start,
                    end,
                    rate,
                    value,
                });
            }
        }
    }
    finalize(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::topologies;

    fn spec() -> HoseSpec {
        HoseSpec {
            clusters: 8,
            endpoints: (3, 5),
            hose_gbps: (0.5, 2.0),
            per_unit_slot: 1.5,
            markup: (0.8, 2.5),
            max_duration_slots: None,
        }
    }

    const HORIZON: Horizon = Horizon {
        slots_per_cycle: 12,
        cycles: 1,
    };

    #[test]
    fn deterministic_and_valid() {
        let topo = topologies::b4();
        let a = generate(&topo, &HORIZON, 3, &spec());
        assert_eq!(a, generate(&topo, &HORIZON, 3, &spec()));
        // 8 clusters of 3–5 endpoints: between 2·2·8 and 2·4·8 requests.
        assert!((32..=64).contains(&a.len()), "{} requests", a.len());
        for r in &a {
            r.validate(topo.num_nodes(), 12).unwrap();
        }
    }

    #[test]
    fn uplinks_pair_with_downlinks() {
        let topo = topologies::b4();
        let reqs = generate(&topo, &HORIZON, 5, &spec());
        for r in &reqs {
            let mate = reqs.iter().any(|o| {
                o.src == r.dst
                    && o.dst == r.src
                    && o.start == r.start
                    && o.end == r.end
                    && o.rate.to_bits() == r.rate.to_bits()
            });
            assert!(mate, "{}: no reverse hose for {}→{}", r.id, r.src, r.dst);
        }
    }

    #[test]
    fn every_request_touches_its_clusters_hub() {
        // Group requests by time window: within each group, star shape
        // means some node appears as an endpoint of every request.
        let topo = topologies::b4();
        let reqs = generate(&topo, &HORIZON, 7, &spec());
        let mut windows: Vec<(usize, usize)> = reqs.iter().map(|r| (r.start, r.end)).collect();
        windows.sort_unstable();
        windows.dedup();
        assert!(windows.len() >= 2, "clusters should spread over windows");
        for (start, end) in windows {
            let group: Vec<_> = reqs
                .iter()
                .filter(|r| r.start == start && r.end == end)
                .collect();
            let is_hub = |h: NodeId| group.iter().all(|r| r.src == h || r.dst == h);
            // Windows can collide across clusters, so only demand a hub
            // where the group is one cluster's worth of requests.
            if group.len() <= 8 {
                assert!(
                    group.iter().any(|r| is_hub(r.src) || is_hub(r.dst)),
                    "window {start}..={end}: no common hub in {} requests",
                    group.len()
                );
            }
        }
    }

    #[test]
    fn distinct_nodes_are_distinct() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        for _ in 0..50 {
            let mut picked = distinct_nodes(&mut rng, 12, 5);
            picked.sort_unstable();
            picked.dedup();
            assert_eq!(picked.len(), 5);
        }
    }
}
