//! Diurnal and bursty arrival processes over multi-cycle horizons.
//!
//! Per-slot arrival intensity follows a raised cosine over each billing
//! cycle — `λ(c) = 1 + (P−1)·(1 + cos(2π(c − peak)/S))/2` for cycle slot
//! `c`, peaking at `λ = P = peak_to_trough` and bottoming at `λ = 1` —
//! repeated across every cycle of the horizon. An optional seeded burst
//! mask multiplies individual slots' intensity (a two-state
//! MMPP-flavored overlay). Conditional on the total request count `K`,
//! the arrival slots of a non-homogeneous Poisson process are i.i.d.
//! with density ∝ λ, which is exactly how slots are drawn here: one
//! inverse-CDF lookup per request.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use metis_netsim::{gbps_to_units, NodeId, Topology};

use crate::families::common::{cumulative, finalize, value_of, weighted_index, PriceCache};
use crate::request::{Request, RequestId};
use crate::scenario::{DiurnalSpec, Horizon};

/// Per-slot arrival intensity over the whole horizon, bursts included.
/// Consumes one RNG draw per slot when a burst model is present.
fn intensities(rng: &mut ChaCha12Rng, horizon: &Horizon, spec: &DiurnalSpec) -> Vec<f64> {
    let s = horizon.slots_per_cycle as f64;
    let mut lambda: Vec<f64> = (0..horizon.num_slots())
        .map(|t| {
            let c = (t % horizon.slots_per_cycle) as f64;
            let phase = std::f64::consts::TAU * (c - spec.peak_slot as f64) / s;
            1.0 + (spec.peak_to_trough - 1.0) * (1.0 + phase.cos()) / 2.0
        })
        .collect();
    if let Some(burst) = &spec.burst {
        for l in &mut lambda {
            if rng.gen::<f64>() < burst.prob {
                *l *= burst.multiplier;
            }
        }
    }
    lambda
}

/// Generates a diurnal/bursty workload; see the module docs for the model.
///
/// # Panics
///
/// Panics if the topology has fewer than two nodes.
pub(crate) fn generate(
    topo: &Topology,
    horizon: &Horizon,
    seed: u64,
    spec: &DiurnalSpec,
) -> Vec<Request> {
    let n = topo.num_nodes();
    assert!(n >= 2, "need at least two data centers");
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let num_slots = horizon.num_slots();
    let cum = cumulative(&intensities(&mut rng, horizon, spec));
    let max_dur = spec
        .max_duration_slots
        .unwrap_or(horizon.slots_per_cycle)
        .min(num_slots);

    let node_dist = Uniform::new(0, n as u32);
    let (glo, ghi) = spec.rate_gbps;
    let rate_dist = Uniform::new_inclusive(glo, ghi);
    let mut prices = PriceCache::new(topo);

    let mut out = Vec::with_capacity(spec.num_requests);
    for i in 0..spec.num_requests {
        let start = weighted_index(&mut rng, &cum);
        let span = max_dur.min(num_slots - start);
        let end = start + rng.gen_range(0..span.max(1));
        let src = NodeId(node_dist.sample(&mut rng));
        let dst = loop {
            let d = NodeId(node_dist.sample(&mut rng));
            if d != src {
                break d;
            }
        };
        let rate = gbps_to_units(rate_dist.sample(&mut rng));
        let value = value_of(
            &mut rng,
            &spec.value_model,
            &mut prices,
            topo,
            src,
            dst,
            rate,
            end - start + 1,
            horizon.slots_per_cycle,
        );
        out.push(Request {
            id: RequestId(i as u32),
            src,
            dst,
            start,
            end,
            rate,
            value,
        });
    }
    finalize(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ValueModel;
    use crate::scenario::BurstSpec;
    use metis_netsim::topologies;

    fn spec() -> DiurnalSpec {
        DiurnalSpec {
            num_requests: 600,
            rate_gbps: (0.1, 5.0),
            value_model: ValueModel::PricedPath {
                low: 0.5,
                high: 4.0,
            },
            peak_to_trough: 6.0,
            peak_slot: 4,
            burst: None,
            max_duration_slots: None,
        }
    }

    const HORIZON: Horizon = Horizon {
        slots_per_cycle: 12,
        cycles: 2,
    };

    #[test]
    fn deterministic_and_valid() {
        let topo = topologies::b4();
        let a = generate(&topo, &HORIZON, 9, &spec());
        assert_eq!(a, generate(&topo, &HORIZON, 9, &spec()));
        assert_eq!(a.len(), 600);
        for r in &a {
            r.validate(topo.num_nodes(), HORIZON.num_slots()).unwrap();
        }
    }

    #[test]
    fn peak_slots_attract_more_arrivals() {
        let topo = topologies::b4();
        let reqs = generate(&topo, &HORIZON, 2, &spec());
        let mut per_cycle_slot = [0usize; HORIZON.slots_per_cycle];
        for r in &reqs {
            per_cycle_slot[r.start % HORIZON.slots_per_cycle] += 1;
        }
        // Peak slot (4) vs antipodal trough slot (10): the 6× intensity
        // ratio must show through the sampling noise.
        assert!(
            per_cycle_slot[4] > 2 * per_cycle_slot[10],
            "peak {} vs trough {}",
            per_cycle_slot[4],
            per_cycle_slot[10]
        );
    }

    #[test]
    fn durations_respect_the_cap() {
        let topo = topologies::sub_b4();
        let s = DiurnalSpec {
            max_duration_slots: Some(3),
            ..spec()
        };
        for r in generate(&topo, &HORIZON, 7, &s) {
            assert!(r.duration() <= 3, "{} runs {} slots", r.id, r.duration());
        }
    }

    #[test]
    fn burst_mask_is_seed_deterministic() {
        let topo = topologies::sub_b4();
        let s = DiurnalSpec {
            burst: Some(BurstSpec {
                prob: 0.3,
                multiplier: 8.0,
            }),
            ..spec()
        };
        let a = generate(&topo, &HORIZON, 13, &s);
        assert_eq!(a, generate(&topo, &HORIZON, 13, &s));
        for r in &a {
            r.validate(topo.num_nodes(), HORIZON.num_slots()).unwrap();
        }
    }

    #[test]
    fn requests_sorted_by_start_with_sequential_ids() {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &HORIZON, 21, &spec());
        for (i, w) in reqs.windows(2).enumerate() {
            assert!(w[0].start <= w[1].start, "unsorted at {i}");
        }
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id.index(), i);
        }
    }
}
