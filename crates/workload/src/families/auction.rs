//! Auction-style workloads: `v_i` comes from seeded strategic bids.
//!
//! Models the bid side of Zhang et al.'s truthful (1−ε)-optimal
//! reservation auction (PAPERS.md). Each bidder's *true valuation* is
//! route-priced, `v = rate · (duration/cycle) · cheapest_path_price ·
//! markup`; under a (1−ε)-optimal truthful mechanism, reporting `v` is a
//! dominant strategy up to the ε slack, so a configurable
//! `strategic_fraction` of bidders shade their report to `v · (1 − u·ε)`
//! with `u ~ U[0,1]` while the rest bid truthfully. The emitted request
//! value is the *bid*, never above the true valuation and never more
//! than a factor `1 − ε` below it — which bounds the profit the provider
//! can lose to shading, the property that makes the mechanism's revenue
//! a meaningful baseline.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use metis_netsim::{gbps_to_units, NodeId, Topology};

use crate::families::common::{finalize, PriceCache};
use crate::request::{Request, RequestId};
use crate::scenario::{AuctionSpec, Horizon};

/// Generates an auction workload; see the module docs for the model.
///
/// # Panics
///
/// Panics if the topology has fewer than two nodes.
pub(crate) fn generate(
    topo: &Topology,
    horizon: &Horizon,
    seed: u64,
    spec: &AuctionSpec,
) -> Vec<Request> {
    let n = topo.num_nodes();
    assert!(n >= 2, "need at least two data centers");
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let num_slots = horizon.num_slots();

    let node_dist = Uniform::new(0, n as u32);
    let (glo, ghi) = spec.rate_gbps;
    let rate_dist = Uniform::new_inclusive(glo, ghi);
    let (mlo, mhi) = spec.markup;
    let markup_dist = Uniform::new_inclusive(mlo, mhi);
    let mut prices = PriceCache::new(topo);

    // Poisson arrivals over the horizon, as in the §V-A generator.
    let mut arrivals = Vec::with_capacity(spec.num_requests);
    let mut acc = 0.0;
    for _ in 0..spec.num_requests {
        let u: f64 = rng.gen();
        acc += -(1.0 - u).ln();
        arrivals.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);

    let mut out = Vec::with_capacity(spec.num_requests);
    for (i, &arr) in arrivals.iter().enumerate() {
        let start = (((arr / total) * num_slots as f64) as usize).min(num_slots - 1);
        let end = rng.gen_range(start..num_slots);
        let src = NodeId(node_dist.sample(&mut rng));
        let dst = loop {
            let d = NodeId(node_dist.sample(&mut rng));
            if d != src {
                break d;
            }
        };
        let rate = gbps_to_units(rate_dist.sample(&mut rng));
        let duration = (end - start + 1) as f64;
        let valuation = rate
            * (duration / horizon.slots_per_cycle as f64)
            * prices.get(topo, src, dst)
            * markup_dist.sample(&mut rng);
        // Fixed draw order: the strategic coin and the shade depth are
        // consumed for every bidder so the stream stays aligned whatever
        // the fraction.
        let strategic = rng.gen::<f64>() < spec.strategic_fraction;
        let shade_depth: f64 = rng.gen::<f64>() * spec.epsilon;
        let bid = if strategic {
            valuation * (1.0 - shade_depth)
        } else {
            valuation
        };
        out.push(Request {
            id: RequestId(i as u32),
            src,
            dst,
            start,
            end,
            rate,
            value: bid,
        });
    }
    finalize(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::topologies;

    fn spec(strategic_fraction: f64) -> AuctionSpec {
        AuctionSpec {
            num_requests: 500,
            rate_gbps: (0.1, 5.0),
            markup: (1.0, 4.0),
            epsilon: 0.2,
            strategic_fraction,
        }
    }

    const HORIZON: Horizon = Horizon {
        slots_per_cycle: 12,
        cycles: 1,
    };

    #[test]
    fn deterministic_and_valid() {
        let topo = topologies::b4();
        let a = generate(&topo, &HORIZON, 4, &spec(0.5));
        assert_eq!(a, generate(&topo, &HORIZON, 4, &spec(0.5)));
        assert_eq!(a.len(), 500);
        for r in &a {
            r.validate(topo.num_nodes(), 12).unwrap();
        }
    }

    #[test]
    fn shading_is_bounded_by_epsilon() {
        // Truthful run vs fully strategic run, same seed: every bid may
        // drop by at most a factor ε, never rise.
        let topo = topologies::b4();
        let truthful = generate(&topo, &HORIZON, 8, &spec(0.0));
        let strategic = generate(&topo, &HORIZON, 8, &spec(1.0));
        assert_eq!(truthful.len(), strategic.len());
        for (t, s) in truthful.iter().zip(&strategic) {
            assert_eq!(
                (t.src, t.dst, t.start, t.end),
                (s.src, s.dst, s.start, s.end)
            );
            assert!(
                s.value <= t.value + 1e-12,
                "{}: bid rose under shading",
                t.id
            );
            assert!(
                s.value >= t.value * (1.0 - 0.2) - 1e-12,
                "{}: shaded below the (1-eps) floor: {} < {}",
                t.id,
                s.value,
                t.value * 0.8
            );
        }
        let shaved = truthful
            .iter()
            .zip(&strategic)
            .filter(|(t, s)| s.value < t.value)
            .count();
        assert!(shaved > 400, "only {shaved}/500 bids actually shaded");
    }

    #[test]
    fn strategic_fraction_scales_revenue_loss() {
        let topo = topologies::sub_b4();
        let total = |f: f64| -> f64 {
            generate(&topo, &HORIZON, 6, &spec(f))
                .iter()
                .map(|r| r.value)
                .sum()
        };
        let (none, half, all) = (total(0.0), total(0.5), total(1.0));
        assert!(
            all < half && half < none,
            "{all} < {half} < {none} violated"
        );
    }
}
