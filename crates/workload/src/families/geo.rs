//! Population-weighted geo-distributed demand with a locality factor.
//!
//! Sources are drawn proportionally to per-DC *population* weights
//! (explicit, or node degree by default — better-connected DCs serve
//! more users). Destinations combine the same population gravity with a
//! locality kernel that decays geometrically in hop distance from the
//! source: weight `pop(d) · ((1 − ℓ) + ℓ · 2^{1−hops(s,d)})`. At
//! `ℓ = 0` this is pure gravity; at `ℓ = 1` each extra hop halves the
//! destination's weight, concentrating traffic regionally the way
//! population-following deployments do (cf. the XDN geodistribution
//! exemplar in SNIPPETS.md).

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use metis_netsim::{gbps_to_units, NodeId, Topology};

use crate::families::common::{
    all_pairs_hops, cumulative, finalize, value_of, weighted_index, PriceCache,
};
use crate::request::{Request, RequestId};
use crate::scenario::{GeoLocalitySpec, Horizon};

/// Generates a geo-locality workload; see the module docs for the model.
///
/// # Panics
///
/// Panics if the topology has fewer than two nodes or an explicit
/// population table does not match the node count (the scenario loader's
/// cross-validation rules both out for loaded scenarios).
pub(crate) fn generate(
    topo: &Topology,
    horizon: &Horizon,
    seed: u64,
    spec: &GeoLocalitySpec,
) -> Vec<Request> {
    let n = topo.num_nodes();
    assert!(n >= 2, "need at least two data centers");
    let pop: Vec<f64> = match &spec.populations {
        Some(p) => {
            assert_eq!(p.len(), n, "one population weight per data center");
            p.clone()
        }
        None => (0..n)
            .map(|i| topo.out_edges(NodeId(i as u32)).len() as f64)
            .collect(),
    };
    let hops = all_pairs_hops(topo);
    let src_cum = cumulative(&pop);
    // Per-source destination weights: population gravity × locality kernel.
    let dst_cum: Vec<Vec<f64>> = (0..n)
        .map(|s| {
            let weights: Vec<f64> = (0..n)
                .map(|d| {
                    if d == s {
                        0.0
                    } else {
                        let h = hops[s][d].max(1) as i32;
                        pop[d] * ((1.0 - spec.locality) + spec.locality * 0.5f64.powi(h - 1))
                    }
                })
                .collect();
            cumulative(&weights)
        })
        .collect();

    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let num_slots = horizon.num_slots();
    let (glo, ghi) = spec.rate_gbps;
    let rate_dist = Uniform::new_inclusive(glo, ghi);
    let mut prices = PriceCache::new(topo);

    // Poisson arrivals over the horizon, as in the §V-A generator.
    let mut arrivals = Vec::with_capacity(spec.num_requests);
    let mut acc = 0.0;
    for _ in 0..spec.num_requests {
        let u: f64 = rng.gen();
        acc += -(1.0 - u).ln();
        arrivals.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);

    let mut out = Vec::with_capacity(spec.num_requests);
    for (i, &arr) in arrivals.iter().enumerate() {
        let start = (((arr / total) * num_slots as f64) as usize).min(num_slots - 1);
        let end = rng.gen_range(start..num_slots);
        let src = weighted_index(&mut rng, &src_cum);
        let dst = weighted_index(&mut rng, &dst_cum[src]);
        debug_assert_ne!(src, dst, "self-loops have zero weight");
        let (src, dst) = (NodeId(src as u32), NodeId(dst as u32));
        let rate = gbps_to_units(rate_dist.sample(&mut rng));
        let value = value_of(
            &mut rng,
            &spec.value_model,
            &mut prices,
            topo,
            src,
            dst,
            rate,
            end - start + 1,
            horizon.slots_per_cycle,
        );
        out.push(Request {
            id: RequestId(i as u32),
            src,
            dst,
            start,
            end,
            rate,
            value,
        });
    }
    finalize(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ValueModel;
    use metis_netsim::topologies;

    fn spec(locality: f64) -> GeoLocalitySpec {
        GeoLocalitySpec {
            num_requests: 400,
            rate_gbps: (0.1, 5.0),
            value_model: ValueModel::PricedPath {
                low: 0.5,
                high: 4.0,
            },
            locality,
            populations: None,
        }
    }

    const HORIZON: Horizon = Horizon {
        slots_per_cycle: 12,
        cycles: 1,
    };

    #[test]
    fn deterministic_and_valid() {
        let topo = topologies::b4();
        let a = generate(&topo, &HORIZON, 5, &spec(0.7));
        let b = generate(&topo, &HORIZON, 5, &spec(0.7));
        assert_eq!(a, b);
        assert_eq!(a.len(), 400);
        for r in &a {
            r.validate(topo.num_nodes(), 12).unwrap();
        }
    }

    #[test]
    fn locality_shortens_paths() {
        // Average hop distance between endpoints must shrink as the
        // locality factor rises.
        let topo = topologies::b4();
        let hops = all_pairs_hops(&topo);
        let mean_hops = |l: f64| {
            let reqs = generate(&topo, &HORIZON, 11, &spec(l));
            reqs.iter()
                .map(|r| hops[r.src.index()][r.dst.index()] as f64)
                .sum::<f64>()
                / reqs.len() as f64
        };
        assert!(
            mean_hops(1.0) + 0.2 < mean_hops(0.0),
            "locality 1.0 should pull endpoints together: {} vs {}",
            mean_hops(1.0),
            mean_hops(0.0)
        );
    }

    #[test]
    fn explicit_populations_steer_demand() {
        // Give one node nearly all the population: most endpoints should
        // involve it.
        let topo = topologies::sub_b4();
        let n = topo.num_nodes();
        let mut pop = vec![0.01; n];
        pop[2] = 100.0;
        let s = GeoLocalitySpec {
            populations: Some(pop),
            ..spec(0.0)
        };
        let reqs = generate(&topo, &HORIZON, 3, &s);
        let touching = reqs
            .iter()
            .filter(|r| r.src.index() == 2 || r.dst.index() == 2)
            .count();
        assert!(
            touching * 10 > reqs.len() * 9,
            "only {touching}/{} touch the dominant node",
            reqs.len()
        );
    }

    #[test]
    #[should_panic(expected = "one population weight per data center")]
    fn mismatched_populations_rejected() {
        let topo = topologies::sub_b4();
        let s = GeoLocalitySpec {
            populations: Some(vec![1.0; 3]),
            ..spec(0.0)
        };
        generate(&topo, &HORIZON, 0, &s);
    }
}
