//! Helpers shared by the generator families.

use rand::Rng;
use rand_chacha::ChaCha12Rng;

use metis_netsim::{NodeId, PathMetric, Topology};

use crate::generator::ValueModel;
use crate::request::{Request, RequestId};

/// Samples an index from cumulative weights `cum` (non-empty, ascending,
/// last entry positive): inverse-CDF with one uniform draw.
pub(crate) fn weighted_index(rng: &mut ChaCha12Rng, cum: &[f64]) -> usize {
    let total = cum[cum.len() - 1];
    let u: f64 = rng.gen::<f64>() * total;
    // partition_point is a binary search; ties broken toward the first
    // slot whose cumulative weight exceeds u.
    cum.partition_point(|&c| c <= u).min(cum.len() - 1)
}

/// Cumulative sums of `weights`.
pub(crate) fn cumulative(weights: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w;
            acc
        })
        .collect()
}

/// All-pairs hop distances by BFS from every node. Unreachable pairs
/// (impossible on the strongly connected built-ins) fall back to the
/// node count, i.e. "far".
pub(crate) fn all_pairs_hops(topo: &Topology) -> Vec<Vec<u32>> {
    let n = topo.num_nodes();
    let far = n as u32;
    (0..n)
        .map(|s| {
            let mut dist = vec![far; n];
            dist[s] = 0;
            let mut queue = std::collections::VecDeque::from([NodeId(s as u32)]);
            while let Some(u) = queue.pop_front() {
                for &e in topo.out_edges(u) {
                    let v = topo.edge(e).to;
                    if dist[v.index()] == far {
                        dist[v.index()] = dist[u.index()] + 1;
                        queue.push_back(v);
                    }
                }
            }
            dist
        })
        .collect()
}

/// Lazily filled cheapest-path price table, as in the §V-A generator.
pub(crate) struct PriceCache {
    n: usize,
    cache: Vec<Option<f64>>,
}

impl PriceCache {
    pub(crate) fn new(topo: &Topology) -> Self {
        let n = topo.num_nodes();
        PriceCache {
            n,
            cache: vec![None; n * n],
        }
    }

    pub(crate) fn get(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> f64 {
        let idx = src.index() * self.n + dst.index();
        if self.cache[idx].is_none() {
            let p = metis_netsim::shortest_path(topo, src, dst, PathMetric::Price)
                .map(|p| p.price(topo))
                .unwrap_or(0.0);
            self.cache[idx] = Some(p);
        }
        self.cache[idx].unwrap()
    }
}

/// Derives a request's bid under `model`, consuming exactly one RNG draw
/// for the priced-path markup and none for the flat tariff.
#[allow(clippy::too_many_arguments)]
pub(crate) fn value_of(
    rng: &mut ChaCha12Rng,
    model: &ValueModel,
    prices: &mut PriceCache,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    rate: f64,
    duration: usize,
    slots_per_cycle: usize,
) -> f64 {
    match *model {
        ValueModel::PricedPath { low, high } => {
            let markup = rng.gen_range(low..=high);
            rate * (duration as f64 / slots_per_cycle as f64) * prices.get(topo, src, dst) * markup
        }
        ValueModel::Flat { per_unit_slot } => rate * duration as f64 * per_unit_slot,
    }
}

/// Sorts requests by start slot (stable, so the seeded draw order breaks
/// ties) and reassigns sequential ids — the output-contract every family
/// shares.
pub(crate) fn finalize(mut requests: Vec<Request>) -> Vec<Request> {
    requests.sort_by_key(|r| r.start);
    for (i, r) in requests.iter_mut().enumerate() {
        r.id = RequestId(i as u32);
    }
    requests
}
