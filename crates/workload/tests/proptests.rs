//! Property tests for the workload generator.

use proptest::prelude::*;

use metis_netsim::topologies;
use metis_workload::{generate, ValueModel, WorkloadConfig, DEFAULT_SLOTS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_requests_always_validate(
        k in 0usize..200,
        seed in any::<u64>(),
        slots in 1usize..24,
    ) {
        let topo = topologies::b4();
        let cfg = WorkloadConfig {
            num_requests: k,
            num_slots: slots,
            rate_gbps: (0.1, 5.0),
            value_model: ValueModel::default(),
            seed,
        };
        let reqs = generate(&topo, &cfg);
        prop_assert_eq!(reqs.len(), k);
        for r in &reqs {
            prop_assert_eq!(r.validate(topo.num_nodes(), slots), Ok(()));
        }
    }

    #[test]
    fn rates_respect_configured_range(
        seed in any::<u64>(),
        lo in 0.5f64..2.0,
        width in 0.0f64..5.0,
    ) {
        let topo = topologies::sub_b4();
        let hi = lo + width;
        let cfg = WorkloadConfig {
            num_requests: 64,
            num_slots: DEFAULT_SLOTS,
            rate_gbps: (lo, hi),
            value_model: ValueModel::Flat { per_unit_slot: 1.0 },
            seed,
        };
        for r in generate(&topo, &cfg) {
            let gbps = metis_netsim::units_to_gbps(r.rate);
            prop_assert!(gbps >= lo - 1e-9 && gbps <= hi + 1e-9);
        }
    }

    #[test]
    fn same_seed_same_workload(seed in any::<u64>()) {
        let topo = topologies::b4();
        let cfg = WorkloadConfig::paper(50, seed);
        prop_assert_eq!(generate(&topo, &cfg), generate(&topo, &cfg));
    }

    #[test]
    fn flat_values_match_formula(seed in any::<u64>(), tariff in 0.1f64..10.0) {
        let topo = topologies::sub_b4();
        let cfg = WorkloadConfig {
            num_requests: 32,
            num_slots: DEFAULT_SLOTS,
            rate_gbps: (0.1, 5.0),
            value_model: ValueModel::Flat { per_unit_slot: tariff },
            seed,
        };
        for r in generate(&topo, &cfg) {
            let expect = r.rate * r.duration() as f64 * tariff;
            prop_assert!((r.value - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn priced_values_are_positive_and_bounded(seed in any::<u64>()) {
        let topo = topologies::b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(100, seed));
        for r in &reqs {
            prop_assert!(r.value > 0.0);
            // Bounded by max markup × full-cycle standalone fractional cost.
            let price = metis_netsim::shortest_path(
                &topo, r.src, r.dst, metis_netsim::PathMetric::Price)
                .unwrap()
                .price(&topo);
            let cap = r.rate * (r.duration() as f64 / 12.0) * price * 4.0 + 1e-9;
            prop_assert!(r.value <= cap, "value {} above cap {}", r.value, cap);
        }
    }
}
