//! Negative fixtures for the scenario loader: every class of malformed
//! scenario file must be rejected with a *precise, field-path* error —
//! the path names exactly the offending field and the message says what
//! is wrong with it, so scenario authors never have to bisect a file.

use metis_workload::scenario::Scenario;

fn load_fixture(name: &str) -> Result<Scenario, metis_workload::ScenarioError> {
    let path = format!(
        "{}/tests/fixtures/bad/{name}.json",
        env!("CARGO_MANIFEST_DIR")
    );
    Scenario::load(&path)
}

/// (fixture, expected error path, fragment the message must contain)
const CASES: &[(&str, &str, &str)] = &[
    ("not_object", "scenario", "must be an object"),
    ("invalid_json", "scenario", "invalid JSON"),
    (
        "missing_version",
        "scenario.version",
        "missing required field",
    ),
    (
        "bad_version",
        "scenario.version",
        "unsupported schema version 99",
    ),
    ("bad_name", "scenario.name", "must match [a-z0-9_-]+"),
    ("unknown_field", "scenario.thteta", "unknown field"),
    (
        "unknown_topology",
        "scenario.topology",
        "unknown topology `b5`",
    ),
    (
        "horizon_zero",
        "scenario.horizon.slots_per_cycle",
        "must be at least 1",
    ),
    (
        "rate_inverted",
        "scenario.workload.uniform.rate_gbps",
        "low <= high",
    ),
    (
        "rate_nonpositive",
        "scenario.workload.uniform.rate_gbps",
        "low bound must be positive",
    ),
    (
        "locality_range",
        "scenario.workload.geo_locality.locality",
        "must be within [0, 1]",
    ),
    (
        "populations_len",
        "scenario.workload.geo_locality.populations",
        "one weight per data center (12)",
    ),
    (
        "epsilon_range",
        "scenario.workload.auction.epsilon",
        "strictly between 0 and 1",
    ),
    (
        "peak_slot_range",
        "scenario.workload.diurnal.peak_slot",
        "must be below horizon.slots_per_cycle (12)",
    ),
    (
        "burst_multiplier",
        "scenario.workload.diurnal.burst.multiplier",
        "must be at least 1",
    ),
    (
        "unknown_family",
        "scenario.workload",
        "unknown workload family `zipf`",
    ),
    (
        "unknown_value_model",
        "scenario.workload.uniform.value_model",
        "unknown value_model `lottery`",
    ),
    (
        "hose_endpoints",
        "scenario.workload.hose.endpoints",
        "may not exceed the topology's 12 data centers",
    ),
    (
        "missing_workload_field",
        "scenario.workload.uniform.rate_gbps",
        "missing required field",
    ),
    (
        "random_too_small",
        "scenario.topology.random.nodes",
        "at least three nodes",
    ),
];

#[test]
fn every_bad_fixture_fails_with_its_exact_path() {
    for (fixture, want_path, want_fragment) in CASES {
        let err =
            load_fixture(fixture).expect_err(&format!("{fixture}.json should have been rejected"));
        assert_eq!(
            &err.path, want_path,
            "{fixture}.json: wrong error path (message was: {})",
            err.message
        );
        assert!(
            err.message.contains(want_fragment),
            "{fixture}.json: message `{}` missing `{want_fragment}`",
            err.message
        );
    }
}

#[test]
fn every_bad_fixture_is_covered() {
    // A fixture on disk with no table entry is a silent coverage gap.
    let dir = format!("{}/tests/fixtures/bad", env!("CARGO_MANIFEST_DIR"));
    let mut on_disk: Vec<String> = std::fs::read_dir(dir)
        .expect("fixtures dir")
        .map(|e| {
            e.unwrap()
                .path()
                .file_stem()
                .unwrap()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    on_disk.sort();
    let mut in_table: Vec<String> = CASES.iter().map(|(f, _, _)| f.to_string()).collect();
    in_table.sort();
    assert_eq!(on_disk, in_table);
}

#[test]
fn missing_file_reports_the_path() {
    let err = Scenario::load("/nonexistent/nope.json").unwrap_err();
    assert_eq!(err.path, "scenario");
    assert!(err.message.contains("cannot read"), "{err}");
}
