//! End-to-end CLI checks for the introspection surface: `spm --serve`
//! answers live HTTP scrapes with valid Prometheus text and trace JSON,
//! and `spm --trace-chrome` writes a parseable trace-event file.
//!
//! The binary is located through `CARGO_BIN_EXE_spm`, so these tests
//! exercise exactly what a user runs. When the telemetry `capture`
//! feature is compiled out, `--serve` exits non-zero and the tests
//! degrade to checking that failure mode.

use std::io::{BufRead, BufReader, Read, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use metis_bench::json::Json;
use metis_telemetry::validate_prometheus;

/// Kills the child on scope exit so a failing assertion cannot leak a
/// parked `--serve` process.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spm() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_spm"));
    cmd.args([
        "--network",
        "sub-b4",
        "--requests",
        "25",
        "--seed",
        "3",
        "--theta",
        "3",
    ]);
    cmd
}

fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to spm --serve");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: metis\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

#[test]
fn spm_serve_answers_live_scrapes() {
    let child = spm()
        .args(["--serve", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn spm");
    let mut child = KillOnDrop(child);
    let stdout = child.0.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();

    // The bound address is printed before the solve starts.
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.strip_prefix("serving telemetry on http://") {
                    break rest.trim_end_matches("/metrics").to_string();
                }
            }
            _ => {
                // Stdout closed without the banner: --serve unsupported
                // (capture feature compiled out). The process must have
                // failed rather than silently served nothing.
                let status = child.0.wait().expect("wait for spm");
                assert!(!status.success());
                return;
            }
        }
    };
    // Drain the remaining output so the child never blocks on a full pipe.
    let drain = std::thread::spawn(move || for _ in lines.by_ref() {});

    // Scrape immediately: mid-run and post-run snapshots are equally
    // valid, so no synchronization with the solve is needed.
    let (status, metrics) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    validate_prometheus(&metrics).expect("live /metrics must be valid Prometheus text");
    assert!(metrics.contains("metis_telemetry_http_requests"));

    let (status, trace) = http_get(&addr, "/trace.json");
    assert_eq!(status, 200);
    let doc = Json::parse(&trace).expect("/trace.json must be valid JSON");
    assert!(doc.get("traceEvents").and_then(Json::as_arr).is_some());

    let (status, snapshot) = http_get(&addr, "/snapshot.json");
    assert_eq!(status, 200);
    Json::parse(&snapshot).expect("/snapshot.json must be valid JSON");

    drop(child); // kill the parked server
    drain.join().expect("drain thread");
}

#[test]
fn spm_trace_chrome_writes_parseable_file() {
    let path = std::env::temp_dir().join(format!("metis_trace_chrome_{}.json", std::process::id()));
    let output = spm()
        .args(["--trace-chrome", path.to_str().expect("utf-8 temp path")])
        .output()
        .expect("run spm");
    assert!(output.status.success(), "spm failed: {output:?}");
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let doc = Json::parse(&text).expect("trace-chrome output must be valid JSON");
            let events = doc
                .get("traceEvents")
                .and_then(Json::as_arr)
                .expect("traceEvents array");
            assert!(!events.is_empty());
            let _ = std::fs::remove_file(&path);
        }
        Err(_) => {
            // Capture compiled out: the run still succeeds but warns on
            // stderr instead of writing the file.
            let stderr = String::from_utf8_lossy(&output.stderr);
            assert!(stderr.contains("not written") || stderr.contains("compiled out"));
        }
    }
}
