//! Experiment harness for the Metis reproduction: one module and one
//! binary per paper figure, plus ablations and Criterion benchmarks.
//!
//! Binaries (all support `--quick` for a reduced sweep):
//!
//! * `fig3` — Metis vs OPT(SPM) vs OPT(RL-SPM) on SUB-B4 (Fig. 3a–c and
//!   the §V-B1 timing claim);
//! * `fig4` — MAA vs MinCost cost, rounding-ratio distribution, TAA vs
//!   Amoeba revenue/acceptance on B4 (Fig. 4a–d);
//! * `fig5` — Metis vs EcoFlow profit/acceptance/utilization on B4
//!   (Fig. 5a–c);
//! * `ablation` — limiter-rule, θ, path-count, and rounding sweeps.
//!
//! Each binary prints aligned tables and writes CSVs under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments {
    //! Per-figure experiment drivers.
    pub mod ablation;
    pub mod fig3;
    pub mod fig4;
    pub mod fig5;
    pub mod robustness;
}
pub mod json;
pub mod report;
pub mod runner;

/// Directory where the figure binaries drop their CSVs.
pub const RESULTS_DIR: &str = "results";

/// Returns true when `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}
