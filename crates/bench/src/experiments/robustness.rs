//! Beyond the paper: does the Metis > serve-all > greedy ordering
//! survive on WANs that are not B4?
//!
//! Runs the headline comparison on Abilene (flat NA pricing), the GÉANT
//! model (European, one transatlantic peering), and seeded random WANs
//! with mixed-region pricing.

use metis_baselines::ecoflow;
use metis_core::{maa, metis, MaaOptions, MetisConfig, SpmInstance};
use metis_netsim::{topologies, Topology};
use metis_workload::{generate, WorkloadConfig};

use crate::report::{f2, mean, Table};
use crate::runner::run_seeds;

/// Options for the robustness sweep.
#[derive(Clone, Debug)]
pub struct RobustnessOptions {
    /// Requests per cycle.
    pub k: usize,
    /// Workload seeds.
    pub seeds: Vec<u64>,
    /// Metis alternation rounds.
    pub theta: usize,
}

impl Default for RobustnessOptions {
    fn default() -> Self {
        RobustnessOptions {
            k: 300,
            seeds: vec![1, 2, 3],
            theta: 8,
        }
    }
}

fn networks() -> Vec<(String, Topology)> {
    vec![
        ("B4".into(), topologies::b4()),
        ("SUB-B4".into(), topologies::sub_b4()),
        ("Abilene".into(), topologies::abilene()),
        ("GEANT".into(), topologies::geant()),
        ("random(10,6)".into(), topologies::random_wan(10, 6, 42)),
        ("random(16,10)".into(), topologies::random_wan(16, 10, 43)),
    ]
}

/// One per-seed measurement row: (metis profit, serve-all profit,
/// ecoflow profit, metis accepted).
type SeedRow = (f64, f64, f64, f64);

/// Runs the sweep; one row per network.
pub fn run(options: &RobustnessOptions) -> Table {
    let mut table = Table::new(
        format!(
            "Robustness — Metis vs serve-all vs EcoFlow across WANs (K={}, mean over seeds)",
            options.k
        ),
        &[
            "network",
            "Metis profit",
            "serve-all profit",
            "EcoFlow profit",
            "Metis accepted",
        ],
    );
    for (name, topo) in networks() {
        let rows = run_seeds(&options.seeds, |seed| {
            let requests = generate(&topo, &WorkloadConfig::paper(options.k, seed));
            let instance = SpmInstance::with_catalog(
                topo.clone(),
                requests,
                12,
                &metis_netsim::PathCatalog::build(&topo, 3, metis_netsim::PathMetric::Price),
            );
            let m = metis(&instance, &MetisConfig::with_theta(options.theta)).expect("metis");
            let all = maa(&instance, &vec![true; options.k], &MaaOptions::default()).expect("maa");
            let eco = ecoflow(&instance).evaluate(&instance);
            (
                m.evaluation.profit,
                all.evaluation.revenue - all.evaluation.cost,
                eco.profit,
                m.evaluation.accepted as f64,
            )
        });
        let col = |f: &dyn Fn(&SeedRow) -> f64| mean(&rows.iter().map(f).collect::<Vec<_>>());
        table.push_row(vec![
            name,
            f2(col(&|r| r.0)),
            f2(col(&|r| r.1)),
            f2(col(&|r| r.2)),
            f2(col(&|r| r.3)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metis_dominates_on_every_network() {
        let t = run(&RobustnessOptions {
            k: 60,
            seeds: vec![1],
            theta: 4,
        });
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            let metis_p: f64 = row[1].parse().unwrap();
            let serve_all: f64 = row[2].parse().unwrap();
            assert!(
                metis_p >= serve_all - 1e-6,
                "{}: metis {metis_p} < serve-all {serve_all}",
                row[0]
            );
            assert!(metis_p >= 0.0, "{}: negative metis profit", row[0]);
        }
    }
}
