//! Fig. 4 — component-level evaluation of MAA and TAA on B4.
//!
//! * **4a**: service cost of MAA vs MinCost over the request count.
//!   Paper: MinCost up to 21.1% more expensive, gap grows with K. Our
//!   MinCost is reported under both readings of "reserves exclusive
//!   bandwidth": per-window (lower) and whole-cycle (upper); the paper's
//!   number sits between.
//! * **4b**: distribution of cost(randomized rounding) / cost(optimal)
//!   over many rounding repetitions; the paper reports it always < 1.2.
//! * **4c/4d**: service revenue and accepted requests of TAA vs Amoeba
//!   under uniform 100 Gbps (10-unit) links. Paper: TAA up to +50.4%
//!   revenue and +33% accepted.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use metis_baselines::{amoeba, mincost, mincost_exclusive_evaluation, opt_rlspm};
use metis_core::{maa, solve_rlspm_relaxation, taa, MaaOptions, SpmInstance, TaaOptions};
use metis_lp::{IlpOptions, SolveOptions};
use metis_netsim::{topologies, Topology};
use metis_workload::{generate, WorkloadConfig};

use crate::report::{f2, f3, mean, Table};
use crate::runner::run_seeds;

/// Options for the Fig. 4 experiments.
#[derive(Clone, Debug)]
pub struct Fig4Options {
    /// Request counts for the 4a cost sweep.
    pub cost_ks: Vec<usize>,
    /// Request counts for the 4c/4d revenue sweep.
    pub revenue_ks: Vec<usize>,
    /// Workload seeds.
    pub seeds: Vec<u64>,
    /// Rounding repetitions for 4b (paper: 1000).
    pub rounding_repeats: usize,
    /// Request count for the (exactly solved) 4b instances.
    pub rounding_k: usize,
    /// Uniform link capacity in units for 4c/4d (paper: 10 = 100 Gbps).
    pub capacity_units: f64,
    /// MAA rounding repetitions in the 4a sweep.
    pub maa_repeats: usize,
}

impl Default for Fig4Options {
    fn default() -> Self {
        Fig4Options {
            cost_ks: vec![100, 200, 400, 600, 800],
            revenue_ks: vec![200, 400, 600, 800, 1000],
            seeds: vec![1, 2, 3],
            rounding_repeats: 1000,
            rounding_k: 15,
            capacity_units: 10.0,
            maa_repeats: 8,
        }
    }
}

/// The tables of Fig. 4.
#[derive(Clone, Debug)]
pub struct Fig4Output {
    /// Fig. 4a: MAA vs MinCost cost.
    pub cost: Table,
    /// Fig. 4b: rounding/optimal cost-ratio distribution.
    pub rounding: Table,
    /// Fig. 4c: TAA vs Amoeba revenue.
    pub revenue: Table,
    /// Fig. 4d: TAA vs Amoeba accepted requests.
    pub accepted: Table,
}

/// Runs all four panels.
pub fn run(options: &Fig4Options) -> Fig4Output {
    Fig4Output {
        cost: run_cost(options),
        rounding: run_rounding(options),
        revenue: run_revenue(options).0,
        accepted: run_revenue(options).1,
    }
}

/// Fig. 4a: serve *all* requests; compare bandwidth cost.
pub fn run_cost(options: &Fig4Options) -> Table {
    let mut table = Table::new(
        "Fig. 4a — service cost on B4, all requests served (mean over seeds)",
        &[
            "K",
            "MAA",
            "LP bound",
            "MinCost(window)",
            "MinCost(cycle)",
            "win/MAA",
            "cyc/MAA",
        ],
    );
    for &k in &options.cost_ks {
        let rows = run_seeds(&options.seeds, |seed| {
            let topo = topologies::b4();
            let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
            let instance = SpmInstance::new(topo, requests, 12, 3);
            let accepted = vec![true; k];
            let m = maa(
                &instance,
                &accepted,
                &MaaOptions {
                    rounding_repeats: options.maa_repeats,
                    seed,
                    ..MaaOptions::default()
                },
            )
            .expect("maa");
            let mc_win = mincost(&instance).evaluate(&instance).cost;
            let mc_cyc = mincost_exclusive_evaluation(&instance).cost;
            (m.evaluation.cost, m.relaxation.cost, mc_win, mc_cyc)
        });
        let maa_c = mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let lp_c = mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let win_c = mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        let cyc_c = mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>());
        table.push_row(vec![
            k.to_string(),
            f2(maa_c),
            f2(lp_c),
            f2(win_c),
            f2(cyc_c),
            f3(win_c / maa_c),
            f3(cyc_c / maa_c),
        ]);
    }
    table
}

/// Fig. 4b: rounding-cost / optimal-cost distribution on both networks.
pub fn run_rounding(options: &Fig4Options) -> Table {
    let mut table = Table::new(
        format!(
            "Fig. 4b — cost(randomized rounding)/cost(optimal), {} repetitions",
            options.rounding_repeats
        ),
        &["network", "seed", "min", "mean", "p95", "max", "optimal?"],
    );
    let nets: Vec<(&str, Topology)> =
        vec![("SUB-B4", topologies::sub_b4()), ("B4", topologies::b4())];
    for (name, topo) in nets {
        for &seed in &options.seeds {
            let requests = generate(&topo, &WorkloadConfig::paper(options.rounding_k, seed));
            let instance = SpmInstance::new(topo.clone(), requests, 12, 2);
            let accepted = vec![true; options.rounding_k];

            // Denominator: the exact OPT(RL-SPM) cost.
            let opt = opt_rlspm(&instance, &IlpOptions::default()).expect("opt_rlspm");
            let denom = opt.evaluation.cost.max(1e-12);

            // Numerators: independent roundings of the shared relaxation.
            let relaxation = solve_rlspm_relaxation(&instance, &accepted, &SolveOptions::default())
                .expect("relaxation");
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let mut ratios: Vec<f64> = (0..options.rounding_repeats)
                .map(|_| {
                    let schedule =
                        metis_core::round_schedule(&instance, &accepted, &relaxation.x, &mut rng);
                    schedule.load(&instance).total_cost(instance.topology()) / denom
                })
                .collect();
            ratios.sort_by(|a, b| a.total_cmp(b));
            let p95 = ratios[(ratios.len() as f64 * 0.95) as usize - 1];
            table.push_row(vec![
                format!("{name} K={}", options.rounding_k),
                seed.to_string(),
                f3(ratios[0]),
                f3(mean(&ratios)),
                f3(p95),
                f3(*ratios.last().unwrap()),
                opt.optimal.to_string(),
            ]);
        }
    }

    // At evaluation scale the exact MILP is out of reach; use the LP
    // relaxation as the denominator instead. cost/LP ≥ cost/OPT, so these
    // rows over-estimate the true ratio — staying under the paper's 1.2
    // here is the stronger statement.
    for &k in &[100usize, 400] {
        for &seed in options.seeds.iter().take(1) {
            let topo = topologies::b4();
            let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
            let instance = SpmInstance::new(topo, requests, 12, 3);
            let accepted = vec![true; k];
            let relaxation = solve_rlspm_relaxation(&instance, &accepted, &SolveOptions::default())
                .expect("relaxation");
            let denom = relaxation.cost.max(1e-12);
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let reps = options.rounding_repeats.min(200);
            let mut ratios: Vec<f64> = (0..reps)
                .map(|_| {
                    let schedule =
                        metis_core::round_schedule(&instance, &accepted, &relaxation.x, &mut rng);
                    schedule.load(&instance).total_cost(instance.topology()) / denom
                })
                .collect();
            ratios.sort_by(|a, b| a.total_cmp(b));
            let p95 = ratios[(ratios.len() as f64 * 0.95) as usize - 1];
            table.push_row(vec![
                format!("B4 K={k} (vs LP)"),
                seed.to_string(),
                f3(ratios[0]),
                f3(mean(&ratios)),
                f3(p95),
                f3(*ratios.last().unwrap()),
                "lp-bound".to_string(),
            ]);
        }
    }
    table
}

/// Fig. 4c + 4d: TAA vs Amoeba under uniform capacities.
pub fn run_revenue(options: &Fig4Options) -> (Table, Table) {
    let mut revenue = Table::new(
        "Fig. 4c — service revenue on B4, uniform 10-unit links",
        &["K", "TAA", "Amoeba", "TAA/Amoeba", "LP bound"],
    );
    let mut accepted = Table::new(
        "Fig. 4d — accepted requests on B4, uniform 10-unit links",
        &["K", "TAA", "Amoeba", "TAA/Amoeba"],
    );
    for &k in &options.revenue_ks {
        let rows = run_seeds(&options.seeds, |seed| {
            let topo = topologies::b4();
            let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
            let instance = SpmInstance::new(topo, requests, 12, 3);
            let caps = vec![options.capacity_units; instance.topology().num_edges()];
            let t = taa(&instance, &caps, &TaaOptions::default()).expect("taa");
            let a = amoeba(&instance, &caps).evaluate(&instance);
            (
                t.evaluation.revenue,
                t.evaluation.accepted as f64,
                t.relaxation.revenue,
                a.revenue,
                a.accepted as f64,
            )
        });
        let t_rev = mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let t_acc = mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let lp = mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        let a_rev = mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>());
        let a_acc = mean(&rows.iter().map(|r| r.4).collect::<Vec<_>>());
        revenue.push_row(vec![
            k.to_string(),
            f2(t_rev),
            f2(a_rev),
            f3(t_rev / a_rev),
            f2(lp),
        ]);
        accepted.push_row(vec![k.to_string(), f2(t_acc), f2(a_acc), f3(t_acc / a_acc)]);
    }
    (revenue, accepted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig4Options {
        Fig4Options {
            cost_ks: vec![40],
            revenue_ks: vec![40],
            seeds: vec![1],
            rounding_repeats: 20,
            rounding_k: 8,
            capacity_units: 10.0,
            maa_repeats: 2,
        }
    }

    #[test]
    fn cost_table_shows_mincost_dominating_maa() {
        let t = run_cost(&tiny());
        let win_ratio: f64 = t.rows[0][5].parse().unwrap();
        let cyc_ratio: f64 = t.rows[0][6].parse().unwrap();
        assert!(
            win_ratio >= 0.95,
            "windowed MinCost ≈≥ MAA, got {win_ratio}"
        );
        assert!(
            cyc_ratio >= win_ratio,
            "cycle reading costs at least windowed"
        );
    }

    #[test]
    fn rounding_ratios_are_at_least_one_ish() {
        let t = run_rounding(&tiny());
        for row in &t.rows {
            let min: f64 = row[2].parse().unwrap();
            assert!(min > 0.8, "rounding can't massively beat the optimum");
        }
    }

    #[test]
    fn revenue_tables_have_consistent_ratios() {
        let (rev, acc) = run_revenue(&tiny());
        let r: f64 = rev.rows[0][3].parse().unwrap();
        assert!(r > 0.5 && r < 2.5);
        assert_eq!(acc.rows.len(), 1);
    }
}
