//! Fig. 3 — Metis vs the exact optima on SUB-B4.
//!
//! * **3a**: service profit of OPT(SPM), Metis, OPT(RL-SPM) over the
//!   request count. Paper: Metis ≈ 11% below OPT(SPM) and ≈ 32% above
//!   OPT(RL-SPM).
//! * **3b**: number of accepted requests (OPT(RL-SPM) accepts all).
//! * **3c**: min/avg/max link utilization per solution.
//! * **§V-B1 timing**: OPT needs orders of magnitude longer than Metis.
//!
//! The exact solver here is this workspace's branch-and-bound (the paper
//! used Gurobi); runs are time-limited and warm-started, and the report
//! carries the proven bound so cut-short solves are visible.

use std::time::Duration;

use metis_baselines::{opt_rlspm, opt_spm_with_start};
use metis_core::{metis_instrumented, FaultPlan, MetisConfig, SpmInstance};
use metis_lp::IlpOptions;
use metis_netsim::topologies;
use metis_telemetry::{names, Telemetry};
use metis_workload::{generate, WorkloadConfig};

use crate::report::{f2, mean, Table};
use crate::runner::run_seeds;

/// Options for the Fig. 3 experiment.
#[derive(Clone, Debug)]
pub struct Fig3Options {
    /// Request counts (x-axis).
    pub ks: Vec<usize>,
    /// Workload seeds; series are seed means.
    pub seeds: Vec<u64>,
    /// Wall-clock budget per exact MILP solve.
    pub opt_time_limit: Duration,
    /// Metis alternation rounds θ.
    pub theta: usize,
    /// Candidate paths per DC pair.
    pub paths_per_pair: usize,
}

impl Default for Fig3Options {
    fn default() -> Self {
        Fig3Options {
            ks: vec![100, 200, 300, 400],
            seeds: vec![1, 2, 3],
            opt_time_limit: Duration::from_secs(60),
            theta: 8,
            paths_per_pair: 3,
        }
    }
}

/// One (K, seed) measurement.
#[derive(Clone, Debug)]
struct Point {
    metis_profit: f64,
    metis_accepted: f64,
    metis_util: [f64; 3],
    metis_secs: f64,
    opt_profit: f64,
    opt_bound: f64,
    opt_accepted: f64,
    opt_util: [f64; 3],
    opt_secs: f64,
    opt_optimal: bool,
    rl_profit: f64,
    rl_accepted: f64,
    rl_util: [f64; 3],
    rl_secs: f64,
}

/// The four tables of Fig. 3 plus the timing claim.
#[derive(Clone, Debug)]
pub struct Fig3Output {
    /// Fig. 3a: profit series.
    pub profit: Table,
    /// Fig. 3b: accepted-request series.
    pub accepted: Table,
    /// Fig. 3c: utilization series.
    pub utilization: Table,
    /// §V-B1: computing-time series.
    pub timing: Table,
}

/// Runs the Fig. 3 experiment.
pub fn run(options: &Fig3Options) -> Fig3Output {
    let mut profit = Table::new(
        "Fig. 3a — service profit on SUB-B4 (mean over seeds)",
        &[
            "K",
            "OPT(SPM)",
            "OPT(SPM) bound",
            "Metis",
            "OPT(RL-SPM)",
            "Metis/OPT",
            "Metis/RL",
        ],
    );
    let mut accepted = Table::new(
        "Fig. 3b — accepted requests on SUB-B4",
        &["K", "OPT(SPM)", "Metis", "OPT(RL-SPM)"],
    );
    let mut utilization = Table::new(
        "Fig. 3c — link utilization on SUB-B4 (min/avg/max)",
        &["K", "OPT(SPM)", "Metis", "OPT(RL-SPM)"],
    );
    let mut timing = Table::new(
        "§V-B1 — computing time (seconds; OPT runs are capped)",
        &["K", "Metis", "OPT(SPM)", "OPT proven optimal"],
    );

    for &k in &options.ks {
        let points = run_seeds(&options.seeds, |seed| measure(k, seed, options));
        let g = |f: &dyn Fn(&Point) -> f64| mean(&points.iter().map(f).collect::<Vec<_>>());
        let all_optimal = points.iter().all(|p| p.opt_optimal);

        let metis_p = g(&|p| p.metis_profit);
        let opt_p = g(&|p| p.opt_profit);
        let rl_p = g(&|p| p.rl_profit);
        profit.push_row(vec![
            k.to_string(),
            f2(opt_p),
            f2(g(&|p| p.opt_bound)),
            f2(metis_p),
            f2(rl_p),
            f2(if opt_p.abs() > 1e-12 {
                metis_p / opt_p
            } else {
                1.0
            }),
            f2(if rl_p.abs() > 1e-12 {
                metis_p / rl_p
            } else {
                f64::NAN
            }),
        ]);
        accepted.push_row(vec![
            k.to_string(),
            f2(g(&|p| p.opt_accepted)),
            f2(g(&|p| p.metis_accepted)),
            f2(g(&|p| p.rl_accepted)),
        ]);
        let util = |sel: &dyn Fn(&Point) -> [f64; 3]| {
            let cols: Vec<[f64; 3]> = points.iter().map(sel).collect();
            format!(
                "{:.2}/{:.2}/{:.2}",
                mean(&cols.iter().map(|u| u[0]).collect::<Vec<_>>()),
                mean(&cols.iter().map(|u| u[1]).collect::<Vec<_>>()),
                mean(&cols.iter().map(|u| u[2]).collect::<Vec<_>>()),
            )
        };
        utilization.push_row(vec![
            k.to_string(),
            util(&|p| p.opt_util),
            util(&|p| p.metis_util),
            util(&|p| p.rl_util),
        ]);
        timing.push_row(vec![
            k.to_string(),
            format!("{:.3}", g(&|p| p.metis_secs)),
            format!("{:.1}", g(&|p| p.opt_secs + p.rl_secs)),
            all_optimal.to_string(),
        ]);
    }

    Fig3Output {
        profit,
        accepted,
        utilization,
        timing,
    }
}

/// Span wrapping each exact-MILP baseline solve (Metis itself reports
/// under its own [`names::SPAN_METIS`] span).
const SPAN_OPT_SPM: &str = "opt.spm";
const SPAN_OPT_RLSPM: &str = "opt.rlspm";

fn measure(k: usize, seed: u64, options: &Fig3Options) -> Point {
    let topo = topologies::sub_b4();
    let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
    let instance = SpmInstance::new(topo, requests, 12, options.paths_per_pair);

    // All phase timings come from one span collector instead of ad-hoc
    // `Instant` pairs; with the telemetry `capture` feature compiled out
    // the timings degrade to 0 (the experiment's economics are unchanged).
    let tele = Telemetry::enabled();
    let m = metis_instrumented(
        &instance,
        &MetisConfig::with_theta(options.theta),
        &FaultPlan::none(),
        &tele,
    )
    .expect("metis");

    let ilp = IlpOptions {
        time_limit: Some(options.opt_time_limit),
        ..IlpOptions::default()
    };
    let opt = {
        let _s = tele.span(SPAN_OPT_SPM);
        opt_spm_with_start(&instance, &ilp, &m.schedule).expect("opt_spm")
    };
    let rl = {
        let _s = tele.span(SPAN_OPT_RLSPM);
        opt_rlspm(&instance, &ilp).expect("opt_rlspm")
    };
    let snap = tele.snapshot();
    let secs = |name: &str| snap.as_ref().map_or(0.0, |s| s.span_secs(name));
    let (metis_secs, opt_secs, rl_secs) = (
        secs(names::SPAN_METIS),
        secs(SPAN_OPT_SPM),
        secs(SPAN_OPT_RLSPM),
    );

    let u = |e: &metis_core::Evaluation| [e.utilization.min, e.utilization.mean, e.utilization.max];
    Point {
        metis_profit: m.evaluation.profit,
        metis_accepted: m.evaluation.accepted as f64,
        metis_util: u(&m.evaluation),
        metis_secs,
        opt_profit: opt.evaluation.profit,
        opt_bound: opt.bound,
        opt_accepted: opt.evaluation.accepted as f64,
        opt_util: u(&opt.evaluation),
        opt_secs,
        opt_optimal: opt.optimal,
        rl_profit: rl.evaluation.revenue - rl.evaluation.cost,
        rl_accepted: rl.evaluation.accepted as f64,
        rl_util: u(&rl.evaluation),
        rl_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_all_tables() {
        let opts = Fig3Options {
            ks: vec![30],
            seeds: vec![1],
            opt_time_limit: Duration::from_secs(2),
            theta: 2,
            paths_per_pair: 2,
        };
        let out = run(&opts);
        assert_eq!(out.profit.rows.len(), 1);
        assert_eq!(out.accepted.rows.len(), 1);
        assert_eq!(out.utilization.rows.len(), 1);
        assert_eq!(out.timing.rows.len(), 1);
        // OPT(SPM) is warm-started with Metis, so its profit column is ≥
        // the Metis column.
        let opt: f64 = out.profit.rows[0][1].parse().unwrap();
        let metis: f64 = out.profit.rows[0][3].parse().unwrap();
        assert!(opt >= metis - 1e-6);
    }
}
