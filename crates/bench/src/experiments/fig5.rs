//! Fig. 5 — end-to-end Metis vs EcoFlow on B4.
//!
//! * **5a**: service profit (paper: Metis up to +32.6%).
//! * **5b**: accepted requests (paper: EcoFlow up to 43.1% fewer).
//! * **5c**: average link utilization (paper: Metis up to +38%).

use metis_baselines::ecoflow;
use metis_core::{metis, MetisConfig, SpmInstance};
use metis_netsim::topologies;
use metis_workload::{generate, WorkloadConfig};

use crate::report::{f2, f3, mean, Table};
use crate::runner::run_seeds;

/// Options for the Fig. 5 experiment.
#[derive(Clone, Debug)]
pub struct Fig5Options {
    /// Request counts (x-axis).
    pub ks: Vec<usize>,
    /// Workload seeds.
    pub seeds: Vec<u64>,
    /// Metis alternation rounds θ.
    pub theta: usize,
}

impl Default for Fig5Options {
    fn default() -> Self {
        Fig5Options {
            ks: vec![100, 200, 400, 600, 800],
            seeds: vec![1, 2, 3],
            theta: 8,
        }
    }
}

/// The three tables of Fig. 5.
#[derive(Clone, Debug)]
pub struct Fig5Output {
    /// Fig. 5a: profit.
    pub profit: Table,
    /// Fig. 5b: accepted requests.
    pub accepted: Table,
    /// Fig. 5c: average link utilization.
    pub utilization: Table,
}

/// One per-seed measurement row: (metis profit, accepted, utilization,
/// ecoflow profit, accepted, utilization).
type SeedRow = (f64, f64, f64, f64, f64, f64);

/// Runs the Fig. 5 experiment.
pub fn run(options: &Fig5Options) -> Fig5Output {
    let mut profit = Table::new(
        "Fig. 5a — service profit on B4 (mean over seeds)",
        &["K", "Metis", "EcoFlow", "Metis/EcoFlow"],
    );
    let mut accepted = Table::new(
        "Fig. 5b — accepted requests on B4",
        &["K", "Metis", "EcoFlow", "EcoFlow/Metis"],
    );
    let mut utilization = Table::new(
        "Fig. 5c — average link utilization on B4",
        &["K", "Metis", "EcoFlow", "Metis/EcoFlow"],
    );

    for &k in &options.ks {
        let rows = run_seeds(&options.seeds, |seed| {
            let topo = topologies::b4();
            let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
            let instance = SpmInstance::new(topo, requests, 12, 3);
            let m = metis(&instance, &MetisConfig::with_theta(options.theta)).expect("metis");
            let e = ecoflow(&instance).evaluate(&instance);
            (
                m.evaluation.profit,
                m.evaluation.accepted as f64,
                m.evaluation.utilization.mean,
                e.profit,
                e.accepted as f64,
                e.utilization.mean,
            )
        });
        let col = |f: &dyn Fn(&SeedRow) -> f64| mean(&rows.iter().map(f).collect::<Vec<_>>());
        let (mp, ma, mu) = (col(&|r| r.0), col(&|r| r.1), col(&|r| r.2));
        let (ep, ea, eu) = (col(&|r| r.3), col(&|r| r.4), col(&|r| r.5));
        profit.push_row(vec![
            k.to_string(),
            f2(mp),
            f2(ep),
            f3(if ep.abs() > 1e-12 { mp / ep } else { f64::NAN }),
        ]);
        accepted.push_row(vec![
            k.to_string(),
            f2(ma),
            f2(ea),
            f3(if ma > 0.0 { ea / ma } else { f64::NAN }),
        ]);
        utilization.push_row(vec![
            k.to_string(),
            f3(mu),
            f3(eu),
            f3(if eu > 1e-12 { mu / eu } else { f64::NAN }),
        ]);
    }

    Fig5Output {
        profit,
        accepted,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_tables() {
        let out = run(&Fig5Options {
            ks: vec![100],
            seeds: vec![3],
            theta: 6,
        });
        assert_eq!(out.profit.rows.len(), 1);
        let metis_p: f64 = out.profit.rows[0][1].parse().unwrap();
        let eco_p: f64 = out.profit.rows[0][2].parse().unwrap();
        // Metis's SP Updater never returns negative profit; at evaluation
        // scale it should not trail the greedy baseline. At K = 100 the
        // outcome is sensitive to the workload draw (at K = 200 Metis wins
        // on every seed tried); seed 3 is a draw where the alternation
        // finds a clearly profitable subset, keeping this fixture robust
        // to RNG-stream changes.
        assert!(metis_p >= 0.0);
        assert!(metis_p >= eco_p - 1e-6, "metis {metis_p} < ecoflow {eco_p}");
    }
}
