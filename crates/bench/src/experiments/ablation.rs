//! Ablations over the design knobs DESIGN.md calls out: the BW-limiter
//! rule `τ`, the alternation depth `θ`, the candidate-path count, and the
//! MAA rounding repetitions. None of these appear as paper figures; they
//! substantiate the paper's claim that providers can tune `τ` and `θ`
//! "based on their actual needs".

use metis_core::{maa, metis, LimiterRule, MaaOptions, MetisConfig, SpmInstance};
use metis_netsim::topologies;
use metis_workload::{generate, WorkloadConfig};

use crate::report::{f2, f3, mean, Table};
use crate::runner::run_seeds;

/// Options shared by the ablations.
#[derive(Clone, Debug)]
pub struct AblationOptions {
    /// Request count for each run.
    pub k: usize,
    /// Workload seeds.
    pub seeds: Vec<u64>,
}

impl Default for AblationOptions {
    fn default() -> Self {
        AblationOptions {
            k: 400,
            seeds: vec![1, 2, 3],
        }
    }
}

/// Profit under each limiter rule `τ` at a fixed `θ`.
pub fn limiter_rules(options: &AblationOptions) -> Table {
    let mut table = Table::new(
        format!("Ablation — BW-limiter rule τ (B4, K={}, θ=8)", options.k),
        &["rule", "profit", "accepted"],
    );
    for (name, rule) in [
        ("min-utilization (paper)", LimiterRule::MinUtilization),
        ("max-price", LimiterRule::MaxPrice),
        ("uniform-shrink", LimiterRule::UniformShrink),
    ] {
        let rows = run_seeds(&options.seeds, |seed| {
            let instance = b4_instance(options.k, seed);
            let config = MetisConfig {
                theta: 8,
                limiter: rule,
                ..MetisConfig::default()
            };
            let m = metis(&instance, &config).expect("metis");
            (m.evaluation.profit, m.evaluation.accepted as f64)
        });
        table.push_row(vec![
            name.to_string(),
            f2(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
        ]);
    }
    table
}

/// Profit as the alternation depth `θ` grows (convergence claim, §II-C).
pub fn theta_sweep(options: &AblationOptions) -> Table {
    let mut table = Table::new(
        format!("Ablation — alternation depth θ (B4, K={})", options.k),
        &["theta", "profit", "accepted", "rounds run"],
    );
    for theta in [0usize, 1, 2, 4, 8, 16] {
        let rows = run_seeds(&options.seeds, |seed| {
            let instance = b4_instance(options.k, seed);
            let m = metis(&instance, &MetisConfig::with_theta(theta)).expect("metis");
            (
                m.evaluation.profit,
                m.evaluation.accepted as f64,
                m.rounds as f64,
            )
        });
        table.push_row(vec![
            theta.to_string(),
            f2(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>())),
        ]);
    }
    table
}

/// MAA cost as the candidate-path count per pair grows.
pub fn path_count_sweep(options: &AblationOptions) -> Table {
    let mut table = Table::new(
        format!("Ablation — candidate paths per pair (B4, K={})", options.k),
        &["paths", "MAA cost", "LP bound", "cost/LP"],
    );
    for paths in [1usize, 2, 3, 4, 5] {
        let rows = run_seeds(&options.seeds, |seed| {
            let topo = topologies::b4();
            let requests = generate(&topo, &WorkloadConfig::paper(options.k, seed));
            let instance = SpmInstance::new(topo, requests, 12, paths);
            let accepted = vec![true; options.k];
            let m = maa(&instance, &accepted, &MaaOptions::default()).expect("maa");
            (m.evaluation.cost, m.relaxation.cost)
        });
        let cost = mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let lp = mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        table.push_row(vec![paths.to_string(), f2(cost), f2(lp), f3(cost / lp)]);
    }
    table
}

/// MAA cost as the best-of-R rounding repetitions grow.
pub fn rounding_repeats_sweep(options: &AblationOptions) -> Table {
    let mut table = Table::new(
        format!("Ablation — MAA rounding repetitions (B4, K={})", options.k),
        &["repeats", "MAA cost", "cost/LP"],
    );
    for repeats in [1usize, 4, 16, 64] {
        let rows = run_seeds(&options.seeds, |seed| {
            let instance = b4_instance(options.k, seed);
            let accepted = vec![true; options.k];
            let m = maa(
                &instance,
                &accepted,
                &MaaOptions {
                    rounding_repeats: repeats,
                    seed,
                    ..MaaOptions::default()
                },
            )
            .expect("maa");
            (m.evaluation.cost, m.relaxation.cost)
        });
        let cost = mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let lp = mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        table.push_row(vec![repeats.to_string(), f2(cost), f3(cost / lp)]);
    }
    table
}

fn b4_instance(k: usize, seed: u64) -> SpmInstance {
    let topo = topologies::b4();
    let requests = generate(&topo, &WorkloadConfig::paper(k, seed));
    SpmInstance::new(topo, requests, 12, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationOptions {
        AblationOptions {
            k: 40,
            seeds: vec![1],
        }
    }

    #[test]
    fn limiter_table_has_three_rules() {
        assert_eq!(limiter_rules(&tiny()).rows.len(), 3);
    }

    #[test]
    fn theta_profit_is_monotone_nondecreasing() {
        let t = theta_sweep(&tiny());
        let profits: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for w in profits.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "SP Updater record cannot regress");
        }
    }

    #[test]
    fn more_paths_never_worsen_lp_bound() {
        let t = path_count_sweep(&tiny());
        let lps: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        for w in lps.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "bigger path sets only relax the LP");
        }
    }
}
