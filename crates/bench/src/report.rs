//! Plain-text and CSV table output for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use metis_telemetry::Snapshot;

/// A rectangular results table: one row per x-axis point, one column per
/// series — mirroring how the paper's figures are plotted.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table caption (e.g. `"Fig. 3a — service profit (SUB-B4)"`).
    pub title: String,
    /// Column headers; the first column is the x-axis.
    pub columns: Vec<String>,
    /// Row-major cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    out.push_str("  ");
                }
                first = false;
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.columns);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (no quoting needed for numeric cells).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV next to the other results.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: impl AsRef<Path>, name: &str) -> io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        fs::write(dir.join(name), self.to_csv())
    }
}

/// Builds the per-phase wall-clock table from a telemetry snapshot's
/// span aggregates — the drivers' replacement for ad-hoc
/// `Instant::now()` bookkeeping: whatever ran under a span shows up
/// here with call counts and total/mean/min/max durations.
pub fn phase_timing_table(snapshot: &Snapshot) -> Table {
    let mut t = Table::new(
        "Per-phase wall clock (telemetry spans)",
        &["span", "calls", "total ms", "mean us", "min us", "max us"],
    );
    for span in &snapshot.spans {
        let mean_us = if span.count == 0 {
            0.0
        } else {
            span.total_us as f64 / span.count as f64
        };
        t.push_row(vec![
            span.name.clone(),
            span.count.to_string(),
            f2(span.total_us as f64 / 1_000.0),
            f2(mean_us),
            span.min_us.to_string(),
            span.max_us.to_string(),
        ]);
    }
    t
}

/// Builds the LP-engine work table from a telemetry snapshot: pivot
/// counts, basis-factorization activity (refactorizations, eta updates,
/// factor nonzeros), and pricing effort, as recorded by the `lp.*`
/// counters and gauges.
pub fn lp_stats_table(snapshot: &Snapshot) -> Table {
    use metis_telemetry::names;
    let mut t = Table::new("LP engine (telemetry counters)", &["metric", "value"]);
    let counters: [(&str, &str); 11] = [
        ("simplex pivots", names::LP_SIMPLEX_ITERATIONS),
        ("phase-1 pivots", names::LP_SIMPLEX_PHASE1),
        ("dual pivots", names::LP_SIMPLEX_DUAL),
        ("bound flips", names::LP_SIMPLEX_BOUND_FLIPS),
        ("refactorizations", names::LP_SIMPLEX_REFRESHES),
        ("eta updates", names::LP_LU_ETA_UPDATES),
        ("FT spikes", names::LP_LU_FT_SPIKES),
        ("pricing block scans", names::LP_PRICING_BLOCK_SCANS),
        ("devex resets", names::LP_PRICING_DEVEX_RESETS),
        ("Harris expansions", names::LP_RATIO_HARRIS_EXPANSIONS),
        ("scaling passes", names::LP_PRESOLVE_SCALING_PASSES),
    ];
    for (label, name) in counters {
        t.push_row(vec![label.to_string(), snapshot.counter(name).to_string()]);
    }
    for (label, name) in [
        ("last L nnz", names::LP_LU_L_NNZ),
        ("last U nnz", names::LP_LU_U_NNZ),
    ] {
        if let Some(v) = snapshot.gauge(name) {
            t.push_row(vec![label.to_string(), format!("{v:.0}")]);
        }
    }
    t
}

/// Builds the solver convergence table from a run's round trace: one
/// row per attempted solver invocation, showing how the profit record
/// evolved, how hard each LP worked, and which attempts degraded.
pub fn convergence_table(trace: &[metis_core::RoundTrace]) -> Table {
    let mut t = Table::new(
        "Solver convergence (round trace)",
        &[
            "round",
            "phase",
            "status",
            "profit",
            "best",
            "accepted",
            "mu",
            "lp iters",
            "basis",
            "incidents",
        ],
    );
    for e in trace {
        t.push_row(vec![
            e.round.to_string(),
            e.phase.to_string(),
            if e.completed { "ok" } else { "failed" }.to_string(),
            f2(e.profit),
            f2(e.best_profit),
            e.accepted.to_string(),
            e.mu.map_or_else(|| "-".to_string(), f3),
            e.lp_iterations.to_string(),
            if e.warm_started { "warm" } else { "cold" }.to_string(),
            e.incidents.to_string(),
        ]);
    }
    t
}

/// Formats a float with two decimals (the tables' default precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with three decimals (for ratios).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Maximum of a slice (NaN-free input assumed; 0 for empty).
pub fn max(values: &[f64]) -> f64 {
    values.iter().fold(0.0_f64, |a, &b| a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("demo", &["K", "metis", "opt"]);
        t.push_row(vec!["100".into(), f2(7.25), f2(8.5)]);
        t.push_row(vec!["200".into(), f2(43.8), f2(50.0)]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("7.25"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("K,metis,opt"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn phase_table_reads_span_aggregates() {
        let tele = metis_telemetry::Telemetry::enabled();
        {
            let _outer = tele.span("experiment");
            let _inner = tele.span("experiment.solve");
        }
        let Some(snap) = tele.snapshot() else {
            return; // capture feature compiled out: nothing to tabulate
        };
        let t = phase_timing_table(&snap);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows.iter().any(|r| r[0] == "experiment.solve"));
        assert!(t.rows.iter().all(|r| r[1] == "1"));
        assert!(t.render().contains("total ms"));
    }

    #[test]
    fn convergence_table_renders_trace() {
        use metis_core::{Phase, RoundTrace};
        let trace = vec![
            RoundTrace {
                round: 0,
                phase: Phase::Maa,
                completed: true,
                profit: 10.0,
                best_profit: 10.0,
                accepted: 5,
                mu: None,
                lp_iterations: 42,
                warm_started: false,
                incidents: 0,
            },
            RoundTrace {
                round: 1,
                phase: Phase::Taa,
                completed: false,
                profit: 0.0,
                best_profit: 10.0,
                accepted: 0,
                mu: Some(0.5),
                lp_iterations: 0,
                warm_started: true,
                incidents: 1,
            },
        ];
        let t = convergence_table(&trace);
        assert_eq!(t.rows.len(), 2);
        let r = t.render();
        assert!(r.contains("MAA") && r.contains("TAA"));
        assert!(r.contains("failed"));
        assert!(r.contains("0.500"));
        assert!(t.rows[0].contains(&"-".to_string()), "MAA row has no mu");
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(max(&[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(f3(1.0 / 3.0), "0.333");
    }
}
