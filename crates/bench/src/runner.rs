//! Parallel seed sweeps: every figure averages several workload seeds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(seed)` for every seed, in parallel across available cores,
/// returning results in seed order.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn run_seeds<R, F>(seeds: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(seeds.len().max(1));
    if threads <= 1 || seeds.len() <= 1 {
        return seeds.iter().map(|&s| f(s)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = seeds.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            // metis-lint: allow(CONC-01): fans out whole independent experiments, not solver work
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= seeds.len() {
                    break;
                }
                let r = f(seeds[i]);
                *slots[i].lock().expect("slot lock poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock poisoned")
                .expect("every seed produced a result")
        })
        .collect()
}

/// The default seed set used by the figure harnesses.
pub fn default_seeds(n: usize) -> Vec<u64> {
    (1..=n as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_seed_order() {
        let seeds: Vec<u64> = (0..17).collect();
        let out = run_seeds(&seeds, |s| s * 2);
        assert_eq!(out, seeds.iter().map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_seed_runs_inline() {
        assert_eq!(run_seeds(&[7], |s| s + 1), vec![8]);
        assert_eq!(run_seeds::<u64, _>(&[], |s| s), Vec::<u64>::new());
    }

    #[test]
    fn default_seeds_are_distinct() {
        let s = default_seeds(5);
        assert_eq!(s, vec![1, 2, 3, 4, 5]);
    }
}
