//! `zoo` — runs every checked-in scenario and prints the per-scenario
//! experiment table.
//!
//! ```sh
//! cargo run --release -p metis-bench --bin zoo            # scenarios/
//! cargo run --release -p metis-bench --bin zoo -- --dir d # another dir
//! ```
//!
//! Every `*.json` under the scenario directory is loaded with the strict
//! schema loader (an invalid file fails the run — the zoo is only useful
//! if every inhabitant is healthy), solved with `metis` under a full
//! audit, and summarized as one table row. The table lands on stdout and
//! as `results/scenario_zoo.csv`. Exit status is non-zero on any invalid
//! scenario, solver failure, or audit violation.

use metis_bench::report::{f2, Table};
use metis_bench::RESULTS_DIR;
use metis_core::{metis_instrumented, FaultPlan, MetisConfig, SpmInstance};
use metis_telemetry::Telemetry;
use metis_workload::Scenario;

struct Args {
    dir: String,
    serve: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        dir: "scenarios".into(),
        serve: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, name: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {name}");
            std::process::exit(2);
        })
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--dir" => parsed.dir = value(&mut args, "--dir"),
            "--serve" => parsed.serve = Some(value(&mut args, "--serve")),
            "--quick" => {} // accepted for CI symmetry; the zoo is already quick
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: zoo [--dir scenarios] [--serve ADDR] [--quick]"
                );
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let dir = args.dir;

    // One shared registry across every scenario run: scrapers watching
    // the endpoint see the zoo's aggregate counters grow run by run.
    let tele = if args.serve.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let server = args
        .serve
        .as_ref()
        .map(|addr| match tele.serve(addr.as_str()) {
            Ok(s) => {
                println!("serving telemetry on http://{}/metrics", s.addr());
                s
            }
            Err(e) => {
                eprintln!("cannot serve telemetry on {addr}: {e}");
                std::process::exit(1);
            }
        });
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| {
            eprintln!("cannot read scenario directory {dir}: {e}");
            std::process::exit(2);
        })
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("no scenario files under {dir}");
        std::process::exit(2);
    }

    let mut table = Table::new(
        "Scenario zoo — one audited metis run per checked-in scenario",
        &[
            "scenario",
            "family",
            "network",
            "K",
            "T",
            "θ",
            "profit",
            "revenue",
            "cost",
            "accepted",
            "incidents",
        ],
    );
    let mut failures = 0usize;
    for path in &paths {
        let scenario = match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("invalid scenario {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let topo = scenario.build_topology();
        let requests = scenario.generate(&topo);
        let k = requests.len();
        let instance = SpmInstance::new(topo, requests, scenario.num_slots(), scenario.paths);
        let config = MetisConfig {
            audit: true,
            ..MetisConfig::with_theta(scenario.theta)
        };
        let result = match metis_instrumented(&instance, &config, &FaultPlan::none(), &tele) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: metis failed: {e}", scenario.name);
                failures += 1;
                continue;
            }
        };
        if let Some(report) = &result.audit {
            if !report.is_clean() {
                eprintln!(
                    "{}: audit found {} violation(s)",
                    scenario.name,
                    report.violations.len()
                );
                failures += 1;
            }
        }
        table.push_row(vec![
            scenario.name.clone(),
            scenario.family().into(),
            scenario.topology.label(),
            k.to_string(),
            scenario.num_slots().to_string(),
            scenario.theta.to_string(),
            f2(result.evaluation.profit),
            f2(result.evaluation.revenue),
            f2(result.evaluation.cost),
            format!("{}/{k}", result.evaluation.accepted),
            result.incidents.len().to_string(),
        ]);
    }

    println!("{}", table.render());
    if let Err(e) = table.write_csv(RESULTS_DIR, "scenario_zoo.csv") {
        eprintln!("cannot write {RESULTS_DIR}/scenario_zoo.csv: {e}");
    }
    if failures > 0 {
        eprintln!("{failures} scenario(s) failed");
        std::process::exit(1);
    }

    // Keep serving the zoo's aggregate metrics until interrupted.
    if let Some(server) = server {
        eprintln!(
            "zoo complete; still serving http://{}/metrics (Ctrl-C to exit)",
            server.addr()
        );
        loop {
            std::thread::park();
        }
    }
}
