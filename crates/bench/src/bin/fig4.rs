//! Regenerates Fig. 4 (MAA and TAA component evaluation on B4).

use metis_bench::experiments::fig4::{run_cost, run_revenue, run_rounding, Fig4Options};
use metis_bench::{quick_mode, RESULTS_DIR};

fn main() {
    let options = if quick_mode() {
        Fig4Options {
            cost_ks: vec![100, 200],
            revenue_ks: vec![200, 400],
            seeds: vec![1, 2],
            rounding_repeats: 100,
            ..Fig4Options::default()
        }
    } else {
        Fig4Options::default()
    };
    eprintln!(
        "fig4: cost K ∈ {:?}, revenue K ∈ {:?}, {} seeds, {} roundings",
        options.cost_ks,
        options.revenue_ks,
        options.seeds.len(),
        options.rounding_repeats
    );
    let cost = run_cost(&options);
    let rounding = run_rounding(&options);
    let (revenue, accepted) = run_revenue(&options);
    for (table, csv) in [
        (&cost, "fig4a_cost.csv"),
        (&rounding, "fig4b_rounding.csv"),
        (&revenue, "fig4c_revenue.csv"),
        (&accepted, "fig4d_accepted.csv"),
    ] {
        println!("{}", table.render());
        table
            .write_csv(RESULTS_DIR, csv)
            .unwrap_or_else(|e| eprintln!("could not write {csv}: {e}"));
    }
}
