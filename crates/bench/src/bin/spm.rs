//! `spm` — command-line front end for the Metis scheduler.
//!
//! Generates a synthetic billing cycle, runs Metis (and optionally the
//! baselines), and prints the admission decisions as text or JSON.
//!
//! ```sh
//! cargo run --release -p metis-bench --bin spm -- \
//!     --network b4 --requests 200 --seed 7 --theta 8 --compare --json
//! ```

use metis_baselines::{ecoflow, mincost, opt_spm_with_start};
use metis_bench::json::{obj, Json};
use metis_bench::report::{convergence_table, lp_stats_table, phase_timing_table};
use metis_core::{maa, metis_instrumented, FaultPlan, MaaOptions, MetisConfig, SpmInstance};
use metis_lp::IlpOptions;
use metis_telemetry::{to_prometheus, Telemetry};
use metis_workload::{
    FamilySpec, Horizon, RequestId, Scenario, TopologySpec, UniformSpec, ValueModel,
    SCENARIO_VERSION,
};

#[derive(Debug)]
struct Args {
    network: String,
    requests: usize,
    seed: u64,
    theta: usize,
    paths: usize,
    json: bool,
    compare: bool,
    analyze: bool,
    audit: bool,
    opt_seconds: Option<u64>,
    scenario: Option<String>,
    telemetry: Option<String>,
    telemetry_prometheus: Option<String>,
    trace_chrome: Option<String>,
    serve: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            network: "b4".into(),
            requests: 200,
            seed: 1,
            theta: 8,
            paths: 3,
            json: false,
            compare: false,
            analyze: false,
            audit: false,
            opt_seconds: None,
            scenario: None,
            telemetry: None,
            telemetry_prometheus: None,
            trace_chrome: None,
            serve: None,
        }
    }
}

const USAGE: &str = "usage: spm [--network b4|sub-b4] [--requests K] [--seed S] \
[--theta T] [--paths P] [--opt-seconds N] [--compare] [--analyze] [--audit] [--json] [--scenario FILE.json] \
[--telemetry OUT.json] [--telemetry-prometheus OUT.prom] [--trace-chrome OUT.json] [--serve ADDR]\nnetworks: b4, sub-b4, abilene, geant (or a random spec in a scenario file)\n\
--audit certifies every LP solution and re-derives every schedule's load and\naccounting from scratch (always on in debug builds); the report lands in the\noutput (and the exit status: violations fail the run)\n\
--telemetry* flags capture per-phase spans and solver metrics during the run and\nwrite the snapshot to the given file (JSON or Prometheus text format)\n\
--trace-chrome writes the span log as Chrome trace-event JSON (open it in\nui.perfetto.dev or chrome://tracing)\n\
--serve binds an HTTP endpoint (e.g. 127.0.0.1:9184; port 0 picks a free one)\nexposing /metrics, /snapshot.json, and /trace.json, and keeps the process\nalive after the run until interrupted";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {name}\n{USAGE}"))
        };
        match flag.as_str() {
            "--network" => args.network = value("--network")?,
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--theta" => {
                args.theta = value("--theta")?
                    .parse()
                    .map_err(|e| format!("--theta: {e}"))?
            }
            "--paths" => {
                args.paths = value("--paths")?
                    .parse()
                    .map_err(|e| format!("--paths: {e}"))?
            }
            "--opt-seconds" => {
                args.opt_seconds = Some(
                    value("--opt-seconds")?
                        .parse()
                        .map_err(|e| format!("--opt-seconds: {e}"))?,
                )
            }
            "--json" => args.json = true,
            "--compare" => args.compare = true,
            "--analyze" => args.analyze = true,
            "--audit" => args.audit = true,
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--telemetry" => args.telemetry = Some(value("--telemetry")?),
            "--telemetry-prometheus" => {
                args.telemetry_prometheus = Some(value("--telemetry-prometheus")?)
            }
            "--trace-chrome" => args.trace_chrome = Some(value("--trace-chrome")?),
            "--serve" => args.serve = Some(value("--serve")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

struct DecisionOut {
    request: u32,
    src: String,
    dst: String,
    start: usize,
    end: usize,
    rate_units: f64,
    bid: f64,
    accepted: bool,
    route: Option<Vec<String>>,
}

impl DecisionOut {
    fn to_json(&self) -> Json {
        obj([
            ("request", self.request.into()),
            ("src", self.src.as_str().into()),
            ("dst", self.dst.as_str().into()),
            ("start", self.start.into()),
            ("end", self.end.into()),
            ("rate_units", self.rate_units.into()),
            ("bid", self.bid.into()),
            ("accepted", self.accepted.into()),
            (
                "route",
                match &self.route {
                    Some(nodes) => Json::Arr(nodes.iter().map(|n| n.as_str().into()).collect()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

struct SolverOut {
    name: String,
    profit: f64,
    revenue: f64,
    cost: f64,
    accepted: usize,
}

impl SolverOut {
    fn to_json(&self) -> Json {
        obj([
            ("name", self.name.as_str().into()),
            ("profit", self.profit.into()),
            ("revenue", self.revenue.into()),
            ("cost", self.cost.into()),
            ("accepted", self.accepted.into()),
        ])
    }
}

/// Counters over [`metis_core::MetisResult::incidents`]: contained solver
/// failures observed (and survived) during the run.
struct IncidentsOut {
    failed_rounds: usize,
    warm_retries: usize,
}

impl IncidentsOut {
    fn to_json(&self) -> Json {
        obj([
            ("failed_rounds", self.failed_rounds.into()),
            ("warm_retries", self.warm_retries.into()),
        ])
    }
}

/// One run's [`metis_core::AuditReport`], rendered for the output.
struct AuditOut {
    checks: usize,
    violations: Vec<String>,
}

impl AuditOut {
    fn from_report(report: &metis_core::AuditReport) -> AuditOut {
        AuditOut {
            checks: report.checks,
            violations: report.violations.iter().map(|v| v.to_string()).collect(),
        }
    }

    fn to_json(&self) -> Json {
        obj([
            ("checks", self.checks.into()),
            ("clean", self.violations.is_empty().into()),
            (
                "violations",
                Json::Arr(self.violations.iter().map(|v| v.as_str().into()).collect()),
            ),
        ])
    }
}

struct Output {
    scenario: String,
    family: String,
    network: String,
    requests: usize,
    seed: u64,
    theta: usize,
    metis: SolverOut,
    incidents: IncidentsOut,
    audit: Option<AuditOut>,
    comparisons: Vec<SolverOut>,
    decisions: Vec<DecisionOut>,
}

impl Output {
    fn to_json(&self) -> Json {
        obj([
            ("scenario", self.scenario.as_str().into()),
            ("family", self.family.as_str().into()),
            ("network", self.network.as_str().into()),
            ("requests", self.requests.into()),
            ("seed", self.seed.into()),
            ("theta", self.theta.into()),
            ("metis", self.metis.to_json()),
            ("incidents", self.incidents.to_json()),
            (
                "audit",
                match &self.audit {
                    Some(a) => a.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "comparisons",
                Json::Arr(self.comparisons.iter().map(SolverOut::to_json).collect()),
            ),
            (
                "decisions",
                Json::Arr(self.decisions.iter().map(DecisionOut::to_json).collect()),
            ),
        ])
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let scenario = match &args.scenario {
        Some(path) => Scenario::load(path).unwrap_or_else(|e| {
            eprintln!("invalid scenario {path}: {e}");
            std::process::exit(2);
        }),
        None => {
            let topology = TopologySpec::parse_name(&args.network).unwrap_or_else(|| {
                eprintln!(
                    "unknown network {} (use b4, sub-b4, abilene, or geant)",
                    args.network
                );
                std::process::exit(2);
            });
            // CLI flags describe the paper's §V-A setup: one 12-slot
            // billing cycle of uniform Poisson demand.
            Scenario {
                version: SCENARIO_VERSION,
                name: "cli".into(),
                description: None,
                topology,
                horizon: Horizon {
                    slots_per_cycle: 12,
                    cycles: 1,
                },
                seed: args.seed,
                theta: args.theta,
                paths: args.paths,
                workload: FamilySpec::Uniform(UniformSpec {
                    num_requests: args.requests,
                    rate_gbps: (0.1, 5.0),
                    value_model: ValueModel::default(),
                }),
            }
        }
    };
    let topo = scenario.build_topology();
    let requests = scenario.generate(&topo);
    let instance = SpmInstance::new(topo, requests, scenario.num_slots(), scenario.paths);

    let want_tele = args.telemetry.is_some()
        || args.telemetry_prometheus.is_some()
        || args.trace_chrome.is_some()
        || args.serve.is_some();
    let tele = if want_tele {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    // Bind before the solve so scrapers can watch the run live; the bound
    // address is printed immediately (port 0 resolves to a real port).
    let server = args
        .serve
        .as_ref()
        .map(|addr| match tele.serve(addr.as_str()) {
            Ok(s) => {
                println!("serving telemetry on http://{}/metrics", s.addr());
                s
            }
            Err(e) => {
                eprintln!("cannot serve telemetry on {addr}: {e}");
                std::process::exit(1);
            }
        });

    let mut config = MetisConfig {
        audit: args.audit,
        ..MetisConfig::with_theta(scenario.theta)
    };
    if want_tele {
        // Per-iteration LP traces are read-only observation: the pivot
        // sequence (and therefore the schedule) is unchanged.
        config.maa.lp.trace = true;
        config.taa.lp.trace = true;
    }
    let mut result = metis_instrumented(&instance, &config, &FaultPlan::none(), &tele)
        .unwrap_or_else(|e| {
            eprintln!("metis failed: {e}");
            std::process::exit(1);
        });

    // With a dedicated registry for this one run, the telemetry counters
    // must agree exactly with the returned incident list — fold that
    // cross-check into the audit report.
    if let (Some(acc), Some(snap)) = (result.audit.as_mut(), tele.snapshot()) {
        acc.merge(metis_core::check_incident_agreement(
            &result.incidents,
            &snap,
        ));
    }

    let solver_out = |name: &str, ev: &metis_core::Evaluation| SolverOut {
        name: name.into(),
        profit: ev.profit,
        revenue: ev.revenue,
        cost: ev.cost,
        accepted: ev.accepted,
    };

    let mut comparisons = Vec::new();
    if args.compare {
        let all = vec![true; instance.num_requests()];
        if let Ok(m) = maa(&instance, &all, &MaaOptions::default()) {
            comparisons.push(solver_out("serve-all (MAA)", &m.evaluation));
        }
        comparisons.push(solver_out(
            "mincost",
            &mincost(&instance).evaluate(&instance),
        ));
        comparisons.push(solver_out(
            "ecoflow",
            &ecoflow(&instance).evaluate(&instance),
        ));
        if let Some(secs) = args.opt_seconds {
            let ilp = IlpOptions {
                time_limit: Some(std::time::Duration::from_secs(secs)),
                ..IlpOptions::default()
            };
            if let Ok(opt) = opt_spm_with_start(&instance, &ilp, &result.schedule) {
                comparisons.push(solver_out(
                    if opt.optimal {
                        "OPT(SPM)"
                    } else {
                        "OPT(SPM) time-limited"
                    },
                    &opt.evaluation,
                ));
            }
        }
    }

    let decisions: Vec<DecisionOut> = instance
        .requests()
        .iter()
        .map(|r| {
            let id: RequestId = r.id;
            let route = result.schedule.path_choice(id).map(|j| {
                instance.paths(id)[j]
                    .nodes()
                    .iter()
                    .map(|n| n.to_string())
                    .collect()
            });
            DecisionOut {
                request: id.0,
                src: r.src.to_string(),
                dst: r.dst.to_string(),
                start: r.start,
                end: r.end,
                rate_units: r.rate,
                bid: r.value,
                accepted: route.is_some(),
                route,
            }
        })
        .collect();

    let out = Output {
        scenario: scenario.name.clone(),
        family: scenario.family().into(),
        network: scenario.topology.label(),
        requests: instance.num_requests(),
        seed: scenario.seed,
        theta: scenario.theta,
        metis: solver_out("metis", &result.evaluation),
        incidents: IncidentsOut {
            failed_rounds: result.failed_rounds(),
            warm_retries: result.warm_retries(),
        },
        audit: result.audit.as_ref().map(AuditOut::from_report),
        comparisons,
        decisions,
    };

    if args.json {
        println!("{}", out.to_json().to_pretty());
    } else {
        println!(
            "{} [{}] on {} | K={} seed={} θ={}",
            out.scenario, out.family, out.network, out.requests, out.seed, out.theta
        );
        println!(
            "metis: profit {:.2} (revenue {:.2} − cost {:.2}), accepted {}/{}",
            out.metis.profit, out.metis.revenue, out.metis.cost, out.metis.accepted, out.requests
        );
        if out.incidents.failed_rounds > 0 || out.incidents.warm_retries > 0 {
            println!(
                "incidents: {} failed round(s), {} warm retry(ies) — run degraded but completed",
                out.incidents.failed_rounds, out.incidents.warm_retries
            );
        }
        if let Some(a) = &out.audit {
            if a.violations.is_empty() {
                println!("audit: clean ({} checks)", a.checks);
            } else {
                println!(
                    "audit: {} of {} checks VIOLATED:",
                    a.violations.len(),
                    a.checks
                );
                for v in &a.violations {
                    println!("  {v}");
                }
            }
        }
        for c in &out.comparisons {
            println!(
                "{:>24}: profit {:>9.2}, accepted {:>5}",
                c.name, c.profit, c.accepted
            );
        }
        let declined = out.decisions.iter().filter(|d| !d.accepted).count();
        println!("declined {declined} bids; rerun with --json for per-bid routes");
    }
    if args.analyze {
        let analysis = metis_core::analyze(&instance, &result.schedule);
        println!(
            "
# schedule analysis
{}",
            analysis.render_text(5)
        );
    }

    if want_tele {
        match tele.snapshot() {
            Some(snap) => {
                let write = |path: &str, body: String| {
                    if let Err(e) = std::fs::write(path, body) {
                        eprintln!("cannot write telemetry to {path}: {e}");
                        std::process::exit(1);
                    }
                };
                if let Some(path) = &args.telemetry {
                    write(path, snap.to_json());
                }
                if let Some(path) = &args.telemetry_prometheus {
                    write(path, to_prometheus(&snap));
                }
                if let Some(path) = &args.trace_chrome {
                    match tele.chrome_trace() {
                        Some(body) => write(path, body),
                        None => eprintln!("no span log captured; {path} not written"),
                    }
                }
                if !args.json {
                    println!("\n{}", phase_timing_table(&snap).render());
                    println!("\n{}", lp_stats_table(&snap).render());
                    println!("\n{}", convergence_table(&result.round_trace).render());
                }
            }
            None => eprintln!(
                "telemetry requested but the `capture` feature is compiled out; \
rebuild metis-telemetry with default features"
            ),
        }
    }

    if let Some(report) = &result.audit {
        if !report.is_clean() {
            eprintln!("audit found {} violation(s)", report.violations.len());
            std::process::exit(1);
        }
    }

    // Keep serving the finished run's metrics until interrupted.
    if let Some(server) = server {
        eprintln!(
            "run complete; still serving http://{}/metrics (Ctrl-C to exit)",
            server.addr()
        );
        loop {
            std::thread::park();
        }
    }
}
