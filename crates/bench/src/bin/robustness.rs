//! Runs the cross-topology robustness sweep (beyond the paper).

use metis_bench::experiments::robustness::{run, RobustnessOptions};
use metis_bench::{quick_mode, RESULTS_DIR};

fn main() {
    let options = if quick_mode() {
        RobustnessOptions {
            k: 80,
            seeds: vec![1],
            ..RobustnessOptions::default()
        }
    } else {
        RobustnessOptions::default()
    };
    eprintln!(
        "robustness: K = {}, {} seeds",
        options.k,
        options.seeds.len()
    );
    let table = run(&options);
    println!("{}", table.render());
    table
        .write_csv(RESULTS_DIR, "robustness.csv")
        .unwrap_or_else(|e| eprintln!("could not write robustness.csv: {e}"));
}
