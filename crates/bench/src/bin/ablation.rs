//! Runs the design-knob ablations (limiter rule, θ, path count, rounding).

use metis_bench::experiments::ablation::{
    limiter_rules, path_count_sweep, rounding_repeats_sweep, theta_sweep, AblationOptions,
};
use metis_bench::{quick_mode, RESULTS_DIR};

fn main() {
    let options = if quick_mode() {
        AblationOptions {
            k: 100,
            seeds: vec![1],
        }
    } else {
        AblationOptions::default()
    };
    eprintln!("ablation: K = {}, {} seeds", options.k, options.seeds.len());
    for (table, csv) in [
        (limiter_rules(&options), "ablation_limiter.csv"),
        (theta_sweep(&options), "ablation_theta.csv"),
        (path_count_sweep(&options), "ablation_paths.csv"),
        (rounding_repeats_sweep(&options), "ablation_rounding.csv"),
    ] {
        println!("{}", table.render());
        table
            .write_csv(RESULTS_DIR, csv)
            .unwrap_or_else(|e| eprintln!("could not write {csv}: {e}"));
    }
}
