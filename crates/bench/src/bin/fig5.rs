//! Regenerates Fig. 5 (Metis vs EcoFlow on B4).

use metis_bench::experiments::fig5::{run, Fig5Options};
use metis_bench::{quick_mode, RESULTS_DIR};

fn main() {
    let options = if quick_mode() {
        Fig5Options {
            ks: vec![100, 200],
            seeds: vec![1, 2],
            ..Fig5Options::default()
        }
    } else {
        Fig5Options::default()
    };
    eprintln!(
        "fig5: K ∈ {:?}, {} seeds, θ = {}",
        options.ks,
        options.seeds.len(),
        options.theta
    );
    let out = run(&options);
    for (table, csv) in [
        (&out.profit, "fig5a_profit.csv"),
        (&out.accepted, "fig5b_accepted.csv"),
        (&out.utilization, "fig5c_utilization.csv"),
    ] {
        println!("{}", table.render());
        table
            .write_csv(RESULTS_DIR, csv)
            .unwrap_or_else(|e| eprintln!("could not write {csv}: {e}"));
    }
}
