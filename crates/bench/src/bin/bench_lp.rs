//! Dense-vs-sparse LP backend A/B benchmark.
//!
//! Solves deterministic transportation-style LPs of growing size with
//! both [`BasisBackend`]s, certificate-verifying every solve, and
//! reports per-backend wall clock, per-pivot time, and factorization
//! counters. Results go to stdout as an aligned table and to
//! `BENCH_lp.json` (override with `--out PATH`) as canonical JSON for
//! CI trend tracking.
//!
//! Usage: `bench_lp [--quick] [--out PATH]`

use std::time::Instant;

use metis_bench::json::{obj, Json};
use metis_lp::{BasisBackend, Problem, Relation, Sense, SolveOptions};

/// A dense-ish transportation-style LP with `n` supplies and `n`
/// demands (`m = 2n` rows), mirroring `benches/simplex.rs`.
fn transportation_lp(n: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let mut vars = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let cost = 1.0 + ((i * 7 + j * 13) % 17) as f64;
            vars.push(p.add_var(cost, 0.0, f64::INFINITY));
        }
    }
    for i in 0..n {
        p.add_constraint(
            (0..n).map(|j| (vars[i * n + j], 1.0)),
            Relation::Le,
            10.0 + (i % 3) as f64,
        );
    }
    for j in 0..n {
        p.add_constraint(
            (0..n).map(|i| (vars[i * n + j], 1.0)),
            Relation::Ge,
            5.0 + (j % 4) as f64,
        );
    }
    p
}

struct Measured {
    median_solve_ns: u128,
    median_pivot_ns: u128,
    objective: f64,
    iterations: usize,
    refactorizations: usize,
    eta_updates: usize,
    lu_l_nnz: usize,
    lu_u_nnz: usize,
    pricing_block_scans: usize,
}

fn measure(p: &Problem, backend: BasisBackend, trials: usize) -> Measured {
    let opts = SolveOptions {
        basis: backend,
        // Independent certification: recomputed residuals, bounds, and
        // objective must match or the solve errors out.
        verify: true,
        ..SolveOptions::default()
    };
    let mut times: Vec<u128> = Vec::with_capacity(trials);
    let mut last = None;
    for _ in 0..trials {
        // metis-lint: allow(DET-02): wall-clock benchmark harness; timings are the output
        let t = Instant::now();
        let s = p.solve_with(&opts).expect("benchmark LP must be feasible");
        times.push(t.elapsed().as_nanos());
        last = Some(s);
    }
    times.sort_unstable();
    let median_solve_ns = times[times.len() / 2];
    let s = last.expect("at least one trial");
    let st = *s.stats();
    Measured {
        median_solve_ns,
        median_pivot_ns: median_solve_ns / (st.iterations.max(1) as u128),
        objective: s.objective(),
        iterations: st.iterations,
        refactorizations: st.refreshes,
        eta_updates: st.eta_updates,
        lu_l_nnz: st.lu_l_nnz,
        lu_u_nnz: st.lu_u_nnz,
        pricing_block_scans: st.pricing_block_scans,
    }
}

fn backend_json(m: &Measured) -> Json {
    obj([
        ("median_solve_ns", Json::Num(m.median_solve_ns as f64)),
        ("median_pivot_ns", Json::Num(m.median_pivot_ns as f64)),
        ("objective", Json::Num(m.objective)),
        ("iterations", Json::Num(m.iterations as f64)),
        ("refactorizations", Json::Num(m.refactorizations as f64)),
        ("eta_updates", Json::Num(m.eta_updates as f64)),
        ("lu_l_nnz", Json::Num(m.lu_l_nnz as f64)),
        ("lu_u_nnz", Json::Num(m.lu_u_nnz as f64)),
        (
            "pricing_block_scans",
            Json::Num(m.pricing_block_scans as f64),
        ),
    ])
}

fn main() {
    let quick = metis_bench::quick_mode();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_lp.json")
        .to_string();

    let sizes: &[usize] = if quick { &[50, 150] } else { &[50, 150, 250] };
    let trials = if quick { 3 } else { 5 };

    println!(
        "{:>6} {:>14} {:>14} {:>9} {:>8} {:>8} {:>9}",
        "m", "dense/solve", "sparse/solve", "speedup", "pivots", "refacts", "etas"
    );
    let mut entries: Vec<Json> = Vec::new();
    for &n in sizes {
        let p = transportation_lp(n);
        let m = 2 * n;
        let dense = measure(&p, BasisBackend::Dense, trials);
        let sparse = measure(&p, BasisBackend::SparseLu, trials);
        assert!(
            (dense.objective - sparse.objective).abs() <= 1e-6 * (1.0 + dense.objective.abs()),
            "backend objectives diverged at m={m}: dense {} vs sparse {}",
            dense.objective,
            sparse.objective
        );
        let speedup = dense.median_solve_ns as f64 / sparse.median_solve_ns.max(1) as f64;
        println!(
            "{:>6} {:>12.3}ms {:>12.3}ms {:>8.2}x {:>8} {:>8} {:>9}",
            m,
            dense.median_solve_ns as f64 / 1e6,
            sparse.median_solve_ns as f64 / 1e6,
            speedup,
            sparse.iterations,
            sparse.refactorizations,
            sparse.eta_updates,
        );
        entries.push(obj([
            ("m", Json::Num(m as f64)),
            ("n_vars", Json::Num((n * n) as f64)),
            ("dense", backend_json(&dense)),
            ("sparse_lu", backend_json(&sparse)),
            ("speedup", Json::Num(speedup)),
        ]));
    }

    let doc = obj([
        ("benchmark", Json::Str("lp_backend_ab".to_string())),
        ("trials", Json::Num(trials as f64)),
        ("entries", Json::Arr(entries)),
    ]);
    let text = doc.to_pretty();
    if let Err(e) = std::fs::write(&out_path, text + "\n") {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
