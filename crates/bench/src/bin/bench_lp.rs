//! LP engine A/B benchmark: backends × pricing × ratio test.
//!
//! Solves deterministic LPs of growing size under three engine
//! configurations, certificate-verifying every solve:
//!
//! * `dense`        — dense inverse backend, full Dantzig pricing
//!   (the reference; only run for m ≤ 1000, where it is tractable);
//! * `sparse_lu`    — sparse LU backend, full Dantzig pricing,
//!   product-form updates (isolates the factorization win);
//! * `sparse_devex` — sparse LU + devex pricing + Harris ratio test +
//!   Forrest–Tomlin updates (the full engine).
//!
//! Row counts are `m ∈ {100, 300, 1000, 5000, 20000}` (`--quick`:
//! `{100, 300}`): transportation-style LPs up to m = 300, a seeded
//! sparse packing family above. Results go to stdout as an aligned
//! table and to `BENCH_lp.json` (override with `--out PATH`) as
//! canonical JSON for CI trend tracking; the emitted document records
//! the size list actually run.
//!
//! `--trend-check BASELINE.json` additionally compares this run's
//! hardware-independent per-pivot ratios (config vs same-run dense) at
//! overlapping sizes against a committed baseline and exits nonzero on
//! a >30% regression.
//!
//! Usage: `bench_lp [--quick] [--out PATH] [--trend-check BASELINE]
//! [--sizes M1,M2,...]` (the last overrides the ladder, for probing
//! a single size)

use std::time::Instant;

use metis_bench::json::{obj, Json};
use metis_lp::{
    BasisBackend, FactorUpdate, Pricing, Problem, RatioTest, Relation, Sense, SolveOptions,
};

/// Full and `--quick` row-count ladders. The committed `BENCH_lp.json`
/// is produced by the full ladder; CI's quick leg runs the prefix.
const SIZES_FULL: &[usize] = &[100, 300, 1000, 5000, 20000];
const SIZES_QUICK: &[usize] = &[100, 300];

/// Largest row count at which the dense reference configuration runs
/// (O(m²) per pivot makes it hopeless beyond this).
const DENSE_MAX_M: usize = 1000;

/// A dense-ish transportation-style LP with `n` supplies and `n`
/// demands (`m = 2n` rows), mirroring `benches/simplex.rs`.
fn transportation_lp(n: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let mut vars = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let cost = 1.0 + ((i * 7 + j * 13) % 17) as f64;
            vars.push(p.add_var(cost, 0.0, f64::INFINITY));
        }
    }
    for i in 0..n {
        p.add_constraint(
            (0..n).map(|j| (vars[i * n + j], 1.0)),
            Relation::Le,
            10.0 + (i % 3) as f64,
        );
    }
    for j in 0..n {
        p.add_constraint(
            (0..n).map(|i| (vars[i * n + j], 1.0)),
            Relation::Ge,
            5.0 + (j % 4) as f64,
        );
    }
    p
}

/// A genuinely sparse packing LP with `m` rows and `2m` variables,
/// 4–7 nonzeros per row. Even-indexed variables carry negative costs
/// and unbounded uppers; each anchors exactly one `≤` row (positive
/// coefficients, finite rhs), so the LP is feasible at the origin (the
/// slack basis starts phase 2 directly — no artificials at any size)
/// and bounded (every profitable column is capped by its anchor row).
/// Deterministic via a seeded LCG, same generator family as the
/// proptest suite.
fn sparse_packing_lp(m: usize, seed: u64) -> Problem {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let n = 2 * m;
    let mut p = Problem::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|j| {
            if j % 2 == 0 {
                // Profitable, capped only through the rows.
                p.add_var(-(1.0 + (j / 2 % 5) as f64 * 0.5), 0.0, f64::INFINITY)
            } else {
                p.add_var(1.0 + (j % 23) as f64 * 0.25, 0.0, 50.0)
            }
        })
        .collect();
    for i in 0..m {
        let k = 3 + next() % 4; // 3..=6 extra nonzeros
        let mut terms: Vec<(metis_lp::VarId, f64)> = Vec::with_capacity(k + 1);
        // Anchor row i on profitable variable 2i: every row is nonempty
        // and every unbounded column is capped by at least one row.
        terms.push((vars[(2 * i) % n], 1.0 + (i % 5) as f64 * 0.5));
        for _ in 0..k {
            let j = next() % n;
            if terms.iter().all(|&(v, _)| v != vars[j]) {
                terms.push((vars[j], 0.5 + (next() % 8) as f64 * 0.5));
            }
        }
        p.add_constraint(terms, Relation::Le, 20.0 + (i % 11) as f64);
    }
    p
}

/// One engine configuration under test.
struct Config {
    key: &'static str,
    opts: SolveOptions,
}

fn configs() -> Vec<Config> {
    let base = SolveOptions {
        // Independent certification: recomputed residuals, bounds, and
        // objective must match or the solve errors out.
        verify: true,
        ..SolveOptions::default()
    };
    vec![
        Config {
            key: "dense",
            opts: SolveOptions {
                basis: BasisBackend::Dense,
                pricing: Pricing::Full,
                ..base
            },
        },
        Config {
            key: "sparse_lu",
            opts: SolveOptions {
                basis: BasisBackend::SparseLu,
                pricing: Pricing::Full,
                ..base
            },
        },
        Config {
            key: "sparse_devex",
            opts: SolveOptions {
                basis: BasisBackend::SparseLu,
                pricing: Pricing::Devex,
                ratio: RatioTest::Harris,
                factor_update: FactorUpdate::ForrestTomlin,
                ..base
            },
        },
    ]
}

struct Measured {
    median_solve_ns: u128,
    median_pivot_ns: u128,
    objective: f64,
    iterations: usize,
    phase1_iterations: usize,
    dual_iterations: usize,
    bound_flips: usize,
    scaling_passes: usize,
    refactorizations: usize,
    eta_updates: usize,
    ft_spikes: usize,
    devex_resets: usize,
    harris_expansions: usize,
    lu_l_nnz: usize,
    lu_u_nnz: usize,
    pricing_block_scans: usize,
}

fn measure(p: &Problem, opts: &SolveOptions, trials: usize) -> Measured {
    let mut times: Vec<u128> = Vec::with_capacity(trials);
    let mut last = None;
    for _ in 0..trials {
        // metis-lint: allow(DET-02): wall-clock benchmark harness; timings are the output
        let t = Instant::now();
        let s = p.solve_with(opts).expect("benchmark LP must be feasible");
        times.push(t.elapsed().as_nanos());
        last = Some(s);
    }
    times.sort_unstable();
    let median_solve_ns = times[times.len() / 2];
    let s = last.expect("at least one trial");
    let st = *s.stats();
    Measured {
        median_solve_ns,
        median_pivot_ns: median_solve_ns / (st.iterations.max(1) as u128),
        objective: s.objective(),
        iterations: st.iterations,
        phase1_iterations: st.phase1_iterations,
        dual_iterations: st.dual_iterations,
        bound_flips: st.bound_flips,
        scaling_passes: st.scaling_passes,
        refactorizations: st.refreshes,
        eta_updates: st.eta_updates,
        ft_spikes: st.ft_spikes,
        devex_resets: st.devex_resets,
        harris_expansions: st.harris_expansions,
        lu_l_nnz: st.lu_l_nnz,
        lu_u_nnz: st.lu_u_nnz,
        pricing_block_scans: st.pricing_block_scans,
    }
}

fn config_json(m: &Measured) -> Json {
    obj([
        ("median_solve_ns", Json::Num(m.median_solve_ns as f64)),
        ("median_pivot_ns", Json::Num(m.median_pivot_ns as f64)),
        ("objective", Json::Num(m.objective)),
        ("iterations", Json::Num(m.iterations as f64)),
        ("phase1_iterations", Json::Num(m.phase1_iterations as f64)),
        ("dual_iterations", Json::Num(m.dual_iterations as f64)),
        ("bound_flips", Json::Num(m.bound_flips as f64)),
        ("scaling_passes", Json::Num(m.scaling_passes as f64)),
        ("refactorizations", Json::Num(m.refactorizations as f64)),
        ("eta_updates", Json::Num(m.eta_updates as f64)),
        ("ft_spikes", Json::Num(m.ft_spikes as f64)),
        ("devex_resets", Json::Num(m.devex_resets as f64)),
        ("harris_expansions", Json::Num(m.harris_expansions as f64)),
        ("lu_l_nnz", Json::Num(m.lu_l_nnz as f64)),
        ("lu_u_nnz", Json::Num(m.lu_u_nnz as f64)),
        (
            "pricing_block_scans",
            Json::Num(m.pricing_block_scans as f64),
        ),
    ])
}

/// Per-pivot ratio of `config` to same-document `dense` at every size
/// where both were measured: `(m, ratio)`. Ratios compare work per
/// pivot within one run, so they are hardware-independent and safe to
/// trend across machines.
fn pivot_ratios(doc: &Json, config: &str) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    let Some(entries) = doc.get("entries").and_then(Json::as_arr) else {
        return out;
    };
    for e in entries {
        let (Some(m), Some(cfgs)) = (e.get("m").and_then(Json::as_usize), e.get("configs")) else {
            continue;
        };
        let pivot = |key: &str| {
            cfgs.get(key)
                .and_then(|c| c.get("median_pivot_ns"))
                .and_then(Json::as_f64)
        };
        if let (Some(dense), Some(other)) = (pivot("dense"), pivot(config)) {
            if dense > 0.0 {
                out.push((m, other / dense));
            }
        }
    }
    out
}

/// Fails (exit 1) when any per-pivot ratio worsened by more than 30%
/// against the committed baseline at an overlapping size.
fn trend_check(current: &Json, baseline_path: &str) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trend-check: cannot read {baseline_path}: {e}");
            return false;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("trend-check: cannot parse {baseline_path}: {e}");
            return false;
        }
    };
    let mut ok = true;
    let mut compared = 0usize;
    for config in ["sparse_lu", "sparse_devex"] {
        let base = pivot_ratios(&baseline, config);
        for (m, cur) in pivot_ratios(current, config) {
            let Some(&(_, bas)) = base.iter().find(|&&(bm, _)| bm == m) else {
                continue;
            };
            compared += 1;
            if cur > bas * 1.30 {
                eprintln!(
                    "trend-check: {config} per-pivot ratio regressed at m={m}: \
                     {cur:.3} vs baseline {bas:.3} (>30%)"
                );
                ok = false;
            } else {
                println!("trend-check: {config} m={m} ratio {cur:.3} (baseline {bas:.3}) ok");
            }
        }
    }
    if compared == 0 {
        eprintln!("trend-check: no overlapping (size, config) pairs with {baseline_path}");
        return false;
    }
    ok
}

fn main() {
    let quick = metis_bench::quick_mode();
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::to_owned)
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_lp.json".to_string());
    let trend_baseline = flag_value("--trend-check");

    let size_override: Option<Vec<usize>> = flag_value("--sizes").map(|s| {
        s.split(',')
            .map(|t| t.trim().parse().expect("--sizes takes M1,M2,..."))
            .collect()
    });
    let sizes: &[usize] = match &size_override {
        Some(v) => v,
        None if quick => SIZES_QUICK,
        None => SIZES_FULL,
    };

    println!(
        "{:>7} {:>8} {:>13} {:>14} {:>14} {:>8} {:>8} {:>8}",
        "m", "family", "config", "solve", "per-pivot", "pivots", "refacts", "updates"
    );
    let mut entries: Vec<Json> = Vec::new();
    for &m in sizes {
        let (family, p) = if m <= 300 {
            ("transportation", transportation_lp(m / 2))
        } else {
            ("sparse_packing", sparse_packing_lp(m, 0x5eed))
        };
        // One trial suffices at the sizes where a solve takes seconds.
        let trials = match m {
            _ if m >= 5000 => 1,
            _ if m >= 1000 => 2,
            _ if quick => 3,
            _ => 5,
        };
        let mut cfg_fields: Vec<(&'static str, Json)> = Vec::new();
        let mut dense_ref: Option<Measured> = None;
        let mut reference_obj: Option<f64> = None;
        for c in configs() {
            if c.key == "dense" && m > DENSE_MAX_M {
                continue;
            }
            let r = measure(&p, &c.opts, trials);
            if let Some(obj0) = reference_obj {
                assert!(
                    (r.objective - obj0).abs() <= 1e-6 * (1.0 + obj0.abs()),
                    "objectives diverged at m={m}: {} vs {} ({})",
                    r.objective,
                    obj0,
                    c.key
                );
            } else {
                reference_obj = Some(r.objective);
            }
            println!(
                "{:>7} {:>8} {:>13} {:>12.3}ms {:>12}ns {:>8} {:>8} {:>8}",
                m,
                &family[..family.len().min(8)],
                c.key,
                r.median_solve_ns as f64 / 1e6,
                r.median_pivot_ns,
                r.iterations,
                r.refactorizations,
                r.eta_updates + r.ft_spikes,
            );
            cfg_fields.push((c.key, config_json(&r)));
            if c.key == "dense" {
                dense_ref = Some(r);
            } else if let Some(d) = &dense_ref {
                let ratio = d.median_pivot_ns as f64 / r.median_pivot_ns.max(1) as f64;
                println!("{:>54}", format!("(per-pivot {ratio:.2}x vs dense)"));
            }
        }
        entries.push(obj([
            ("m", Json::Num(m as f64)),
            ("n_vars", Json::Num(p.num_vars() as f64)),
            ("family", Json::Str(family.to_string())),
            ("trials", Json::Num(trials as f64)),
            ("configs", obj(cfg_fields)),
        ]));
    }

    let doc = obj([
        ("benchmark", Json::Str("lp_engine_ab".to_string())),
        ("quick", Json::Bool(quick)),
        (
            "sizes",
            Json::Arr(sizes.iter().map(|&s| Json::Num(s as f64)).collect()),
        ),
        ("entries", Json::Arr(entries)),
    ]);
    let text = doc.to_pretty();
    if let Err(e) = std::fs::write(&out_path, text + "\n") {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if let Some(baseline) = trend_baseline {
        if !trend_check(&doc, &baseline) {
            std::process::exit(1);
        }
        println!("trend-check passed against {baseline}");
    }
}
