//! Regenerates Fig. 3 (Metis vs exact optima on SUB-B4).

use std::time::Duration;

use metis_bench::experiments::fig3::{run, Fig3Options};
use metis_bench::{quick_mode, RESULTS_DIR};

fn main() {
    let options = if quick_mode() {
        Fig3Options {
            ks: vec![50, 100],
            seeds: vec![1, 2],
            opt_time_limit: Duration::from_secs(10),
            ..Fig3Options::default()
        }
    } else {
        Fig3Options::default()
    };
    eprintln!(
        "fig3: K ∈ {:?}, {} seeds, OPT budget {:?} per solve",
        options.ks,
        options.seeds.len(),
        options.opt_time_limit
    );
    let out = run(&options);
    for (table, csv) in [
        (&out.profit, "fig3a_profit.csv"),
        (&out.accepted, "fig3b_accepted.csv"),
        (&out.utilization, "fig3c_utilization.csv"),
        (&out.timing, "fig3_timing.csv"),
    ] {
        println!("{}", table.render());
        table
            .write_csv(RESULTS_DIR, csv)
            .unwrap_or_else(|e| eprintln!("could not write {csv}: {e}"));
    }
}
