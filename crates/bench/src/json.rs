//! Minimal JSON support for the CLI binaries.
//!
//! The parser and value type live in [`metis_workload::json`] (the
//! scenario loader is their main consumer); this module re-exports them
//! so the bench binaries keep their historical import paths.

pub use metis_workload::json::*;
