//! Telemetry overhead: `metis()` vs `metis_instrumented()` with a
//! disabled handle vs a live collector, on the golden B4/K=40 fixture.
//!
//! DESIGN.md §7 records the methodology and the <2% overhead bound this
//! group substantiates: the disabled handle must be indistinguishable
//! from the uninstrumented entry point, and a live collector should cost
//! low single-digit percent on an end-to-end alternation.

use criterion::{criterion_group, criterion_main, Criterion};

use metis_core::{metis, metis_instrumented, FaultPlan, MetisConfig, SpmInstance};
use metis_netsim::topologies;
use metis_telemetry::Telemetry;
use metis_workload::{generate, ValueModel, WorkloadConfig};

/// Same instance as `tests/golden.rs`: B4, K = 40, seed 2024, θ = 6.
fn golden_instance() -> SpmInstance {
    let topo = topologies::b4();
    let config = WorkloadConfig {
        num_requests: 40,
        seed: 2024,
        value_model: ValueModel::PricedPath {
            low: 2.0,
            high: 8.0,
        },
        ..WorkloadConfig::default()
    };
    let requests = generate(&topo, &config);
    SpmInstance::new(topo, requests, 12, 3)
}

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/metis_b4_k40");
    g.sample_size(30);
    let inst = golden_instance();
    let config = MetisConfig::with_theta(6);

    g.bench_function("uninstrumented", |b| {
        b.iter(|| metis(&inst, &config).expect("metis"));
    });
    g.bench_function("disabled_handle", |b| {
        let tele = Telemetry::disabled();
        b.iter(|| metis_instrumented(&inst, &config, &FaultPlan::none(), &tele).expect("metis"));
    });
    g.bench_function("instrumented", |b| {
        // A fresh collector per iteration so aggregates never saturate
        // and each run pays the full record-and-allocate cost.
        b.iter(|| {
            let tele = Telemetry::enabled();
            metis_instrumented(&inst, &config, &FaultPlan::none(), &tele).expect("metis")
        });
    });
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
