//! Baseline schedulers: throughput of MinCost / Amoeba / EcoFlow and the
//! exact MILP at a tractable size.

use criterion::{criterion_group, criterion_main, Criterion};

use metis_baselines::{amoeba, ecoflow, mincost, opt_spm};
use metis_core::SpmInstance;
use metis_lp::IlpOptions;
use metis_netsim::topologies;
use metis_workload::{generate, WorkloadConfig};

fn b4_instance(k: usize) -> SpmInstance {
    let topo = topologies::b4();
    let requests = generate(&topo, &WorkloadConfig::paper(k, 1));
    SpmInstance::new(topo, requests, 12, 3)
}

fn bench_heuristics(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines/k400_b4");
    g.sample_size(10);
    let inst = b4_instance(400);
    let caps = vec![10.0; inst.topology().num_edges()];
    g.bench_function("mincost", |b| b.iter(|| mincost(&inst)));
    g.bench_function("amoeba", |b| b.iter(|| amoeba(&inst, &caps)));
    g.bench_function("ecoflow", |b| b.iter(|| ecoflow(&inst)));
    g.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines/opt_spm_sub_b4");
    g.sample_size(10);
    let topo = topologies::sub_b4();
    let requests = generate(&topo, &WorkloadConfig::paper(10, 1));
    let inst = SpmInstance::new(topo, requests, 12, 2);
    g.bench_function("k10_exact", |b| {
        b.iter(|| opt_spm(&inst, &IlpOptions::default()).expect("opt"));
    });
    g.finish();
}

criterion_group!(benches, bench_heuristics, bench_exact);
criterion_main!(benches);
