//! MAA (RL-SPM solver) end-to-end cost and scaling — backs Fig. 4a and
//! the §V-B1 timing claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use metis_core::{maa, MaaOptions, ParallelConfig, SpmInstance};
use metis_netsim::topologies;
use metis_workload::{generate, WorkloadConfig};

fn instance(k: usize) -> SpmInstance {
    let topo = topologies::b4();
    let requests = generate(&topo, &WorkloadConfig::paper(k, 1));
    SpmInstance::new(topo, requests, 12, 3)
}

fn bench_maa_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("maa/b4");
    g.sample_size(10);
    for k in [50usize, 100, 200, 400] {
        let inst = instance(k);
        let accepted = vec![true; k];
        g.bench_with_input(BenchmarkId::from_parameter(k), &inst, |b, inst| {
            b.iter(|| maa(inst, &accepted, &MaaOptions::default()).expect("maa"));
        });
    }
    g.finish();
}

fn bench_maa_repeats(c: &mut Criterion) {
    let mut g = c.benchmark_group("maa/rounding_repeats_k200");
    g.sample_size(10);
    let inst = instance(200);
    let accepted = vec![true; 200];
    for repeats in [1usize, 8, 32] {
        let opts = MaaOptions {
            rounding_repeats: repeats,
            ..MaaOptions::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(repeats), &opts, |b, opts| {
            b.iter(|| maa(&inst, &accepted, opts).expect("maa"));
        });
    }
    g.finish();
}

fn bench_maa_parallel_trials(c: &mut Criterion) {
    // Serial vs parallel multi-trial rounding. The trial results are
    // reduced in index order, so every thread count computes the same
    // schedule bit-for-bit — only the wall clock changes. On a ≥4-core
    // runner the 4-thread row should run well under half the 1-thread
    // row; on a 1-core container the rows simply coincide.
    let mut g = c.benchmark_group("maa/parallel_trials_k200_repeats16");
    g.sample_size(10);
    let inst = instance(200);
    let accepted = vec![true; 200];
    for threads in [1usize, 2, 4] {
        let opts = MaaOptions {
            rounding_repeats: 16,
            parallel: ParallelConfig {
                threads,
                ..ParallelConfig::default()
            },
            ..MaaOptions::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(threads), &opts, |b, opts| {
            b.iter(|| maa(&inst, &accepted, opts).expect("maa"));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_maa_scaling,
    bench_maa_repeats,
    bench_maa_parallel_trials
);
criterion_main!(benches);
