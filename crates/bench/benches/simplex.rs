//! Raw LP-solver scaling: the engine under every Metis component.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use metis_core::{solve_rlspm_relaxation, SpmInstance};
use metis_lp::{BasisBackend, Problem, Relation, Sense, SolveOptions};
use metis_netsim::topologies;
use metis_workload::{generate, WorkloadConfig};

/// A dense-ish transportation-style LP with `n` supplies and `n` demands
/// (deterministic coefficients).
fn transportation_lp(n: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let mut vars = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let cost = 1.0 + ((i * 7 + j * 13) % 17) as f64;
            vars.push(p.add_var(cost, 0.0, f64::INFINITY));
        }
    }
    for i in 0..n {
        p.add_constraint(
            (0..n).map(|j| (vars[i * n + j], 1.0)),
            Relation::Le,
            10.0 + (i % 3) as f64,
        );
    }
    for j in 0..n {
        p.add_constraint(
            (0..n).map(|i| (vars[i * n + j], 1.0)),
            Relation::Ge,
            5.0 + (j % 4) as f64,
        );
    }
    p
}

fn bench_transportation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex/transportation");
    g.sample_size(10);
    for n in [10usize, 20, 40] {
        let p = transportation_lp(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| p.solve().expect("feasible"));
        });
    }
    g.finish();
}

fn bench_rlspm_relaxation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex/rlspm_relaxation_b4");
    g.sample_size(10);
    for k in [50usize, 100, 200] {
        let topo = topologies::b4();
        let requests = generate(&topo, &WorkloadConfig::paper(k, 1));
        let instance = SpmInstance::new(topo, requests, 12, 3);
        let accepted = vec![true; k];
        g.bench_with_input(BenchmarkId::from_parameter(k), &instance, |b, inst| {
            b.iter(|| {
                solve_rlspm_relaxation(inst, &accepted, &SolveOptions::default()).expect("feasible")
            });
        });
    }
    g.finish();
}

/// Dense explicit `B⁻¹` vs sparse LU + eta file on the same LPs at
/// growing row counts (`m = 2n`). The sparse backend should pull ahead
/// as `m` grows; `bench_lp` tracks the same comparison outside Criterion.
fn bench_basis_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex/basis_backend");
    g.sample_size(10);
    for n in [50usize, 150, 250] {
        let p = transportation_lp(n);
        let m = 2 * n;
        for (label, backend) in [
            ("dense", BasisBackend::Dense),
            ("sparse_lu", BasisBackend::SparseLu),
        ] {
            let opts = SolveOptions {
                basis: backend,
                ..SolveOptions::default()
            };
            g.bench_with_input(BenchmarkId::new(label, m), &p, |b, p| {
                b.iter(|| p.solve_with(&opts).expect("feasible"));
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_transportation,
    bench_rlspm_relaxation,
    bench_basis_backends
);
criterion_main!(benches);
