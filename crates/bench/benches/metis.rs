//! Full Metis alternation: θ scaling and limiter-rule ablation — the
//! "several hundred milliseconds" end-to-end claim of §V-B1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use metis_core::{
    metis, solve_rlspm_relaxation, LimiterRule, MetisConfig, RlspmWarmSolver, SpmInstance,
};
use metis_lp::SolveOptions;
use metis_netsim::topologies;
use metis_workload::{generate, WorkloadConfig};

fn instance(k: usize, sub: bool) -> SpmInstance {
    let topo = if sub {
        topologies::sub_b4()
    } else {
        topologies::b4()
    };
    let requests = generate(&topo, &WorkloadConfig::paper(k, 1));
    SpmInstance::new(topo, requests, 12, 3)
}

fn bench_metis_theta(c: &mut Criterion) {
    let mut g = c.benchmark_group("metis/theta_k100_b4");
    g.sample_size(10);
    let inst = instance(100, false);
    for theta in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(theta), &theta, |b, &theta| {
            b.iter(|| metis(&inst, &MetisConfig::with_theta(theta)).expect("metis"));
        });
    }
    g.finish();
}

fn bench_metis_sub_b4_k400(c: &mut Criterion) {
    // The paper's timing anchor: K = 400 on SUB-B4 in "several hundred
    // milliseconds" vs over 1000 s for OPT(SPM).
    let mut g = c.benchmark_group("metis/sub_b4_k400");
    g.sample_size(10);
    let inst = instance(400, true);
    g.bench_function("theta8", |b| {
        b.iter(|| metis(&inst, &MetisConfig::with_theta(8)).expect("metis"));
    });
    g.finish();
}

fn bench_limiter_rules(c: &mut Criterion) {
    let mut g = c.benchmark_group("metis/limiter_k100_b4");
    g.sample_size(10);
    let inst = instance(100, false);
    for (name, rule) in [
        ("min_util", LimiterRule::MinUtilization),
        ("max_price", LimiterRule::MaxPrice),
        ("uniform", LimiterRule::UniformShrink),
    ] {
        let config = MetisConfig {
            theta: 8,
            limiter: rule,
            ..MetisConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| metis(&inst, config).expect("metis"));
        });
    }
    g.finish();
}

fn bench_metis_warm_start(c: &mut Criterion) {
    // End-to-end alternation, cold LPs vs basis-reused warm LPs. Warm
    // runs may land on different (equally optimal) vertices, so this is
    // a throughput comparison, not a bit-identity check.
    let mut g = c.benchmark_group("metis/warm_start_k100_b4");
    g.sample_size(10);
    let inst = instance(100, false);
    for (name, warm_start) in [("cold", false), ("warm", true)] {
        let config = MetisConfig {
            warm_start,
            ..MetisConfig::with_theta(8)
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| metis(&inst, config).expect("metis"));
        });
    }
    g.finish();
}

fn bench_rlspm_resolve_cold_vs_warm(c: &mut Criterion) {
    // Isolates the LP re-solve cost across a sequence of acceptance
    // masks like the ones the alternation produces: cold rebuilds and
    // factors the LP from scratch for every mask, warm reuses the
    // fixed-structure problem and the previous optimal basis.
    let mut g = c.benchmark_group("metis/rlspm_resolve_8masks_k100_b4");
    g.sample_size(10);
    let inst = instance(100, false);
    let k = 100usize;
    let masks: Vec<Vec<bool>> = (0..8usize)
        .map(|round| {
            (0..k)
                .map(|i| !(round > 0 && i % (round + 3) == 0))
                .collect()
        })
        .collect();
    let lp = SolveOptions::default();
    g.bench_function("cold", |b| {
        b.iter(|| {
            for mask in &masks {
                solve_rlspm_relaxation(&inst, mask, &lp).expect("rlspm");
            }
        });
    });
    g.bench_function("warm", |b| {
        b.iter(|| {
            let mut solver = RlspmWarmSolver::new(&inst);
            for mask in &masks {
                solver.solve(mask, &lp).expect("rlspm");
            }
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_metis_theta,
    bench_metis_sub_b4_k400,
    bench_limiter_rules,
    bench_metis_warm_start,
    bench_rlspm_resolve_cold_vs_warm
);
criterion_main!(benches);
