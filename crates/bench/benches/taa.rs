//! TAA (BL-SPM solver) scaling under the Fig. 4c/4d setup (uniform
//! 10-unit links on B4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use metis_core::{taa, SpmInstance, TaaOptions};
use metis_netsim::topologies;
use metis_workload::{generate, WorkloadConfig};

fn bench_taa_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("taa/b4_caps10");
    g.sample_size(10);
    for k in [50usize, 100, 200, 400] {
        let topo = topologies::b4();
        let requests = generate(&topo, &WorkloadConfig::paper(k, 1));
        let instance = SpmInstance::new(topo, requests, 12, 3);
        let caps = vec![10.0; instance.topology().num_edges()];
        g.bench_with_input(BenchmarkId::from_parameter(k), &instance, |b, inst| {
            b.iter(|| taa(inst, &caps, &TaaOptions::default()).expect("taa"));
        });
    }
    g.finish();
}

fn bench_taa_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("taa/k200_capacity");
    g.sample_size(10);
    let topo = topologies::b4();
    let requests = generate(&topo, &WorkloadConfig::paper(200, 1));
    let instance = SpmInstance::new(topo, requests, 12, 3);
    for cap in [1.0f64, 5.0, 10.0, 50.0] {
        let caps = vec![cap; instance.topology().num_edges()];
        g.bench_with_input(BenchmarkId::from_parameter(cap as u64), &caps, |b, caps| {
            b.iter(|| taa(&instance, caps, &TaaOptions::default()).expect("taa"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_taa_scaling, bench_taa_capacity);
criterion_main!(benches);
