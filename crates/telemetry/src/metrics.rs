//! Lock-free metric primitives: counters, gauges, fixed-bucket
//! histograms, and bounded series.
//!
//! All cells live in fixed-capacity open-addressed tables whose slots
//! are claimed on first use via [`OnceLock`]; after a slot is claimed
//! every update is a relaxed atomic operation, so recording from
//! worker threads never takes a lock and never allocates. Tables that
//! fill up count the overflow instead of failing — a snapshot reports
//! how many distinct names were dropped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Upper bounds of the shared histogram bucket grid (a 1–2–5
/// logarithmic ladder from `1e-6` to `5e8`). A final implicit `+Inf`
/// bucket catches everything above [`HISTOGRAM_BOUNDS`]'s last entry,
/// so histograms have [`BUCKET_COUNT`] buckets in total.
///
/// The grid is shared by every histogram: values as small as a μ
/// scaling factor and as large as a round duration in microseconds
/// land in a meaningful bucket without per-metric configuration.
pub const HISTOGRAM_BOUNDS: [f64; 45] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
    2e-1, 5e-1, 1e0, 2e0, 5e0, 1e1, 2e1, 5e1, 1e2, 2e2, 5e2, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5,
    2e5, 5e5, 1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8,
];

/// Number of histogram buckets: one per bound plus the `+Inf` bucket.
pub const BUCKET_COUNT: usize = HISTOGRAM_BOUNDS.len() + 1;

/// Capacity of each bounded series (extra points are counted as
/// dropped, not stored).
pub const SERIES_CAPACITY: usize = 512;

/// Index of the bucket a value falls into, with `le` (less-or-equal)
/// semantics: a value exactly equal to a bound lands in that bound's
/// bucket. `NaN` and anything above the last bound land in the final
/// `+Inf` bucket; zero and negatives land in the first.
pub fn bucket_index(value: f64) -> usize {
    if value.is_nan() {
        return BUCKET_COUNT - 1;
    }
    HISTOGRAM_BOUNDS.partition_point(|b| *b < value)
}

/// FNV-1a over the name bytes; only used to pick a starting probe slot.
fn hash_name(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h as usize
}

/// A named slot in a fixed table.
struct Named<T> {
    name: OnceLock<&'static str>,
    value: T,
}

/// Fixed-capacity open-addressed table of named metric cells.
///
/// `capacity` must be a power of two. Lookup claims an empty slot for
/// an unknown name; a full table counts the miss in `overflow`.
pub(crate) struct Table<T> {
    slots: Vec<Named<T>>,
    overflow: AtomicU64,
}

impl<T> Table<T> {
    pub(crate) fn new(capacity: usize, mut make: impl FnMut() -> T) -> Self {
        debug_assert!(capacity.is_power_of_two());
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Named {
                name: OnceLock::new(),
                value: make(),
            });
        }
        Table {
            slots,
            overflow: AtomicU64::new(0),
        }
    }

    /// The cell registered under `name`, claiming a free slot on first
    /// use. Returns `None` (and counts the overflow) once the table is
    /// full of other names.
    pub(crate) fn slot(&self, name: &'static str) -> Option<&T> {
        let mask = self.slots.len() - 1;
        let mut idx = hash_name(name) & mask;
        let mut probes = 0;
        while probes < self.slots.len() {
            let s = &self.slots[idx];
            if let Some(&claimed) = s.name.get() {
                if claimed == name {
                    return Some(&s.value);
                }
                idx = (idx + 1) & mask;
                probes += 1;
            } else if s.name.set(name).is_ok() {
                return Some(&s.value);
            }
            // Lost a claim race: re-read the same slot, now named.
        }
        self.overflow.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Recording attempts that found the table full.
    pub(crate) fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Claimed `(name, cell)` pairs in unspecified order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&'static str, &T)> {
        self.slots
            .iter()
            .filter_map(|s| s.name.get().map(|&n| (n, &s.value)))
    }
}

/// Adds `v` to an `f64` stored as bits in an [`AtomicU64`].
fn f64_fetch_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Lowers a bits-encoded `f64` minimum (or raises a maximum).
fn f64_fetch_extreme(cell: &AtomicU64, v: f64, want_min: bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let current = f64::from_bits(cur);
        let improves = if want_min { v < current } else { v > current };
        if !improves {
            return;
        }
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Monotonic `u64` counter.
#[derive(Default)]
pub(crate) struct CounterCell {
    value: AtomicU64,
}

impl CounterCell {
    pub(crate) fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins `f64` gauge.
pub(crate) struct GaugeCell {
    bits: AtomicU64,
}

impl Default for GaugeCell {
    fn default() -> Self {
        GaugeCell {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl GaugeCell {
    pub(crate) fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram over the shared [`HISTOGRAM_BOUNDS`] grid.
pub(crate) struct HistogramCell {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

impl HistogramCell {
    pub(crate) fn observe(&self, value: f64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        f64_fetch_add(&self.sum_bits, value);
        f64_fetch_extreme(&self.min_bits, value, true);
        f64_fetch_extreme(&self.max_bits, value, false);
    }

    /// `(buckets, count, sum, min, max)`; min/max are `0` when empty.
    pub(crate) fn read(&self) -> (Vec<u64>, u64, f64, f64, f64) {
        let buckets = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            (
                f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
                f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            )
        };
        (buckets, count, sum, min, max)
    }
}

/// Append-only bounded sequence of `f64` points.
pub(crate) struct SeriesCell {
    len: AtomicU64,
    values: Vec<AtomicU64>,
    dropped: AtomicU64,
}

impl Default for SeriesCell {
    fn default() -> Self {
        SeriesCell {
            len: AtomicU64::new(0),
            values: (0..SERIES_CAPACITY).map(|_| AtomicU64::new(0)).collect(),
            dropped: AtomicU64::new(0),
        }
    }
}

impl SeriesCell {
    pub(crate) fn push(&self, value: f64) {
        let at = self.len.fetch_add(1, Ordering::Relaxed) as usize;
        if at < SERIES_CAPACITY {
            self.values[at].store(value.to_bits(), Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(points, dropped)`.
    pub(crate) fn read(&self) -> (Vec<f64>, u64) {
        let len = (self.len.load(Ordering::Relaxed) as usize).min(SERIES_CAPACITY);
        let points = self.values[..len]
            .iter()
            .map(|v| f64::from_bits(v.load(Ordering::Relaxed)))
            .collect();
        (points, self.dropped.load(Ordering::Relaxed))
    }
}

/// The full metric registry: one table per cell kind.
pub(crate) struct Registry {
    pub(crate) counters: Table<CounterCell>,
    pub(crate) gauges: Table<GaugeCell>,
    pub(crate) histograms: Table<HistogramCell>,
    pub(crate) series: Table<SeriesCell>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            counters: Table::new(128, CounterCell::default),
            gauges: Table::new(64, GaugeCell::default),
            histograms: Table::new(64, HistogramCell::default),
            series: Table::new(64, SeriesCell::default),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_uses_le_semantics() {
        // A value exactly on a bound belongs to that bound's bucket.
        assert_eq!(bucket_index(1e-6), 0);
        assert_eq!(bucket_index(2e-6), 1);
        assert_eq!(bucket_index(1.0), 18);
        // Just above a bound spills into the next bucket.
        assert_eq!(bucket_index(1.0000001), 19);
        // Extremes.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(5e8), BUCKET_COUNT - 2);
        assert_eq!(bucket_index(5.1e8), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(f64::NAN), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(f64::INFINITY), BUCKET_COUNT - 1);
    }

    #[test]
    fn table_claims_and_finds_slots() {
        let t: Table<CounterCell> = Table::new(4, CounterCell::default);
        t.slot("a").unwrap().add(1);
        t.slot("b").unwrap().add(2);
        t.slot("a").unwrap().add(1);
        let mut names: Vec<_> = t.iter().map(|(n, c)| (n, c.get())).collect();
        names.sort();
        assert_eq!(names, vec![("a", 2), ("b", 2)]);
        assert_eq!(t.overflow(), 0);
    }

    #[test]
    fn full_table_counts_overflow() {
        let t: Table<CounterCell> = Table::new(2, CounterCell::default);
        assert!(t.slot("a").is_some());
        assert!(t.slot("b").is_some());
        assert!(t.slot("c").is_none());
        assert_eq!(t.overflow(), 1);
        // Existing names still resolve.
        assert!(t.slot("a").is_some());
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let h = HistogramCell::default();
        h.observe(2.0);
        h.observe(8.0);
        let (buckets, count, sum, min, max) = h.read();
        assert_eq!(count, 2);
        assert!((sum - 10.0).abs() < 1e-12);
        assert_eq!(min, 2.0);
        assert_eq!(max, 8.0);
        assert_eq!(buckets.iter().sum::<u64>(), 2);
        assert_eq!(buckets[bucket_index(2.0)], 1);
        assert_eq!(buckets[bucket_index(8.0)], 1);
    }

    #[test]
    fn series_caps_and_counts_drops() {
        let s = SeriesCell::default();
        for i in 0..(SERIES_CAPACITY + 3) {
            s.push(i as f64);
        }
        let (points, dropped) = s.read();
        assert_eq!(points.len(), SERIES_CAPACITY);
        assert_eq!(dropped, 3);
        assert_eq!(points[0], 0.0);
    }
}
