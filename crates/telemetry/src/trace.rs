//! Chrome/Perfetto trace-event export of the bounded raw span log.
//!
//! The collector keeps every finished span verbatim (up to the log
//! bound) with a start offset from the collector's epoch and the
//! recording thread's lane. This module re-emits that log in the
//! [trace-event format] understood by `chrome://tracing` and
//! `ui.perfetto.dev`: one complete (`"ph": "X"`) event per span, one
//! timeline row (`tid`) per thread lane, and span arguments (e.g. LP
//! pivot counts) carried through in `args`, so a solver run can be
//! inspected visually instead of through aggregate tables.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::snapshot::JsonWriter;
use crate::span::SpanRecord;
use crate::Telemetry;

/// One finished span from the raw log, in export-ready form.
///
/// `start_us` is the offset from the collector's creation (the trace
/// epoch), so timestamps are comparable across threads; `lane` is a
/// process-wide thread id assigned in first-span order.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    /// Span name.
    pub name: &'static str,
    /// Name of the enclosing span on the same thread, if any.
    pub parent: Option<&'static str>,
    /// Nesting depth (outermost span = 1).
    pub depth: u32,
    /// Thread lane the span ran on.
    pub lane: u32,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Wall-clock duration, microseconds.
    pub duration_us: u64,
    /// Numeric arguments attached via [`crate::Span::arg`].
    pub args: Vec<(&'static str, f64)>,
}

impl From<SpanRecord> for TraceSpan {
    fn from(r: SpanRecord) -> Self {
        TraceSpan {
            name: r.name,
            parent: r.parent,
            depth: r.depth,
            lane: r.lane,
            start_us: r.start_us,
            duration_us: r.duration_us,
            args: r.args,
        }
    }
}

impl Telemetry {
    /// The raw span log in deterministic order (by start offset, then
    /// lane, then depth, then name), or `None` for a disabled handle.
    pub fn raw_spans(&self) -> Option<Vec<TraceSpan>> {
        let c = self.collector()?;
        let mut spans: Vec<TraceSpan> =
            c.spans.records().into_iter().map(TraceSpan::from).collect();
        spans.sort_by(|a, b| {
            (a.start_us, a.lane, a.depth, a.name).cmp(&(b.start_us, b.lane, b.depth, b.name))
        });
        Some(spans)
    }

    /// Renders the raw span log as Chrome trace-event JSON, or `None`
    /// for a disabled handle. The output opens directly in
    /// `ui.perfetto.dev` or `chrome://tracing`.
    pub fn chrome_trace(&self) -> Option<String> {
        let spans = self.raw_spans()?;
        Some(chrome_trace_json(&spans))
    }
}

/// Serializes already-ordered spans as a trace-event JSON document.
pub(crate) fn chrome_trace_json(spans: &[TraceSpan]) -> String {
    let mut w = JsonWriter::new();
    w.open_obj();
    w.key("displayTimeUnit");
    w.str("ms");
    w.key("traceEvents");
    w.open_arr();

    // Metadata: name the process and one timeline row per lane.
    w.open_obj();
    w.key("name");
    w.str("process_name");
    w.key("ph");
    w.str("M");
    w.key("pid");
    w.num_u64(1, false);
    w.key("tid");
    w.num_u64(0, false);
    w.key("args");
    w.open_obj();
    w.key("name");
    w.str("metis");
    w.close_obj();
    w.close_obj();

    let mut lanes: Vec<u32> = spans.iter().map(|s| s.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in &lanes {
        w.open_obj();
        w.key("name");
        w.str("thread_name");
        w.key("ph");
        w.str("M");
        w.key("pid");
        w.num_u64(1, false);
        w.key("tid");
        w.num_u64(u64::from(*lane), false);
        w.key("args");
        w.open_obj();
        w.key("name");
        w.str(&format!("lane-{lane}"));
        w.close_obj();
        w.close_obj();
    }

    for s in spans {
        w.open_obj();
        w.key("name");
        w.str(s.name);
        w.key("cat");
        w.str("metis");
        w.key("ph");
        w.str("X");
        w.key("ts");
        w.num_u64(s.start_us, false);
        w.key("dur");
        w.num_u64(s.duration_us, false);
        w.key("pid");
        w.num_u64(1, false);
        w.key("tid");
        w.num_u64(u64::from(s.lane), false);
        w.key("args");
        w.open_obj();
        w.key("depth");
        w.num_u64(u64::from(s.depth), false);
        if let Some(p) = s.parent {
            w.key("parent");
            w.str(p);
        }
        for (k, v) in &s.args {
            w.key(k);
            w.num_f64(*v, false);
        }
        w.close_obj();
        w.close_obj();
    }

    w.close_arr();
    w.close_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "capture")]
    #[test]
    fn raw_spans_preserve_nesting_and_args() {
        let t = Telemetry::enabled();
        {
            let mut outer = t.span("outer");
            outer.arg("outer.k", 2.0);
            {
                let _inner = t.span("inner");
            }
        }
        let spans = t.raw_spans().expect("enabled");
        assert_eq!(spans.len(), 2);
        // Sorted by start offset: outer starts first.
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].args, vec![("outer.k", 2.0)]);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].parent, Some("outer"));
        assert_eq!(spans[1].depth, 2);
        assert_eq!(spans[0].lane, spans[1].lane, "same thread, same lane");
        // The child interval nests inside the parent (allow 2us of
        // floor-rounding slack from independent µs truncation).
        assert!(spans[1].start_us >= spans[0].start_us);
        assert!(
            spans[1].start_us + spans[1].duration_us
                <= spans[0].start_us + spans[0].duration_us + 2
        );
    }

    #[test]
    fn disabled_handle_has_no_trace() {
        let t = Telemetry::disabled();
        assert!(t.raw_spans().is_none());
        assert!(t.chrome_trace().is_none());
    }

    #[test]
    fn chrome_json_shape() {
        let spans = vec![
            TraceSpan {
                name: "root",
                parent: None,
                depth: 1,
                lane: 0,
                start_us: 0,
                duration_us: 100,
                args: vec![("lp.iterations", 42.0)],
            },
            TraceSpan {
                name: "child",
                parent: Some("root"),
                depth: 2,
                lane: 3,
                start_us: 10,
                duration_us: 20,
                args: Vec::new(),
            },
        ];
        let j = chrome_trace_json(&spans);
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"ph\": \"X\""));
        assert!(j.contains("\"ph\": \"M\""));
        assert!(j.contains("\"lane-3\""));
        assert!(j.contains("\"lp.iterations\": 42.0"));
        assert!(j.contains("\"parent\": \"root\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
